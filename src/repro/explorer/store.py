"""An in-memory document store of pipeline evaluation records.

Stands in for the MongoDB store of the paper's distributed architecture:
every pipeline scored by AutoBazaar is appended here with its template,
hyperparameters, score and timing, and can later be queried for
meta-analysis with :mod:`repro.explorer.analysis`.

The store is safe for concurrent writers (the parallel execution backends
complete candidates from worker callbacks) and maintains per-field indexes
for the two hottest query fields — ``task_name`` and ``template_name`` —
so the frequent per-task and per-template lookups do not re-scan the whole
document list.
"""

import json
import threading

import numpy as np

#: Fields with a dedicated value -> [documents] index.
_INDEXED_FIELDS = ("task_name", "template_name")


def normalize_value(value):
    """Convert a document value into plain JSON-serializable Python types.

    Numpy scalars become native ``int``/``float``/``bool`` and arrays become
    nested lists, so a dump -> load round-trip preserves numeric types
    instead of degrading them to strings (the old ``default=str`` escape
    hatch turned ``np.float64`` scores into strings on reload).  Dict keys
    are stringified (JSON object keys must be strings) and genuinely
    non-serializable values fall back to ``str`` as before.
    """
    if isinstance(value, dict):
        return {
            key if isinstance(key, str) else str(key): normalize_value(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [normalize_value(item) for item in value]
    if isinstance(value, np.ndarray):
        return normalize_value(value.tolist())
    if isinstance(value, np.generic):
        return normalize_value(value.item())
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def normalize_document(document):
    """Normalize one evaluation document (must be a mapping)."""
    if not isinstance(document, dict):
        raise TypeError(
            "Evaluation documents must be mappings, got {}".format(type(document).__name__)
        )
    return normalize_value(document)


class PipelineStore:
    """Append-only collection of pipeline evaluation documents."""

    def __init__(self):
        self._documents = []
        self._indexes = {field: {} for field in _INDEXED_FIELDS}
        self._lock = threading.RLock()

    def _insert(self, document):
        document = normalize_document(document)
        with self._lock:
            self._persist(document)
            self._index(document)
        return document

    def _persist(self, document):
        """Durability hook: called (under the lock) before a document is indexed.

        The in-memory store does nothing here;
        :class:`~repro.explorer.persistence.PersistentPipelineStore` appends
        the document to its segment log, so the on-disk line order always
        matches the in-memory document order even under concurrent writers.
        """

    def _index(self, document):
        """File an already-normalized document into the list and indexes."""
        self._documents.append(document)
        for field in _INDEXED_FIELDS:
            self._indexes[field].setdefault(document.get(field), []).append(document)

    def add(self, record):
        """Add an evaluation record (an ``EvaluationRecord`` or a plain dict)."""
        document = record.to_dict() if hasattr(record, "to_dict") else dict(record)
        required = {"task_name", "template_name", "score"}
        missing = required - set(document)
        if missing:
            raise ValueError("Evaluation document is missing fields: {}".format(sorted(missing)))
        return self._insert(document)

    def add_result(self, search_result, tags=None):
        """Add every record of a :class:`~repro.automl.search.SearchResult`.

        ``tags`` is an optional dict merged into each document — used by the
        case studies to label which experimental variant produced the record.
        """
        tags = dict(tags or {})
        for record in search_result.records:
            document = record.to_dict()
            document.update(tags)
            self._insert(document)
        return self

    def __len__(self):
        return len(self._documents)

    def __iter__(self):
        return iter(self._documents)

    # -- querying ----------------------------------------------------------------

    def find(self, **filters):
        """Documents whose fields equal the given filter values.

        Filters on indexed fields (``task_name``, ``template_name``) start
        from the index bucket instead of scanning every document; any
        remaining filters are applied to that bucket only.
        """
        indexed = [field for field in _INDEXED_FIELDS if field in filters]
        with self._lock:
            if indexed:
                # start from the smallest matching index bucket
                field = min(indexed, key=lambda f: len(self._indexes[f].get(filters[f], [])))
                candidates = list(self._indexes[field].get(filters[field], []))
                remaining = {key: value for key, value in filters.items() if key != field}
            else:
                candidates = list(self._documents)
                remaining = filters
        if not remaining:
            return candidates
        return [
            document for document in candidates
            if all(document.get(key) == value for key, value in remaining.items())
        ]

    def tasks(self):
        """Sorted list of distinct task names in the store."""
        with self._lock:
            return sorted(key for key, docs in self._indexes["task_name"].items()
                          if docs and key is not None)

    def templates(self):
        """Sorted list of distinct template names in the store."""
        with self._lock:
            return sorted(key for key, docs in self._indexes["template_name"].items()
                          if docs and key is not None)

    def scores_for_task(self, task_name, include_failed=False, **filters):
        """All scores recorded for one task (successful evaluations only by default)."""
        documents = self.find(task_name=task_name, **filters)
        scores = []
        for document in documents:
            # tolerate documents with no "score" key at all (legacy or
            # externally produced stores), not just an explicit None
            score = document.get("score")
            if score is None and not include_failed:
                continue
            scores.append(score)
        return scores

    # -- persistence ---------------------------------------------------------------

    def close(self):
        """Release any durable resources (no-op for the in-memory store).

        Exists so callers can treat in-memory and persistent stores
        uniformly; :class:`~repro.explorer.persistence.PersistentPipelineStore`
        overrides it to flush and release its segment-log handle and
        cross-process locks.
        """

    def dump_json(self, path):
        """Write every document to a JSON file.

        Documents are normalized at insert time (numpy scalars to native
        types), so the dump needs no lossy ``default=str`` escape hatch and
        a dump -> load round trip preserves score dtypes.
        """
        with self._lock:
            documents = list(self._documents)
        with open(path, "w") as stream:
            json.dump(documents, stream, indent=2)

    @classmethod
    def load_json(cls, path):
        """Load a store previously written by :meth:`dump_json`.

        Every document goes through :meth:`add` validation, so a corrupt or
        partial dump (wrong top-level type, non-dict entries, documents
        missing the core fields) is rejected with an error naming the
        offending document instead of silently populating a broken store.
        """
        store = cls()
        with open(path) as stream:
            documents = json.load(stream)
        if not isinstance(documents, list):
            raise ValueError(
                "{!s}: expected a JSON list of documents, got {}".format(
                    path, type(documents).__name__
                )
            )
        for position, document in enumerate(documents):
            try:
                store.add(document)
            except (TypeError, ValueError) as error:
                raise ValueError(
                    "{!s}: invalid document #{}: {}".format(path, position, error)
                ) from None
        return store

    def __repr__(self):
        return "PipelineStore(n_documents={})".format(len(self._documents))
