"""An in-memory document store of pipeline evaluation records.

Stands in for the MongoDB store of the paper's distributed architecture:
every pipeline scored by AutoBazaar is appended here with its template,
hyperparameters, score and timing, and can later be queried for
meta-analysis with :mod:`repro.explorer.analysis`.

The store is safe for concurrent writers (the parallel execution backends
complete candidates from worker callbacks) and maintains per-field indexes
for the two hottest query fields — ``task_name`` and ``template_name`` —
so the frequent per-task and per-template lookups do not re-scan the whole
document list.
"""

import json
import threading

#: Fields with a dedicated value -> [documents] index.
_INDEXED_FIELDS = ("task_name", "template_name")


class PipelineStore:
    """Append-only collection of pipeline evaluation documents."""

    def __init__(self):
        self._documents = []
        self._indexes = {field: {} for field in _INDEXED_FIELDS}
        self._lock = threading.RLock()

    def _insert(self, document):
        with self._lock:
            self._documents.append(document)
            for field in _INDEXED_FIELDS:
                self._indexes[field].setdefault(document.get(field), []).append(document)
        return document

    def add(self, record):
        """Add an evaluation record (an ``EvaluationRecord`` or a plain dict)."""
        document = record.to_dict() if hasattr(record, "to_dict") else dict(record)
        required = {"task_name", "template_name", "score"}
        missing = required - set(document)
        if missing:
            raise ValueError("Evaluation document is missing fields: {}".format(sorted(missing)))
        return self._insert(document)

    def add_result(self, search_result, tags=None):
        """Add every record of a :class:`~repro.automl.search.SearchResult`.

        ``tags`` is an optional dict merged into each document — used by the
        case studies to label which experimental variant produced the record.
        """
        tags = dict(tags or {})
        for record in search_result.records:
            document = record.to_dict()
            document.update(tags)
            self._insert(document)
        return self

    def __len__(self):
        return len(self._documents)

    def __iter__(self):
        return iter(self._documents)

    # -- querying ----------------------------------------------------------------

    def find(self, **filters):
        """Documents whose fields equal the given filter values.

        Filters on indexed fields (``task_name``, ``template_name``) start
        from the index bucket instead of scanning every document; any
        remaining filters are applied to that bucket only.
        """
        indexed = [field for field in _INDEXED_FIELDS if field in filters]
        with self._lock:
            if indexed:
                # start from the smallest matching index bucket
                field = min(indexed, key=lambda f: len(self._indexes[f].get(filters[f], [])))
                candidates = list(self._indexes[field].get(filters[field], []))
                remaining = {key: value for key, value in filters.items() if key != field}
            else:
                candidates = list(self._documents)
                remaining = filters
        if not remaining:
            return candidates
        return [
            document for document in candidates
            if all(document.get(key) == value for key, value in remaining.items())
        ]

    def tasks(self):
        """Sorted list of distinct task names in the store."""
        with self._lock:
            return sorted(key for key, docs in self._indexes["task_name"].items()
                          if docs and key is not None)

    def templates(self):
        """Sorted list of distinct template names in the store."""
        with self._lock:
            return sorted(key for key, docs in self._indexes["template_name"].items()
                          if docs and key is not None)

    def scores_for_task(self, task_name, include_failed=False, **filters):
        """All scores recorded for one task (successful evaluations only by default)."""
        documents = self.find(task_name=task_name, **filters)
        scores = []
        for document in documents:
            if document.get("score") is None and not include_failed:
                continue
            scores.append(document["score"])
        return scores

    # -- persistence ---------------------------------------------------------------

    def dump_json(self, path):
        """Write every document to a JSON file."""
        with self._lock:
            documents = list(self._documents)
        with open(path, "w") as stream:
            json.dump(documents, stream, indent=2, default=str)

    @classmethod
    def load_json(cls, path):
        """Load a store previously written by :meth:`dump_json`."""
        store = cls()
        with open(path) as stream:
            for document in json.load(stream):
                store._insert(document)
        return store

    def __repr__(self):
        return "PipelineStore(n_documents={})".format(len(self._documents))
