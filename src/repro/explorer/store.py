"""An in-memory document store of pipeline evaluation records.

Stands in for the MongoDB store of the paper's distributed architecture:
every pipeline scored by AutoBazaar is appended here with its template,
hyperparameters, score and timing, and can later be queried for
meta-analysis with :mod:`repro.explorer.analysis`.
"""

import json


class PipelineStore:
    """Append-only collection of pipeline evaluation documents."""

    def __init__(self):
        self._documents = []

    def add(self, record):
        """Add an evaluation record (an ``EvaluationRecord`` or a plain dict)."""
        document = record.to_dict() if hasattr(record, "to_dict") else dict(record)
        required = {"task_name", "template_name", "score"}
        missing = required - set(document)
        if missing:
            raise ValueError("Evaluation document is missing fields: {}".format(sorted(missing)))
        self._documents.append(document)
        return document

    def add_result(self, search_result, tags=None):
        """Add every record of a :class:`~repro.automl.search.SearchResult`.

        ``tags`` is an optional dict merged into each document — used by the
        case studies to label which experimental variant produced the record.
        """
        tags = dict(tags or {})
        for record in search_result.records:
            document = record.to_dict()
            document.update(tags)
            self._documents.append(document)
        return self

    def __len__(self):
        return len(self._documents)

    def __iter__(self):
        return iter(self._documents)

    # -- querying ----------------------------------------------------------------

    def find(self, **filters):
        """Documents whose fields equal the given filter values."""
        results = []
        for document in self._documents:
            if all(document.get(key) == value for key, value in filters.items()):
                results.append(document)
        return results

    def tasks(self):
        """Sorted list of distinct task names in the store."""
        return sorted({document["task_name"] for document in self._documents})

    def templates(self):
        """Sorted list of distinct template names in the store."""
        return sorted({document["template_name"] for document in self._documents})

    def scores_for_task(self, task_name, include_failed=False, **filters):
        """All scores recorded for one task (successful evaluations only by default)."""
        documents = self.find(task_name=task_name, **filters)
        scores = []
        for document in documents:
            if document.get("score") is None and not include_failed:
                continue
            scores.append(document["score"])
        return scores

    # -- persistence ---------------------------------------------------------------

    def dump_json(self, path):
        """Write every document to a JSON file."""
        with open(path, "w") as stream:
            json.dump(self._documents, stream, indent=2, default=str)

    @classmethod
    def load_json(cls, path):
        """Load a store previously written by :meth:`dump_json`."""
        store = cls()
        with open(path) as stream:
            for document in json.load(stream):
                store._documents.append(document)
        return store

    def __repr__(self):
        return "PipelineStore(n_documents={})".format(len(self._documents))
