"""piex: exploration and meta-analysis of scored pipelines (paper Section I-C).

The original piex library queries the MongoDB document store populated by
the distributed AutoBazaar runs; here the store is an in-memory (optionally
JSON-persisted) collection of evaluation records with the same query and
meta-analysis surface used by the paper's experiments (Figures 5-6 and the
two case studies of Section VI).
"""

from repro.explorer.store import PipelineStore, normalize_document, normalize_value
from repro.explorer.persistence import (
    PersistentPipelineStore,
    SegmentLog,
    StoreCorruptionError,
)
from repro.explorer.analysis import (
    best_score_per_task,
    improvement_sigmas_per_task,
    pairwise_win_rate,
    summarize_improvements,
)
from repro.explorer.report import format_report, report, summarize_store

__all__ = [
    "PipelineStore",
    "PersistentPipelineStore",
    "SegmentLog",
    "StoreCorruptionError",
    "normalize_document",
    "normalize_value",
    "best_score_per_task",
    "improvement_sigmas_per_task",
    "summarize_improvements",
    "pairwise_win_rate",
    "summarize_store",
    "format_report",
    "report",
]
