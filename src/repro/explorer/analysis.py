"""Meta-analysis over stored pipeline evaluations.

These functions compute the statistics reported in the paper's evaluation:
per-task best scores, tuning improvement measured in standard deviations
(Figure 6), and pairwise win rates between experimental variants (the
XGB-vs-RF and kernel case studies of Sections VI-B and VI-C).
"""

import numpy as np


def _successful(documents):
    return [d for d in documents if d.get("score") is not None]


def best_score_per_task(store, **filters):
    """Best (normalized) score per task, restricted by optional filters."""
    best = {}
    for task_name in store.tasks():
        scores = store.scores_for_task(task_name, **filters)
        if scores:
            best[task_name] = max(scores)
    return best


def improvement_sigmas_per_task(store, **filters):
    """Per-task improvement of the best pipeline over the first default pipeline.

    The improvement is expressed in standard deviations of all pipelines
    evaluated for that task, which is exactly the quantity whose
    distribution paper Figure 6 plots.
    """
    improvements = {}
    for task_name in store.tasks():
        documents = _successful(store.find(task_name=task_name, **filters))
        if len(documents) < 2:
            continue
        scores = np.asarray([d["score"] for d in documents], dtype=float)
        defaults = [d for d in documents if d.get("is_default")]
        default_score = defaults[0]["score"] if defaults else scores[0]
        spread = scores.std()
        if spread == 0.0:
            improvements[task_name] = 0.0
        else:
            improvements[task_name] = float((scores.max() - default_score) / spread)
    return improvements


def summarize_improvements(improvements):
    """Summary statistics of the Figure 6 distribution.

    Returns a dict with the mean improvement (the paper reports 1.06 sigma)
    and the fraction of tasks improving by more than one sigma (the paper
    reports 31.7 percent).
    """
    values = np.asarray(list(improvements.values()), dtype=float)
    if values.size == 0:
        return {"n_tasks": 0, "mean_sigmas": 0.0, "fraction_above_1_sigma": 0.0}
    return {
        "n_tasks": int(values.size),
        "mean_sigmas": float(values.mean()),
        "median_sigmas": float(np.median(values)),
        "fraction_above_1_sigma": float(np.mean(values > 1.0)),
    }


def pairwise_win_rate(store, variant_field, variant_a, variant_b):
    """Fraction of tasks on which variant A's best pipeline beats variant B's.

    ``variant_field`` is the tag added to the documents when the two
    experimental arms were stored (for example ``"estimator"`` with values
    ``"xgb"`` / ``"rf"``, or ``"tuner"`` with values ``"gp_se_ei"`` /
    ``"gp_matern52_ei"``).  Ties are split evenly, matching the paper's
    "percent of comparisons won" phrasing.
    """
    best_a = best_score_per_task(store, **{variant_field: variant_a})
    best_b = best_score_per_task(store, **{variant_field: variant_b})
    common_tasks = sorted(set(best_a) & set(best_b))
    if not common_tasks:
        raise ValueError("No tasks have results for both variants")
    wins_a = 0.0
    for task_name in common_tasks:
        if best_a[task_name] > best_b[task_name]:
            wins_a += 1.0
        elif best_a[task_name] == best_b[task_name]:
            wins_a += 0.5
    return {
        "n_tasks": len(common_tasks),
        "win_rate_a": wins_a / len(common_tasks),
        "win_rate_b": 1.0 - wins_a / len(common_tasks),
        "variant_a": variant_a,
        "variant_b": variant_b,
    }
