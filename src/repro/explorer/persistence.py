"""Durable pipeline store: a crash-safe, append-only JSONL segment log.

The paper's deployed architecture persists every scored pipeline to a
MongoDB corpus (the piex database of ~2.5M pipelines) that later powers
meta-analysis and meta-learning.  This module is the single-node analogue:
a :class:`PersistentPipelineStore` that is API-compatible with the
in-memory :class:`~repro.explorer.store.PipelineStore` but writes every
evaluation document to an append-only **JSONL segment log** the moment it
is added, so a crashed or killed search loses at most the line being
written when the process died.

Log layout (one directory per store)::

    <store_dir>/
        MANIFEST              # ordered list of live segment file names
        segment-000000.jsonl  # one JSON document per line
        segment-000001.jsonl
        ...

Design points:

* **One fsync-able line per record.**  ``append`` writes the document as a
  single JSON line and flushes it; ``durability="fsync"`` additionally
  fsyncs, trading throughput for power-loss safety (a plain flush already
  survives ``SIGKILL``, which only discards user-space buffers).
* **Segment rotation.**  When the active segment exceeds
  ``max_segment_bytes`` the log rotates to a fresh file, bounding the
  blast radius of any single corrupted file and keeping per-file repair
  cheap.  Rotation commits the new segment name to the ``MANIFEST``
  *before* creating the file, so a crash between the two steps leaves a
  manifest entry pointing at a missing (= empty) segment, never an
  untracked file holding data.
* **Atomic commits through the MANIFEST.**  The manifest is replaced
  atomically (write temp + ``os.replace``), so the set of live segments
  changes atomically; segment files present on disk but absent from the
  manifest are orphans of an interrupted rotation or compaction and are
  deleted on open.
* **Background-free compaction on open.**  Opening a fragmented log (many
  undersized segments, the residue of many short-lived runs) rewrites the
  records into full-sized segments and commits the new file set through
  the manifest.  There is no background thread: compaction runs at most
  once, at open, and only when it actually reduces the segment count.
* **Torn-line repair.**  A process killed mid-write can leave a partial
  final line in the last segment.  On open, a final line that does not
  parse is truncated away (it never finished, so it was never
  acknowledged); a non-final unparsable line means real corruption and
  raises :class:`StoreCorruptionError` instead of silently dropping data.
* **Index rebuild on load.**  ``PersistentPipelineStore`` replays the log
  on construction to rebuild the in-memory document list and the
  per-field indexes; afterwards every query runs at in-memory speed.
* **Cross-process safety.**  Every live handle holds a shared ``flock``
  on the store directory (released by the kernel even on ``SIGKILL``).
  An opener that finds no peers runs the destructive recovery work
  (orphan cleanup, torn-line repair, compaction); with peers present the
  open degrades to a read-only-recovery shared mode, and appends,
  rotations and manifest commits from all processes are serialized by a
  short-lived operation lock (rotation re-reads the manifest so a peer's
  segment is never dropped).  Checkpointed runs additionally take an
  exclusive per-run lock so one run directory has exactly one live
  executor (see :mod:`repro.automl.checkpoint`).

The write path stays non-blocking under contention: an append holds the
store lock only for one buffered line write + flush, so the many
concurrent worker callbacks of the thread/process execution backends
serialize on microseconds of work, not on disk round trips (unless fsync
durability is explicitly requested).
"""

import json
import os
import re
import threading
from contextlib import contextmanager

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.explorer.store import PipelineStore

_SEGMENT_RE = re.compile(r"^segment-(\d{6})\.jsonl$")
_SEGMENT_TEMPLATE = "segment-{:06d}.jsonl"

#: Held shared (``LOCK_SH``) by every live log handle; an opener that can
#: grab it exclusively knows no other process holds the log open.
_PRESENCE_LOCK = "writers.lock"

#: Short-lived exclusive lock serializing appends, rotations and opens
#: across processes sharing one store directory.
_OPS_LOCK = "ops.lock"

#: Default rotation threshold for the active segment (bytes).
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024


class StoreCorruptionError(RuntimeError):
    """A segment holds an unparsable document outside the repairable tail."""


def _fsync_directory(directory):
    """Best-effort fsync of a directory (required for rename durability)."""
    try:
        descriptor = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(descriptor)
    except OSError:
        pass
    finally:
        os.close(descriptor)


class SegmentLog:
    """Append-only JSONL log split into manifest-tracked segment files.

    Parameters
    ----------
    directory:
        Directory holding the manifest and segment files (created if
        needed).
    max_segment_bytes:
        Rotation threshold for the active segment.
    durability:
        ``"flush"`` (default) flushes each appended line to the OS —
        crash-safe against process death (``SIGKILL``); ``"fsync"``
        additionally fsyncs each line — crash-safe against power loss.
    compact_on_open:
        Whether :meth:`open` may rewrite a fragmented log into full-sized
        segments.
    """

    MANIFEST_NAME = "MANIFEST"

    def __init__(self, directory, max_segment_bytes=DEFAULT_SEGMENT_BYTES,
                 durability="flush", compact_on_open=True):
        if durability not in ("flush", "fsync"):
            raise ValueError(
                "Unknown durability {!r}; expected 'flush' or 'fsync'".format(durability)
            )
        self.directory = str(directory)
        self.max_segment_bytes = int(max_segment_bytes)
        if self.max_segment_bytes < 1:
            raise ValueError("max_segment_bytes must be positive")
        self.durability = durability
        self.compact_on_open = compact_on_open
        self._lock = threading.Lock()
        self._segments = []          # live segment file names, in order
        self._active_stream = None   # open append handle on the last segment
        self._active_size = 0
        self._opened = False
        self._presence_fd = None     # shared flock held while this handle lives
        self._ops_fd = None          # fd used for the short-lived op lock
        self._exclusive = True       # whether this handle opened with no peers

    # -- cross-process locking ----------------------------------------------------

    def _acquire_presence(self):
        """Join the set of live handles; detect whether we are alone.

        Every live handle keeps a *shared* ``flock`` on the presence file
        (released by the kernel even on ``SIGKILL``).  An opener that can
        momentarily hold it *exclusively* knows no other process has the
        log open, which licenses the destructive open-time work — orphan
        cleanup, torn-line truncation, compaction.  With peers present the
        open degrades to a conservative shared mode that only reads.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            self._exclusive = True
            return
        self._presence_fd = os.open(
            os.path.join(self.directory, _PRESENCE_LOCK), os.O_RDWR | os.O_CREAT, 0o644
        )
        try:
            fcntl.flock(self._presence_fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            self._exclusive = True
        except OSError:
            self._exclusive = False
        # downgrade to (or acquire) the shared presence lock; may wait for
        # a peer's own exclusive probe to finish
        fcntl.flock(self._presence_fd, fcntl.LOCK_SH)

    @contextmanager
    def _ops_guard(self):
        """Serialize one append/rotate/open against other processes."""
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            yield
            return
        if self._ops_fd is None:
            self._ops_fd = os.open(
                os.path.join(self.directory, _OPS_LOCK), os.O_RDWR | os.O_CREAT, 0o644
            )
        fcntl.flock(self._ops_fd, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(self._ops_fd, fcntl.LOCK_UN)

    def _release_locks(self):
        for descriptor in (self._presence_fd, self._ops_fd):
            if descriptor is not None:
                try:
                    os.close(descriptor)
                except OSError:  # pragma: no cover - already closed
                    pass
        self._presence_fd = None
        self._ops_fd = None

    # -- opening: manifest recovery, repair, compaction, replay -------------------

    def open(self):
        """Recover the log and return every stored document, in append order."""
        with self._lock:
            if self._opened:
                raise RuntimeError("SegmentLog is already open")
            os.makedirs(self.directory, exist_ok=True)
            self._acquire_presence()
            try:
                with self._ops_guard():
                    self._segments = self._read_manifest()
                    if self._exclusive:
                        self._remove_orphans()
                    documents, sizes = self._load_segments(repair=self._exclusive)
                    if (self._exclusive and self.compact_on_open
                            and self._should_compact(sizes)):
                        documents = self._compact(documents)
                        sizes = [os.path.getsize(self._path(name))
                                 for name in self._segments]
            except Exception:
                self._release_locks()
                raise
            self._active_size = sizes[-1] if sizes else 0
            self._opened = True
            return documents

    def _path(self, name):
        return os.path.join(self.directory, name)

    def _manifest_path(self):
        return self._path(self.MANIFEST_NAME)

    def _read_manifest_names(self):
        """The manifest's segment names as written on disk, or ``None``."""
        manifest_path = self._manifest_path()
        if not os.path.exists(manifest_path):
            return None
        with open(manifest_path) as stream:
            return [line.strip() for line in stream if line.strip()]

    def _read_manifest(self):
        """Live segment names from the manifest, adopting pre-manifest logs."""
        manifest_path = self._manifest_path()
        names = self._read_manifest_names()
        if names is not None:
            for name in names:
                if not _SEGMENT_RE.match(name):
                    raise StoreCorruptionError(
                        "{}: manifest references invalid segment name {!r}".format(
                            manifest_path, name
                        )
                    )
            return names
        # no manifest: adopt any existing segment files in numeric order
        # (a store created by an older layout, or a brand-new directory)
        names = sorted(
            entry for entry in os.listdir(self.directory) if _SEGMENT_RE.match(entry)
        )
        if not names:
            names = [_SEGMENT_TEMPLATE.format(0)]
        self._write_manifest(names)
        return names

    def _write_manifest(self, names):
        manifest_path = self._manifest_path()
        temporary = manifest_path + ".tmp"
        with open(temporary, "w") as stream:
            stream.write("".join(name + "\n" for name in names))
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temporary, manifest_path)
        _fsync_directory(self.directory)
        self._segments = list(names)

    def _remove_orphans(self):
        """Delete files from interrupted rotations/compactions (not in the manifest)."""
        live = set(self._segments)
        for entry in os.listdir(self.directory):
            path = self._path(entry)
            if entry.endswith(".tmp"):
                _unlink_quietly(path)
            elif _SEGMENT_RE.match(entry) and entry not in live:
                _unlink_quietly(path)

    def _load_segments(self, repair=True):
        """Parse every live segment; return (documents, sizes).

        With ``repair=True`` (exclusive open) a torn final line is
        truncated away and a missing final newline completed.  With
        ``repair=False`` (another process holds the log open) the tail is
        left untouched: an unparsable final line is most likely a peer's
        append in flight, so it is skipped without judgement.
        """
        documents = []
        sizes = []
        last_index = len(self._segments) - 1
        for index, name in enumerate(self._segments):
            path = self._path(name)
            if not os.path.exists(path):
                # a crash between the manifest commit and the creation of a
                # freshly rotated segment leaves a trailing entry with no
                # file: it never held data, treat it as empty.  A missing
                # *interior* segment lost acknowledged records.
                if index != last_index:
                    raise StoreCorruptionError(
                        "{}: interior segment {!r} is missing".format(self.directory, name)
                    )
                sizes.append(0)
                continue
            with open(path, "rb") as stream:
                raw = stream.read()
            keep_bytes = len(raw)
            offset = 0
            for line_number, line in enumerate(raw.split(b"\n")):
                end = offset + len(line)
                stripped = line.strip()
                if stripped:
                    try:
                        document = json.loads(stripped.decode("utf-8"))
                        if not isinstance(document, dict):
                            raise ValueError("not a JSON object")
                    except (ValueError, UnicodeDecodeError) as error:
                        if index == last_index and end >= len(raw):
                            # torn final line of the final segment: the
                            # write never completed, so the record was never
                            # acknowledged -- truncate it away
                            keep_bytes = offset
                            break
                        raise StoreCorruptionError(
                            "{}: segment {!r} line {} is corrupt: {}".format(
                                self.directory, name, line_number + 1, error
                            )
                        ) from None
                    documents.append(document)
                offset = end + 1
            if not repair:
                sizes.append(len(raw))
            elif keep_bytes < len(raw):
                with open(path, "r+b") as stream:
                    stream.truncate(keep_bytes)
                sizes.append(keep_bytes)
            elif raw and not raw.endswith(b"\n"):
                # the final line parsed but its newline never landed (the
                # single write was split at a buffer boundary): complete it,
                # or the next append would fuse two documents on one line
                with open(path, "ab") as stream:
                    stream.write(b"\n")
                sizes.append(len(raw) + 1)
            else:
                sizes.append(len(raw))
        return documents, sizes

    def _should_compact(self, sizes):
        """Compact only when repacking would actually shrink the segment count."""
        if len(self._segments) < 3:
            return False
        total = sum(sizes)
        projected = max(1, -(-total // self.max_segment_bytes))  # ceil division
        return len(self._segments) - projected >= 2

    def _compact(self, documents):
        """Rewrite ``documents`` into full-sized segments; commit via the manifest.

        New segment files are written and fsynced first, then the manifest
        swap makes them live atomically, then the old files are deleted.  A
        crash at any point leaves either the old file set (manifest not yet
        replaced; new files are orphans removed on the next open) or the
        new one (old files are orphans) -- never a mix.
        """
        next_id = self._next_segment_id()
        old_names = list(self._segments)
        new_names = []
        stream = None
        size = 0
        try:
            for document in documents:
                line = json.dumps(document, separators=(",", ":")) + "\n"
                if stream is None or size >= self.max_segment_bytes:
                    if stream is not None:
                        stream.flush()
                        os.fsync(stream.fileno())
                        stream.close()
                    name = _SEGMENT_TEMPLATE.format(next_id)
                    next_id += 1
                    new_names.append(name)
                    stream = open(self._path(name), "w")
                    size = 0
                stream.write(line)
                size += len(line)
            if stream is not None:
                stream.flush()
                os.fsync(stream.fileno())
                stream.close()
                stream = None
            if not new_names:
                new_names = [_SEGMENT_TEMPLATE.format(next_id)]
        except Exception:
            if stream is not None:
                stream.close()
            for name in new_names:
                _unlink_quietly(self._path(name))
            raise
        self._write_manifest(new_names)
        for name in old_names:
            _unlink_quietly(self._path(name))
        return documents

    def _next_segment_id(self):
        """First id after every segment ever referenced or present on disk."""
        used = [-1]
        for name in self._segments:
            used.append(int(_SEGMENT_RE.match(name).group(1)))
        for entry in os.listdir(self.directory):
            match = _SEGMENT_RE.match(entry)
            if match:
                used.append(int(match.group(1)))
        return max(used) + 1

    # -- appending ----------------------------------------------------------------

    def append(self, document):
        """Append one document as a single JSONL line; returns the document."""
        line = json.dumps(document, separators=(",", ":")) + "\n"
        with self._lock:
            if not self._opened:
                raise RuntimeError("SegmentLog must be opened before appending")
            with self._ops_guard():
                if self._active_size >= self.max_segment_bytes:
                    self._rotate()
                stream = self._ensure_stream()
                stream.write(line)
                stream.flush()
                if self.durability == "fsync":
                    os.fsync(stream.fileno())
                self._active_size += len(line)
        return document

    def _ensure_stream(self):
        if self._active_stream is None or self._active_stream.closed:
            self._repair_tail(self._path(self._segments[-1]))
            self._active_stream = open(self._path(self._segments[-1]), "a")
        return self._active_stream

    def _repair_tail(self, path):
        """Make sure the active segment ends on a newline before appending.

        A shared-mode open leaves a crashed peer's torn tail in place (it
        cannot tell an old crash artifact from an append in flight).  At
        *append* time the distinction is decidable: appends are serialized
        by the ops lock, so a tail without a trailing newline is always a
        crash artifact — complete its newline if it parses (the record
        landed, the newline did not), truncate it if it is garbage.
        Without this, our line would fuse with the torn one.
        """
        if not os.path.exists(path) or os.path.getsize(path) == 0:
            return
        with open(path, "rb") as probe:
            raw = probe.read()
        if raw.endswith(b"\n"):
            return
        cut = raw.rfind(b"\n") + 1
        tail = raw[cut:]
        try:
            parsed = json.loads(tail.decode("utf-8"))
            complete = isinstance(parsed, dict)
        except (ValueError, UnicodeDecodeError):
            complete = False
        if complete:
            with open(path, "ab") as stream:
                stream.write(b"\n")
            self._active_size += 1
        else:
            with open(path, "r+b") as stream:
                stream.truncate(cut)
            self._active_size = max(0, self._active_size - len(tail))

    def _rotate(self):
        """Seal the active segment and start a new one (manifest-first)."""
        if self._active_stream is not None and not self._active_stream.closed:
            self._active_stream.flush()
            os.fsync(self._active_stream.fileno())
            self._active_stream.close()
        self._active_stream = None
        name = _SEGMENT_TEMPLATE.format(self._next_segment_id())
        # re-read the manifest from disk (under the ops lock) so a rotation
        # by a peer process sharing this store is never lost to our cached
        # view -- a stale overwrite would orphan the peer's live segment
        current = self._read_manifest_names()
        if current is None:
            current = list(self._segments)
        # commit the name before creating the file: a crash in between
        # leaves a manifest entry pointing at a missing (empty) segment,
        # which open() tolerates -- the reverse order would leave an
        # orphan file holding acknowledged data
        self._write_manifest(current + [name])
        self._active_size = 0

    @property
    def segment_names(self):
        """Snapshot of the live segment file names, in order."""
        with self._lock:
            return list(self._segments)

    def close(self):
        """Flush, close the active segment handle and release the flocks."""
        with self._lock:
            if self._active_stream is not None and not self._active_stream.closed:
                self._active_stream.flush()
                self._active_stream.close()
            self._active_stream = None
            self._release_locks()
            self._opened = False

    def __del__(self):  # pragma: no cover - GC timing dependent
        # best-effort: a garbage-collected handle must not keep holding
        # the presence flock (which blocks later exclusive opens) or its
        # file descriptors
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter may be shutting down
            pass

    def __repr__(self):
        return "SegmentLog(directory={!r}, segments={})".format(
            self.directory, len(self._segments)
        )


class PersistentPipelineStore(PipelineStore):
    """A :class:`PipelineStore` backed by a crash-safe JSONL segment log.

    Drop-in compatible with the in-memory store (``add`` / ``find`` /
    ``tasks`` / ``templates`` / ``scores_for_task`` / iteration /
    ``dump_json``), plus durability: every added document is appended to
    the log before it becomes visible to queries, under the same lock, so
    the on-disk line order always equals the in-memory order even with
    many concurrent writers.  Opening an existing directory replays the
    log (repairing a torn tail and compacting fragmentation) and rebuilds
    the per-field indexes.

    Parameters
    ----------
    path:
        Store directory (created if needed).
    max_segment_bytes, durability, compact_on_open:
        Forwarded to :class:`SegmentLog`.
    """

    def __init__(self, path, max_segment_bytes=DEFAULT_SEGMENT_BYTES,
                 durability="flush", compact_on_open=True):
        super().__init__()
        self._log = None
        log = SegmentLog(path, max_segment_bytes=max_segment_bytes,
                         durability=durability, compact_on_open=compact_on_open)
        with self._lock:
            for document in log.open():
                # replayed documents were normalized when first inserted;
                # rebuild the indexes without re-appending them to the log
                self._index(document)
        self._log = log

    @property
    def path(self):
        """The store directory."""
        return self._log.directory

    def _persist(self, document):
        self._log.append(document)

    def close(self):
        """Flush and release the underlying log file handle."""
        self._log.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return "PersistentPipelineStore(path={!r}, n_documents={})".format(
            self._log.directory, len(self._documents)
        )


def _unlink_quietly(path):
    try:
        os.unlink(path)
    except OSError:
        pass
