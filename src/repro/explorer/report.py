"""Plain-text reporting over a pipeline store (piex's human-facing output).

``summarize_store`` builds a structured summary (per-task best scores,
per-template usage, improvement statistics); ``format_report`` renders it
as an aligned text table suitable for logs or terminals.
"""

import numpy as np

from repro.explorer.analysis import (
    best_score_per_task,
    improvement_sigmas_per_task,
    summarize_improvements,
)


def summarize_store(store, **filters):
    """Structured summary of a pipeline store.

    Returns a dict with overall counts, per-task bests and per-template
    aggregate statistics, restricted by the optional equality filters.
    """
    documents = store.find(**filters) if filters else list(store)
    successful = [d for d in documents if d.get("score") is not None]
    failed = [d for d in documents if d.get("score") is None]

    per_template = {}
    for document in successful:
        entry = per_template.setdefault(document["template_name"], [])
        entry.append(document["score"])
    template_stats = {
        name: {
            "n_pipelines": len(scores),
            "mean_score": float(np.mean(scores)),
            "best_score": float(np.max(scores)),
        }
        for name, scores in per_template.items()
    }

    improvements = improvement_sigmas_per_task(store, **filters)
    return {
        "n_documents": len(documents),
        "n_failed": len(failed),
        "n_tasks": len({d["task_name"] for d in documents}),
        "best_per_task": best_score_per_task(store, **filters),
        "templates": template_stats,
        "improvement": summarize_improvements(improvements),
    }


def format_report(summary, title="piex report"):
    """Render a :func:`summarize_store` summary as a text report."""
    lines = [title, "=" * len(title), ""]
    lines.append("pipelines evaluated : {}".format(summary["n_documents"]))
    lines.append("failed evaluations  : {}".format(summary["n_failed"]))
    lines.append("tasks covered       : {}".format(summary["n_tasks"]))
    improvement = summary["improvement"]
    lines.append("mean tuning gain    : {:.2f} sigma ({:.0%} of tasks > 1 sigma)".format(
        improvement["mean_sigmas"], improvement["fraction_above_1_sigma"]))
    lines.append("")
    lines.append("{:48s} {:>6s} {:>10s} {:>10s}".format("template", "n", "mean", "best"))
    for name, stats in sorted(summary["templates"].items(),
                              key=lambda kv: -kv[1]["best_score"]):
        lines.append("{:48s} {:>6d} {:>10.3f} {:>10.3f}".format(
            name, stats["n_pipelines"], stats["mean_score"], stats["best_score"]))
    lines.append("")
    lines.append("{:48s} {:>10s}".format("task", "best"))
    for task_name, best in sorted(summary["best_per_task"].items()):
        lines.append("{:48s} {:>10.3f}".format(task_name, best))
    return "\n".join(lines)


def report(store, title="piex report", **filters):
    """Convenience wrapper: summarize and format in one call."""
    return format_report(summarize_store(store, **filters), title=title)
