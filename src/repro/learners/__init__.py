"""Pure-numpy machine learning substrate for the ML Bazaar reproduction.

This package stands in for the third-party libraries that the original
ML Bazaar wraps (scikit-learn, XGBoost, Keras, LightFM, OpenCV,
Featuretools, python-louvain).  Every estimator and transformer follows a
``fit`` / ``predict`` / ``transform`` convention compatible with the
primitive annotations in :mod:`repro.core.catalog`.
"""

from repro.learners.base import BaseEstimator, ClassifierMixin, RegressorMixin, TransformerMixin, clone

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "RegressorMixin",
    "TransformerMixin",
    "clone",
]
