"""K-nearest-neighbor classifier and regressor."""

import numpy as np

from repro.learners.base import BaseEstimator, ClassifierMixin, RegressorMixin
from repro.learners.validation import check_X_y, check_array


class _BaseKNN(BaseEstimator):
    #: Fitting is storage, so a hyperparameter batch shares the training
    #: arrays; prediction shares the pairwise-distance matrix and its
    #: argsort across every ``(n_neighbors, weights)`` configuration.
    supports_batch_fit = True
    supports_batch_predict = True

    def __init__(self, n_neighbors=5, weights="uniform"):
        self.n_neighbors = n_neighbors
        self.weights = weights

    def _fit(self, X, y):
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be at least 1")
        if self.weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self._X = X
        self._y = y
        self.n_features_in_ = X.shape[1]
        return self

    def _neighbors(self, X):
        self._check_fitted("_X")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError("Inconsistent number of features")
        # pairwise squared euclidean distances
        distances = (
            np.sum(X ** 2, axis=1)[:, None]
            + np.sum(self._X ** 2, axis=1)[None, :]
            - 2.0 * X @ self._X.T
        )
        distances = np.maximum(distances, 0.0)
        k = min(self.n_neighbors, self._X.shape[0])
        neighbor_indices = np.argsort(distances, axis=1)[:, :k]
        neighbor_distances = np.take_along_axis(distances, neighbor_indices, axis=1)
        return neighbor_indices, np.sqrt(neighbor_distances)

    def _neighbor_weights(self, distances):
        if self.weights == "uniform":
            return np.ones_like(distances)
        return 1.0 / np.maximum(distances, 1e-9)

    @classmethod
    def batch_predict(cls, models, X):
        """Predict for every model over one shared distance computation.

        Bit-identical to ``[model.predict(X) for model in models]``: the
        distance matrix and its full argsort are computed once, and each
        model's neighbor set is the ``[:, :k]`` slice of that argsort —
        exactly what its own ``_neighbors`` call would take (NumPy's
        argsort is deterministic, so a full sort sliced to ``k`` equals
        the per-model sort-and-slice).  Models not sharing training data
        (fitted outside one ``fit_batch``) just loop.
        """
        if not models:
            return []
        lead = models[0]
        if any(model._X is not lead._X or model._y is not lead._y for model in models[1:]):
            return [model.predict(X) for model in models]
        lead._check_fitted("_X")
        X_checked = check_array(X)
        if X_checked.shape[1] != lead.n_features_in_:
            raise ValueError("Inconsistent number of features")
        distances = (
            np.sum(X_checked ** 2, axis=1)[:, None]
            + np.sum(lead._X ** 2, axis=1)[None, :]
            - 2.0 * X_checked @ lead._X.T
        )
        distances = np.maximum(distances, 0.0)
        order = np.argsort(distances, axis=1)
        predictions = []
        memo = {}
        for model in models:
            key = (int(model.n_neighbors), model.weights)
            prediction = memo.get(key)
            if prediction is None:
                k = min(model.n_neighbors, lead._X.shape[0])
                neighbor_indices = order[:, :k]
                neighbor_distances = np.sqrt(
                    np.take_along_axis(distances, neighbor_indices, axis=1)
                )
                prediction = model._predict_from_neighbors(
                    neighbor_indices, neighbor_distances
                )
                memo[key] = prediction
            predictions.append(prediction)
        return predictions


class KNeighborsClassifier(_BaseKNN, ClassifierMixin):
    """Classifier voting among the k nearest training points."""

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        return self._fit(X, y)

    @classmethod
    def fit_batch(cls, configs, X, y):
        """Fit one model per config over one shared validated copy of the data.

        Bit-identical to sequential fits: fitting only validates and
        stores, and every model stores references to the same arrays —
        which is also what lets :meth:`batch_predict` share the distance
        matrix.
        """
        models = [cls(**config) for config in configs]
        X_valid, y_valid = check_X_y(X, y)
        classes = np.unique(y_valid)
        for model in models:
            model.classes_ = classes
            model._fit(X_valid, y_valid)
        return models

    def _proba_from_neighbors(self, neighbor_indices, distances):
        weights = self._neighbor_weights(distances)
        probabilities = np.zeros((len(neighbor_indices), len(self.classes_)))
        class_index = {label: i for i, label in enumerate(self.classes_)}
        for row in range(len(neighbor_indices)):
            for neighbor, weight in zip(neighbor_indices[row], weights[row]):
                probabilities[row, class_index[self._y[neighbor]]] += weight
        row_sums = probabilities.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return probabilities / row_sums

    def _predict_from_neighbors(self, neighbor_indices, distances):
        probabilities = self._proba_from_neighbors(neighbor_indices, distances)
        return self.classes_[np.argmax(probabilities, axis=1)]

    def predict_proba(self, X):
        neighbor_indices, distances = self._neighbors(X)
        return self._proba_from_neighbors(neighbor_indices, distances)

    def predict(self, X):
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]


class KNeighborsRegressor(_BaseKNN, RegressorMixin):
    """Regressor averaging the targets of the k nearest training points."""

    def fit(self, X, y):
        X, y = check_X_y(X, y, y_numeric=True)
        return self._fit(X, y)

    @classmethod
    def fit_batch(cls, configs, X, y):
        """Fit one model per config over one shared validated copy of the data."""
        models = [cls(**config) for config in configs]
        X_valid, y_valid = check_X_y(X, y, y_numeric=True)
        for model in models:
            model._fit(X_valid, y_valid)
        return models

    def _predict_from_neighbors(self, neighbor_indices, distances):
        weights = self._neighbor_weights(distances)
        values = self._y[neighbor_indices]
        return np.sum(values * weights, axis=1) / np.sum(weights, axis=1)

    def predict(self, X):
        neighbor_indices, distances = self._neighbors(X)
        return self._predict_from_neighbors(neighbor_indices, distances)
