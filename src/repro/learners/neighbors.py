"""K-nearest-neighbor classifier and regressor."""

import numpy as np

from repro.learners.base import BaseEstimator, ClassifierMixin, RegressorMixin
from repro.learners.validation import check_X_y, check_array


class _BaseKNN(BaseEstimator):
    def __init__(self, n_neighbors=5, weights="uniform"):
        self.n_neighbors = n_neighbors
        self.weights = weights

    def _fit(self, X, y):
        if self.n_neighbors < 1:
            raise ValueError("n_neighbors must be at least 1")
        if self.weights not in ("uniform", "distance"):
            raise ValueError("weights must be 'uniform' or 'distance'")
        self._X = X
        self._y = y
        self.n_features_in_ = X.shape[1]
        return self

    def _neighbors(self, X):
        self._check_fitted("_X")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError("Inconsistent number of features")
        # pairwise squared euclidean distances
        distances = (
            np.sum(X ** 2, axis=1)[:, None]
            + np.sum(self._X ** 2, axis=1)[None, :]
            - 2.0 * X @ self._X.T
        )
        distances = np.maximum(distances, 0.0)
        k = min(self.n_neighbors, self._X.shape[0])
        neighbor_indices = np.argsort(distances, axis=1)[:, :k]
        neighbor_distances = np.take_along_axis(distances, neighbor_indices, axis=1)
        return neighbor_indices, np.sqrt(neighbor_distances)

    def _neighbor_weights(self, distances):
        if self.weights == "uniform":
            return np.ones_like(distances)
        return 1.0 / np.maximum(distances, 1e-9)


class KNeighborsClassifier(_BaseKNN, ClassifierMixin):
    """Classifier voting among the k nearest training points."""

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        return self._fit(X, y)

    def predict_proba(self, X):
        neighbor_indices, distances = self._neighbors(X)
        weights = self._neighbor_weights(distances)
        probabilities = np.zeros((len(neighbor_indices), len(self.classes_)))
        class_index = {label: i for i, label in enumerate(self.classes_)}
        for row in range(len(neighbor_indices)):
            for neighbor, weight in zip(neighbor_indices[row], weights[row]):
                probabilities[row, class_index[self._y[neighbor]]] += weight
        row_sums = probabilities.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return probabilities / row_sums

    def predict(self, X):
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]


class KNeighborsRegressor(_BaseKNN, RegressorMixin):
    """Regressor averaging the targets of the k nearest training points."""

    def fit(self, X, y):
        X, y = check_X_y(X, y, y_numeric=True)
        return self._fit(X, y)

    def predict(self, X):
        neighbor_indices, distances = self._neighbors(X)
        weights = self._neighbor_weights(distances)
        values = self._y[neighbor_indices]
        return np.sum(values * weights, axis=1) / np.sum(weights, axis=1)
