"""Naive Bayes classifiers (Gaussian and multinomial)."""

import numpy as np

from repro.learners.base import BaseEstimator, ClassifierMixin
from repro.learners.validation import check_X_y, check_array


class GaussianNB(BaseEstimator, ClassifierMixin):
    """Gaussian naive Bayes with per-class feature means and variances."""

    #: GaussianNB is rarely tuned (``var_smoothing`` only), so batches are
    #: usually duplicates: batch fitting dedupes identical configurations
    #: into one shared fit.
    supports_batch_fit = True

    def __init__(self, var_smoothing=1e-9):
        self.var_smoothing = var_smoothing

    @classmethod
    def fit_batch(cls, configs, X, y):
        """Fit one model per config, fitting each distinct config once.

        Bit-identical to ``[cls(**config).fit(X, y) for config in configs]``:
        fitting is deterministic and prediction only reads the fitted
        statistics, so duplicate configurations share one fitted instance.
        """
        fitted = {}
        models = []
        for config in configs:
            key = tuple(sorted(config.items()))
            model = fitted.get(key)
            if model is None:
                model = cls(**config).fit(X, y)
                fitted[key] = model
            models.append(model)
        return models

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_prior_ = np.zeros(n_classes)
        for i, label in enumerate(self.classes_):
            members = X[y == label]
            self.theta_[i] = members.mean(axis=0)
            self.var_[i] = members.var(axis=0)
            self.class_prior_[i] = len(members) / len(y)
        self.var_ += self.var_smoothing * X.var(axis=0).max() + 1e-12
        self.n_features_in_ = n_features
        return self

    def _joint_log_likelihood(self, X):
        self._check_fitted("theta_")
        X = check_array(X)
        log_likelihoods = []
        for i in range(len(self.classes_)):
            prior = np.log(self.class_prior_[i])
            log_prob = -0.5 * np.sum(np.log(2.0 * np.pi * self.var_[i]))
            log_prob -= 0.5 * np.sum(((X - self.theta_[i]) ** 2) / self.var_[i], axis=1)
            log_likelihoods.append(prior + log_prob)
        return np.column_stack(log_likelihoods)

    def predict_proba(self, X):
        joint = self._joint_log_likelihood(X)
        joint = joint - joint.max(axis=1, keepdims=True)
        probabilities = np.exp(joint)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def predict(self, X):
        joint = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(joint, axis=1)]


class MultinomialNB(BaseEstimator, ClassifierMixin):
    """Multinomial naive Bayes for count features (for example bag-of-words)."""

    def __init__(self, alpha=1.0):
        self.alpha = alpha

    def fit(self, X, y):
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        X, y = check_X_y(X, y)
        if (X < 0).any():
            raise ValueError("MultinomialNB requires non-negative features")
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        n_features = X.shape[1]
        self.feature_log_prob_ = np.zeros((n_classes, n_features))
        self.class_log_prior_ = np.zeros(n_classes)
        for i, label in enumerate(self.classes_):
            members = X[y == label]
            counts = members.sum(axis=0) + self.alpha
            self.feature_log_prob_[i] = np.log(counts / counts.sum())
            self.class_log_prior_[i] = np.log(len(members) / len(y))
        self.n_features_in_ = n_features
        return self

    def _joint_log_likelihood(self, X):
        self._check_fitted("feature_log_prob_")
        X = check_array(X)
        return X @ self.feature_log_prob_.T + self.class_log_prior_

    def predict_proba(self, X):
        joint = self._joint_log_likelihood(X)
        joint = joint - joint.max(axis=1, keepdims=True)
        probabilities = np.exp(joint)
        return probabilities / probabilities.sum(axis=1, keepdims=True)

    def predict(self, X):
        joint = self._joint_log_likelihood(X)
        return self.classes_[np.argmax(joint, axis=1)]
