"""Dataset splitting and cross-validation utilities.

AutoBazaar (paper Algorithm 2) scores every candidate pipeline with
cross-validation over the training partition; these helpers provide the
splitting machinery.
"""

import numpy as np

from repro.learners.base import check_random_state


def train_test_split(*arrays, test_size=0.25, random_state=None, stratify=None):
    """Split arrays into random train and test subsets.

    Parameters
    ----------
    arrays:
        One or more indexables with the same first dimension.
    test_size:
        Fraction (0 < test_size < 1) or absolute number of test samples.
    random_state:
        Seed or RandomState for reproducibility.
    stratify:
        Optional label array; when given, class proportions are preserved
        in both splits.
    """
    if not arrays:
        raise ValueError("At least one array is required")
    n_samples = len(arrays[0])
    for array in arrays:
        if len(array) != n_samples:
            raise ValueError("All arrays must have the same length")

    if isinstance(test_size, float):
        if not 0.0 < test_size < 1.0:
            raise ValueError("test_size as a float must be in (0, 1)")
        n_test = max(1, int(round(test_size * n_samples)))
    else:
        n_test = int(test_size)
    if n_test >= n_samples:
        raise ValueError("test_size={} leaves no training samples".format(test_size))

    rng = check_random_state(random_state)
    if stratify is not None:
        stratify = np.asarray(stratify)
        test_indices = []
        for label in np.unique(stratify):
            label_indices = np.flatnonzero(stratify == label)
            rng.shuffle(label_indices)
            n_label_test = max(1, int(round(len(label_indices) * n_test / n_samples)))
            test_indices.extend(label_indices[:n_label_test])
        test_indices = np.asarray(sorted(test_indices))
    else:
        permutation = rng.permutation(n_samples)
        test_indices = np.sort(permutation[:n_test])

    test_mask = np.zeros(n_samples, dtype=bool)
    test_mask[test_indices] = True
    train_indices = np.flatnonzero(~test_mask)

    result = []
    for array in arrays:
        indexable = np.asarray(array) if not hasattr(array, "iloc") else array
        result.append(_take(indexable, train_indices))
        result.append(_take(indexable, test_indices))
    return result


def _take(array, indices):
    if isinstance(array, np.ndarray):
        return array[indices]
    return [array[i] for i in indices]


class KFold:
    """K-fold cross-validation splitter."""

    def __init__(self, n_splits=5, shuffle=True, random_state=None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y=None):
        """Yield ``(train_indices, test_indices)`` pairs."""
        n_samples = len(X)
        if n_samples < self.n_splits:
            raise ValueError(
                "Cannot have n_splits={} with only {} samples".format(self.n_splits, n_samples)
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            check_random_state(self.random_state).shuffle(indices)
        fold_sizes = np.full(self.n_splits, n_samples // self.n_splits, dtype=int)
        fold_sizes[: n_samples % self.n_splits] += 1
        current = 0
        for fold_size in fold_sizes:
            test_indices = indices[current:current + fold_size]
            train_indices = np.concatenate([indices[:current], indices[current + fold_size:]])
            yield np.sort(train_indices), np.sort(test_indices)
            current += fold_size


class StratifiedKFold:
    """K-fold splitter preserving class proportions in each fold."""

    def __init__(self, n_splits=5, shuffle=True, random_state=None):
        if n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y):
        y = np.asarray(y)
        n_samples = len(y)
        rng = check_random_state(self.random_state)
        folds = [[] for _ in range(self.n_splits)]
        for label in np.unique(y):
            label_indices = np.flatnonzero(y == label)
            if self.shuffle:
                rng.shuffle(label_indices)
            for i, index in enumerate(label_indices):
                folds[i % self.n_splits].append(index)
        for i in range(self.n_splits):
            test_indices = np.sort(np.asarray(folds[i], dtype=int))
            train_indices = np.sort(
                np.asarray([idx for j, fold in enumerate(folds) if j != i for idx in fold], dtype=int)
            )
            if len(test_indices) == 0 or len(train_indices) == 0:
                raise ValueError(
                    "StratifiedKFold produced an empty fold; reduce n_splits "
                    "(n_samples={}, n_splits={})".format(n_samples, self.n_splits)
                )
            yield train_indices, test_indices


def cross_val_score(estimator, X, y, scoring, cv=3, random_state=None, stratified=False):
    """Cross-validated scores of an estimator.

    Parameters
    ----------
    estimator:
        Object exposing ``fit(X, y)`` and ``predict(X)`` plus the
        ``get_params`` cloning contract.
    scoring:
        Callable ``scoring(y_true, y_pred) -> float``.
    cv:
        Number of folds.
    stratified:
        Use :class:`StratifiedKFold` instead of :class:`KFold`.
    """
    from repro.learners.base import clone

    X = np.asarray(X)
    y = np.asarray(y)
    splitter_cls = StratifiedKFold if stratified else KFold
    splitter = splitter_cls(n_splits=cv, shuffle=True, random_state=random_state)
    scores = []
    for train_indices, test_indices in splitter.split(X, y):
        model = clone(estimator)
        model.fit(X[train_indices], y[train_indices])
        predictions = model.predict(X[test_indices])
        scores.append(scoring(y[test_indices], predictions))
    return np.asarray(scores, dtype=float)
