"""Additional ensemble methods: AdaBoost and bagging.

These complement the random forests and gradient boosting in
:mod:`repro.learners.tree`, filling out the estimator section of the
curated catalog.
"""

import numpy as np

from repro.learners.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_random_state,
    clone,
)
from repro.learners.validation import check_X_y, check_array
from repro.learners.tree.decision_tree import DecisionTreeClassifier, DecisionTreeRegressor


class AdaBoostClassifier(BaseEstimator, ClassifierMixin):
    """SAMME AdaBoost over shallow decision trees.

    Parameters
    ----------
    n_estimators:
        Number of boosting rounds.
    max_depth:
        Depth of each weak learner (1 = decision stumps).
    learning_rate:
        Shrinkage applied to each learner's vote.
    """

    def __init__(self, n_estimators=20, max_depth=1, learning_rate=1.0, random_state=None):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.random_state = random_state

    def fit(self, X, y):
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("AdaBoostClassifier requires at least 2 classes")
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        sample_weight = np.full(n_samples, 1.0 / n_samples)
        self.estimators_ = []
        self.estimator_weights_ = []
        for _ in range(self.n_estimators):
            seed = int(rng.randint(0, 2 ** 31 - 1))
            tree = DecisionTreeClassifier(max_depth=self.max_depth, random_state=seed)
            # weighted fitting by resampling proportionally to the weights
            indices = rng.choice(n_samples, size=n_samples, p=sample_weight)
            tree.fit(X[indices], y[indices])
            predictions = tree.predict(X)
            incorrect = predictions != y
            error = float(np.dot(sample_weight, incorrect))
            error = min(max(error, 1e-10), 1.0 - 1e-10)
            alpha = self.learning_rate * (
                np.log((1.0 - error) / error) + np.log(n_classes - 1.0)
            )
            if alpha <= 0.0:
                break
            sample_weight = sample_weight * np.exp(alpha * incorrect)
            sample_weight = sample_weight / sample_weight.sum()
            self.estimators_.append(tree)
            self.estimator_weights_.append(alpha)
        if not self.estimators_:
            tree = DecisionTreeClassifier(max_depth=self.max_depth, random_state=0)
            tree.fit(X, y)
            self.estimators_ = [tree]
            self.estimator_weights_ = [1.0]
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X):
        self._check_fitted("estimators_")
        X = check_array(X)
        votes = np.zeros((X.shape[0], len(self.classes_)))
        class_index = {label: i for i, label in enumerate(self.classes_)}
        for tree, alpha in zip(self.estimators_, self.estimator_weights_):
            predictions = tree.predict(X)
            for row, label in enumerate(predictions):
                votes[row, class_index[label]] += alpha
        return self.classes_[np.argmax(votes, axis=1)]


class _BaseBagging(BaseEstimator):
    """Shared machinery for bagging ensembles around an arbitrary base estimator."""

    def __init__(self, base_estimator=None, n_estimators=10, max_samples=1.0, random_state=None):
        self.base_estimator = base_estimator
        self.n_estimators = n_estimators
        self.max_samples = max_samples
        self.random_state = random_state

    def _default_base(self):
        raise NotImplementedError

    def _fit_members(self, X, y):
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not 0.0 < self.max_samples <= 1.0:
            raise ValueError("max_samples must be in (0, 1]")
        rng = check_random_state(self.random_state)
        base = self.base_estimator if self.base_estimator is not None else self._default_base()
        n_samples = X.shape[0]
        n_draw = max(2, int(self.max_samples * n_samples))
        self.estimators_ = []
        for _ in range(self.n_estimators):
            member = clone(base)
            if "random_state" in member.get_params():
                member.set_params(random_state=int(rng.randint(0, 2 ** 31 - 1)))
            indices = rng.randint(0, n_samples, size=n_draw)
            member.fit(X[indices], y[indices])
            self.estimators_.append(member)
        self.n_features_in_ = X.shape[1]
        return self


class BaggingClassifier(_BaseBagging, ClassifierMixin):
    """Bootstrap aggregation of an arbitrary classifier (defaults to a CART tree)."""

    def _default_base(self):
        return DecisionTreeClassifier(max_depth=6)

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        return self._fit_members(X, y)

    def predict(self, X):
        self._check_fitted("estimators_")
        X = check_array(X)
        votes = np.zeros((X.shape[0], len(self.classes_)))
        class_index = {label: i for i, label in enumerate(self.classes_)}
        for member in self.estimators_:
            for row, label in enumerate(member.predict(X)):
                votes[row, class_index[label]] += 1.0
        return self.classes_[np.argmax(votes, axis=1)]


class BaggingRegressor(_BaseBagging, RegressorMixin):
    """Bootstrap aggregation of an arbitrary regressor (defaults to a CART tree)."""

    def _default_base(self):
        return DecisionTreeRegressor(max_depth=6)

    def fit(self, X, y):
        X, y = check_X_y(X, y, y_numeric=True)
        return self._fit_members(X, y)

    def predict(self, X):
        self._check_fitted("estimators_")
        X = check_array(X)
        predictions = np.stack([member.predict(X) for member in self.estimators_])
        return predictions.mean(axis=0)
