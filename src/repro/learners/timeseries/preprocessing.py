"""Time series preprocessing primitives from the ORION pipeline."""

import numpy as np


def time_segments_average(X, interval=1, time_column=0, value_column=1):
    """Aggregate an irregular time series into equal-width time segments.

    Parameters
    ----------
    X:
        2-D array whose columns include a timestamp column and a value
        column, or a 1-D array of values (in which case an integer index
        is used as the timestamp).
    interval:
        Width of each segment in timestamp units.
    time_column, value_column:
        Column positions of the timestamp and value.

    Returns
    -------
    values, index:
        The per-segment averages and the segment start timestamps.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        timestamps = np.arange(len(X), dtype=float)
        values = X
    else:
        timestamps = X[:, time_column]
        values = X[:, value_column]
    if interval <= 0:
        raise ValueError("interval must be positive")
    if len(values) == 0:
        raise ValueError("Cannot aggregate an empty time series")

    start = timestamps.min()
    end = timestamps.max()
    edges = np.arange(start, end + 1e-9, interval)
    averaged = []
    index = []
    for left in edges:
        right = left + interval
        mask = (timestamps >= left) & (timestamps < right)
        if mask.any():
            averaged.append(values[mask].mean())
        else:
            averaged.append(np.nan)
        index.append(left)
    averaged = np.asarray(averaged, dtype=float)
    index = np.asarray(index, dtype=float)
    # forward-fill empty segments so downstream imputation is trivial
    for i in range(1, len(averaged)):
        if np.isnan(averaged[i]):
            averaged[i] = averaged[i - 1]
    if np.isnan(averaged[0]):
        averaged[0] = np.nanmean(averaged)
    return averaged.reshape(-1, 1), index


def rolling_window_sequences(X, index=None, window_size=50, target_size=1, step_size=1,
                             target_column=0):
    """Create rolling window input/target pairs from a time series.

    Returns ``(X_windows, y_targets, X_index, y_index)`` following the
    MLPrimitives contract: each window of ``window_size`` observations is
    paired with the following ``target_size`` values of the target column.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if index is None:
        index = np.arange(len(X), dtype=float)
    index = np.asarray(index, dtype=float)
    if window_size < 1 or target_size < 1 or step_size < 1:
        raise ValueError("window_size, target_size and step_size must be positive")
    if len(X) <= window_size + target_size:
        raise ValueError(
            "Time series of length {} is too short for window_size={} and target_size={}".format(
                len(X), window_size, target_size
            )
        )

    windows, targets, window_index, target_index = [], [], [], []
    target_values = X[:, target_column]
    for start in range(0, len(X) - window_size - target_size + 1, step_size):
        end = start + window_size
        windows.append(X[start:end])
        targets.append(target_values[end:end + target_size])
        window_index.append(index[start])
        target_index.append(index[end])
    X_windows = np.asarray(windows)
    y_targets = np.asarray(targets)
    if target_size == 1:
        y_targets = y_targets.ravel()
    return X_windows, y_targets, np.asarray(window_index), np.asarray(target_index)
