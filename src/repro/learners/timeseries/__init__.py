"""Time series preprocessing and anomaly detection primitives.

These reproduce the custom MLPrimitives time series primitives that make
up the ORION anomaly detection pipeline (paper Listing 1 / Figure 3):
``time_segments_average``, ``rolling_window_sequences``,
``regression_errors`` and ``find_anomalies``.
"""

from repro.learners.timeseries.preprocessing import (
    rolling_window_sequences,
    time_segments_average,
)
from repro.learners.timeseries.anomalies import find_anomalies, regression_errors
from repro.learners.timeseries.forecasters import ARRegressor, ExponentialSmoothingRegressor

__all__ = [
    "time_segments_average",
    "rolling_window_sequences",
    "regression_errors",
    "find_anomalies",
    "ARRegressor",
    "ExponentialSmoothingRegressor",
]
