"""Classical time series forecasters: autoregression and exponential smoothing.

These give the forecasting task type alternatives to the gradient-boosting
default of Table II, and give the ORION-style pipelines a cheaper
forecaster to swap in ("substituting different time series forecasting
primitives and comparing the results", paper Section V-A).
"""

import numpy as np

from repro.learners.base import BaseEstimator, RegressorMixin
from repro.learners.validation import check_array, check_X_y


class ARRegressor(BaseEstimator, RegressorMixin):
    """Autoregressive forecaster fitted by ridge-regularized least squares.

    The model consumes fixed-length windows (as produced by
    ``rolling_window_sequences`` or lag-feature matrices) and predicts the
    next value as a linear combination of the window.
    """

    def __init__(self, alpha=1.0):
        self.alpha = alpha

    def fit(self, X, y):
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        X = _flatten_windows(np.asarray(X, dtype=float))
        X, y = check_X_y(X, y, y_numeric=True)
        n_features = X.shape[1]
        design = np.hstack([np.ones((X.shape[0], 1)), X])
        gram = design.T @ design + self.alpha * np.eye(n_features + 1)
        coefficients = np.linalg.solve(gram, design.T @ y)
        self.intercept_ = float(coefficients[0])
        self.coef_ = coefficients[1:]
        self.n_features_in_ = n_features
        return self

    def predict(self, X):
        self._check_fitted("coef_")
        X = _flatten_windows(np.asarray(X, dtype=float))
        X = check_array(X)
        return X @ self.coef_ + self.intercept_


class ExponentialSmoothingRegressor(BaseEstimator, RegressorMixin):
    """Forecast the next value as an exponentially weighted mean of the window.

    Parameters
    ----------
    smoothing:
        Weight decay factor in (0, 1]; larger values weight recent
        observations more heavily.
    trend:
        If True, a simple linear trend over the window is added (a cheap
        Holt-style correction).
    """

    def __init__(self, smoothing=0.5, trend=True):
        self.smoothing = smoothing
        self.trend = trend

    def fit(self, X, y=None):
        if not 0.0 < self.smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        X = _flatten_windows(np.asarray(X, dtype=float))
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X):
        self._check_fitted("n_features_in_")
        X = _flatten_windows(np.asarray(X, dtype=float))
        window = X.shape[1]
        weights = self.smoothing * (1.0 - self.smoothing) ** np.arange(window)[::-1]
        weights = weights / weights.sum()
        level = X @ weights
        if self.trend and window >= 2:
            slope = (X[:, -1] - X[:, 0]) / max(window - 1, 1)
            return level + slope
        return level


def _flatten_windows(X):
    if X.ndim == 3:
        return X.reshape(X.shape[0], -1)
    if X.ndim == 1:
        return X.reshape(-1, 1)
    return X
