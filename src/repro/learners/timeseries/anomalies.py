"""Anomaly detection postprocessing primitives (ORION pipeline).

``regression_errors`` and ``find_anomalies`` reproduce the nonparametric
dynamic thresholding method of Hundman et al. (2018) referenced in paper
Section V-A: smoothed forecast errors are thresholded at a multiple of
their standard deviation within sliding windows, and contiguous runs of
high-error points become anomaly intervals.
"""

import numpy as np


def regression_errors(y_true, y_pred, smoothing_window=0.01, smooth=True):
    """Absolute forecast errors, optionally smoothed with a moving average.

    Parameters
    ----------
    y_true, y_pred:
        True and predicted values, aligned.
    smoothing_window:
        Window size as a fraction of the series length (when < 1) or an
        absolute number of points.
    """
    y_true = np.asarray(y_true, dtype=float).ravel()
    y_pred = np.asarray(y_pred, dtype=float).ravel()
    if len(y_true) != len(y_pred):
        raise ValueError("y_true and y_pred must be aligned")
    errors = np.abs(y_true - y_pred)
    if not smooth or len(errors) < 3:
        return errors
    if smoothing_window < 1:
        window = max(2, int(len(errors) * smoothing_window))
    else:
        window = max(2, int(smoothing_window))
    window = min(window, len(errors))
    kernel = np.ones(window) / window
    padded = np.concatenate([np.full(window - 1, errors[0]), errors])
    return np.convolve(padded, kernel, mode="valid")


def find_anomalies(errors, index=None, window_size=200, window_step=100, z_threshold=3.0,
                   min_percent=0.05, anomaly_padding=2):
    """Locate anomalous intervals in a sequence of forecast errors.

    Within each sliding window, points whose error exceeds
    ``mean + z_threshold * std`` are flagged; contiguous flagged points
    (padded by ``anomaly_padding``) are merged into ``(start, end, severity)``
    intervals expressed in terms of ``index``.

    Returns
    -------
    list of (start, end, severity) tuples sorted by start.
    """
    errors = np.asarray(errors, dtype=float).ravel()
    if index is None:
        index = np.arange(len(errors))
    index = np.asarray(index)
    if len(index) != len(errors):
        raise ValueError("index and errors must be aligned")
    if len(errors) == 0:
        return []
    if z_threshold <= 0:
        raise ValueError("z_threshold must be positive")

    flagged = np.zeros(len(errors), dtype=bool)
    window_size = max(10, min(window_size, len(errors)))
    window_step = max(1, window_step)
    for start in range(0, len(errors), window_step):
        window = errors[start:start + window_size]
        if len(window) < 3:
            continue
        mean = window.mean()
        std = window.std()
        if std == 0.0:
            continue
        threshold = mean + z_threshold * std
        # require the threshold to be meaningfully above the window mean
        minimum = mean * (1.0 + min_percent)
        threshold = max(threshold, minimum)
        local_flags = window > threshold
        flagged[start:start + window_size] |= local_flags
        if start + window_size >= len(errors):
            break

    if not flagged.any():
        return []

    # pad flagged points and merge into contiguous intervals
    padded = np.zeros_like(flagged)
    for position in np.flatnonzero(flagged):
        low = max(0, position - anomaly_padding)
        high = min(len(flagged), position + anomaly_padding + 1)
        padded[low:high] = True

    anomalies = []
    start = None
    for position, is_anomalous in enumerate(padded):
        if is_anomalous and start is None:
            start = position
        elif not is_anomalous and start is not None:
            anomalies.append((start, position - 1))
            start = None
    if start is not None:
        anomalies.append((start, len(padded) - 1))

    results = []
    for interval_start, interval_end in anomalies:
        severity = float(errors[interval_start:interval_end + 1].max())
        results.append((float(index[interval_start]), float(index[interval_end]), severity))
    return sorted(results, key=lambda item: item[0])
