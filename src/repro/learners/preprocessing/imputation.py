"""Missing value imputation (stand-in for ``sklearn.impute.SimpleImputer``)."""

import numpy as np

from repro.learners.base import BaseEstimator, TransformerMixin
from repro.learners.validation import check_array


class SimpleImputer(BaseEstimator, TransformerMixin):
    """Impute missing values column-by-column with a simple statistic.

    Parameters
    ----------
    strategy:
        One of ``"mean"``, ``"median"``, ``"most_frequent"`` or
        ``"constant"``.
    fill_value:
        Value used when ``strategy="constant"``.
    """

    def __init__(self, strategy="mean", fill_value=0.0):
        self.strategy = strategy
        self.fill_value = fill_value

    def fit(self, X, y=None):
        X = check_array(X, allow_nan=True)
        if self.strategy not in ("mean", "median", "most_frequent", "constant"):
            raise ValueError("Unknown imputation strategy: {!r}".format(self.strategy))
        statistics = np.empty(X.shape[1], dtype=float)
        for column in range(X.shape[1]):
            values = X[:, column]
            observed = values[~np.isnan(values)]
            if self.strategy == "constant":
                statistics[column] = self.fill_value
            elif observed.size == 0:
                statistics[column] = self.fill_value
            elif self.strategy == "mean":
                statistics[column] = observed.mean()
            elif self.strategy == "median":
                statistics[column] = np.median(observed)
            else:  # most_frequent
                uniques, counts = np.unique(observed, return_counts=True)
                statistics[column] = uniques[np.argmax(counts)]
        self.statistics_ = statistics
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("statistics_")
        X = check_array(X, allow_nan=True)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                "X has {} features but SimpleImputer was fitted with {}".format(
                    X.shape[1], self.n_features_in_
                )
            )
        X = X.copy()
        for column in range(X.shape[1]):
            mask = np.isnan(X[:, column])
            X[mask, column] = self.statistics_[column]
        return X
