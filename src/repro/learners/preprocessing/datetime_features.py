"""Datetime featurization (the ``DatetimeFeaturizer`` primitive of paper Figure 2).

Timestamps — unix seconds or ISO-8601 strings — are expanded into numeric
calendar features (year, month, day, weekday, hour, minute) so that
downstream estimators can use them.  This also provides the catalog's
"pandas" source bucket: the original catalog wraps two small pandas
helpers for exactly this kind of column manipulation.
"""

from datetime import datetime, timezone

import numpy as np

from repro.learners.base import BaseEstimator, TransformerMixin

#: Calendar components extracted for every timestamp.
DATETIME_COMPONENTS = ("year", "month", "day", "weekday", "hour", "minute")


def _to_datetime(value):
    """Convert a unix timestamp, ISO string or datetime into a datetime object."""
    if isinstance(value, datetime):
        return value
    if isinstance(value, (int, float, np.integer, np.floating)):
        return datetime.fromtimestamp(float(value), tz=timezone.utc)
    text = str(value).strip()
    for fmt in ("%Y-%m-%d %H:%M:%S", "%Y-%m-%dT%H:%M:%S", "%Y-%m-%d", "%Y/%m/%d"):
        try:
            return datetime.strptime(text, fmt)
        except ValueError:
            continue
    raise ValueError("Cannot interpret {!r} as a datetime".format(value))


def datetime_components(value):
    """Return the calendar components of one timestamp as a float vector."""
    moment = _to_datetime(value)
    return np.asarray([
        float(moment.year),
        float(moment.month),
        float(moment.day),
        float(moment.weekday()),
        float(moment.hour),
        float(moment.minute),
    ])


class DatetimeFeaturizer(BaseEstimator, TransformerMixin):
    """Expand one or more timestamp columns into calendar features.

    Parameters
    ----------
    columns:
        Indices of the timestamp columns.  ``None`` treats every column as
        a timestamp (the common case of a single-column datetime array).
    keep_original:
        If True, the remaining (non-timestamp) columns are passed through
        unchanged and the calendar features are appended.
    """

    def __init__(self, columns=None, keep_original=True):
        self.columns = columns
        self.keep_original = keep_original

    def fit(self, X, y=None):
        X = _as_2d(X)
        self.columns_ = list(self.columns) if self.columns is not None else list(range(X.shape[1]))
        for column in self.columns_:
            if column >= X.shape[1]:
                raise ValueError("Column index {} out of range".format(column))
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("columns_")
        X = _as_2d(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError("Inconsistent number of columns")
        blocks = []
        if self.keep_original:
            passthrough = [i for i in range(X.shape[1]) if i not in self.columns_]
            if passthrough:
                blocks.append(np.asarray(X[:, passthrough], dtype=float))
        for column in self.columns_:
            expanded = np.stack([datetime_components(value) for value in X[:, column]])
            blocks.append(expanded)
        return np.hstack(blocks)

    def feature_names(self):
        """Names of the generated calendar features, per timestamp column."""
        self._check_fitted("columns_")
        names = []
        for column in self.columns_:
            names.extend("col{}_{}".format(column, part) for part in DATETIME_COMPONENTS)
        return names


def _as_2d(X):
    X = np.asarray(X, dtype=object)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError("Expected a 1D or 2D array of timestamps")
    return X
