"""Categorical and label encoders.

``ClassEncoder`` / ``ClassDecoder`` reproduce the target encoding
primitives that appear in most of the default templates of paper
Table II, and ``CategoricalEncoder`` is the feature-side one-hot encoder
used in the graph and tabular templates.
"""

import numpy as np

from repro.learners.base import BaseEstimator, TransformerMixin
from repro.learners.validation import column_or_1d


class LabelEncoder(BaseEstimator, TransformerMixin):
    """Encode target labels as integers ``0..n_classes-1``."""

    def fit(self, y, _unused=None):
        y = column_or_1d(y)
        self.classes_ = np.unique(y)
        return self

    def transform(self, y):
        self._check_fitted("classes_")
        y = column_or_1d(y)
        index = {label: i for i, label in enumerate(self.classes_)}
        try:
            return np.asarray([index[value] for value in y], dtype=int)
        except KeyError as error:
            raise ValueError("y contains previously unseen label: {!r}".format(error.args[0]))

    def inverse_transform(self, y):
        self._check_fitted("classes_")
        y = np.asarray(y, dtype=int)
        if y.size and (y.min() < 0 or y.max() >= len(self.classes_)):
            raise ValueError("y contains out-of-range encoded labels")
        return self.classes_[y]


class ClassEncoder(LabelEncoder):
    """Primitive-style alias of :class:`LabelEncoder`.

    ``produce`` returns both the encoded target and the array of classes so
    downstream primitives (for example :class:`ClassDecoder`) can decode
    predictions, mirroring the ``classes`` ML data type in the paper.
    """

    def produce(self, y):
        encoded = self.fit(y).transform(y)
        return encoded, self.classes_


class ClassDecoder(BaseEstimator):
    """Decode integer predictions back into the original class labels."""

    def fit(self, classes=None, _unused=None):
        self.classes_ = None if classes is None else np.asarray(classes)
        return self

    def produce(self, y, classes=None):
        if classes is not None:
            self.classes_ = np.asarray(classes)
        if self.classes_ is None:
            raise ValueError("ClassDecoder requires the 'classes' array before decoding")
        y = np.asarray(np.round(np.asarray(y, dtype=float)), dtype=int)
        y = np.clip(y, 0, len(self.classes_) - 1)
        return self.classes_[y]


class OrdinalEncoder(BaseEstimator, TransformerMixin):
    """Encode categorical feature columns as integer codes."""

    def __init__(self, unknown_value=-1):
        self.unknown_value = unknown_value

    def fit(self, X, y=None):
        X = _as_object_2d(X)
        self.categories_ = [np.unique(X[:, j]) for j in range(X.shape[1])]
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("categories_")
        X = _as_object_2d(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError("Inconsistent number of columns")
        encoded = np.empty(X.shape, dtype=float)
        for j, categories in enumerate(self.categories_):
            index = {category: i for i, category in enumerate(categories)}
            encoded[:, j] = [index.get(value, self.unknown_value) for value in X[:, j]]
        return encoded


class OneHotEncoder(BaseEstimator, TransformerMixin):
    """One-hot encode categorical feature columns.

    Unknown categories at transform time map to an all-zeros block rather
    than raising, because AutoML search routinely hits unseen categories
    in cross-validation folds.
    """

    def fit(self, X, y=None):
        X = _as_object_2d(X)
        self.categories_ = [np.unique(X[:, j]) for j in range(X.shape[1])]
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("categories_")
        X = _as_object_2d(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError("Inconsistent number of columns")
        blocks = []
        for j, categories in enumerate(self.categories_):
            index = {category: i for i, category in enumerate(categories)}
            block = np.zeros((X.shape[0], len(categories)))
            for row, value in enumerate(X[:, j]):
                position = index.get(value)
                if position is not None:
                    block[row, position] = 1.0
            blocks.append(block)
        return np.hstack(blocks)


class CategoricalEncoder(BaseEstimator, TransformerMixin):
    """One-hot encode only the non-numeric columns of a mixed feature matrix.

    Numeric columns pass through unchanged (cast to float); categorical
    columns are replaced by their one-hot expansion.  This mirrors the
    ``CategoricalEncoder`` primitive from MLPrimitives used in graph and
    tabular templates.
    """

    def __init__(self, max_unique_ratio=1.0):
        self.max_unique_ratio = max_unique_ratio

    def fit(self, X, y=None):
        X = _as_object_2d(X)
        self.categorical_columns_ = []
        self.numeric_columns_ = []
        for j in range(X.shape[1]):
            if _is_numeric_column(X[:, j]):
                self.numeric_columns_.append(j)
            else:
                self.categorical_columns_.append(j)
        if self.categorical_columns_:
            self._onehot = OneHotEncoder()
            self._onehot.fit(X[:, self.categorical_columns_])
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("n_features_in_")
        X = _as_object_2d(X)
        parts = []
        if self.numeric_columns_:
            parts.append(X[:, self.numeric_columns_].astype(float))
        if self.categorical_columns_:
            parts.append(self._onehot.transform(X[:, self.categorical_columns_]))
        if not parts:
            return np.zeros((X.shape[0], 0))
        return np.hstack(parts)


def _as_object_2d(X):
    X = np.asarray(X, dtype=object)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError("Expected a 1D or 2D array, got shape {}".format(X.shape))
    return X


def _is_numeric_column(column):
    try:
        np.asarray(column, dtype=float)
        return True
    except (TypeError, ValueError):
        return False
