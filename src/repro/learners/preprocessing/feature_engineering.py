"""Additional stateless-ish feature engineering transformers.

These round out the preprocessing part of the catalog: normalization,
binarization, polynomial expansion, discretization and simple univariate
feature selection — all of which exist as primitives in the original
MLPrimitives catalog via their scikit-learn counterparts.
"""

import numpy as np

from repro.learners.base import BaseEstimator, TransformerMixin
from repro.learners.validation import check_array, check_X_y


class Normalizer(BaseEstimator, TransformerMixin):
    """Scale individual samples to unit norm (L1 or L2)."""

    def __init__(self, norm="l2"):
        self.norm = norm

    def fit(self, X, y=None):
        if self.norm not in ("l1", "l2", "max"):
            raise ValueError("norm must be 'l1', 'l2' or 'max'")
        self.n_features_in_ = check_array(X).shape[1]
        return self

    def transform(self, X):
        self._check_fitted("n_features_in_")
        X = check_array(X)
        if self.norm == "l1":
            norms = np.abs(X).sum(axis=1)
        elif self.norm == "l2":
            norms = np.sqrt((X ** 2).sum(axis=1))
        else:
            norms = np.abs(X).max(axis=1)
        norms[norms == 0.0] = 1.0
        return X / norms[:, None]


class Binarizer(BaseEstimator, TransformerMixin):
    """Threshold features to 0/1."""

    def __init__(self, threshold=0.0):
        self.threshold = threshold

    def fit(self, X, y=None):
        self.n_features_in_ = check_array(X).shape[1]
        return self

    def transform(self, X):
        self._check_fitted("n_features_in_")
        X = check_array(X)
        return (X > self.threshold).astype(float)


class PolynomialFeatures(BaseEstimator, TransformerMixin):
    """Degree-2 polynomial feature expansion (optionally interactions only)."""

    def __init__(self, interaction_only=False, include_bias=False):
        self.interaction_only = interaction_only
        self.include_bias = include_bias

    def fit(self, X, y=None):
        self.n_features_in_ = check_array(X).shape[1]
        return self

    def transform(self, X):
        self._check_fitted("n_features_in_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError("Inconsistent number of features")
        columns = []
        if self.include_bias:
            columns.append(np.ones((X.shape[0], 1)))
        columns.append(X)
        n_features = X.shape[1]
        for i in range(n_features):
            start = i + 1 if self.interaction_only else i
            for j in range(start, n_features):
                columns.append((X[:, i] * X[:, j]).reshape(-1, 1))
        return np.hstack(columns)


class KBinsDiscretizer(BaseEstimator, TransformerMixin):
    """Discretize features into equal-frequency ordinal bins."""

    def __init__(self, n_bins=5):
        self.n_bins = n_bins

    def fit(self, X, y=None):
        if self.n_bins < 2:
            raise ValueError("n_bins must be at least 2")
        X = check_array(X)
        quantiles = np.linspace(0, 100, self.n_bins + 1)[1:-1]
        self.bin_edges_ = [np.unique(np.percentile(X[:, j], quantiles)) for j in range(X.shape[1])]
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("bin_edges_")
        X = check_array(X)
        binned = np.empty_like(X)
        for j, edges in enumerate(self.bin_edges_):
            binned[:, j] = np.searchsorted(edges, X[:, j])
        return binned


class VarianceThreshold(BaseEstimator, TransformerMixin):
    """Remove features whose variance is below a threshold."""

    def __init__(self, threshold=0.0):
        self.threshold = threshold

    def fit(self, X, y=None):
        X = check_array(X)
        variances = X.var(axis=0)
        self.support_ = variances > self.threshold
        if not self.support_.any():
            self.support_[np.argmax(variances)] = True
        self.variances_ = variances
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("support_")
        X = check_array(X)
        return X[:, self.support_]


def f_score_classification(X, y):
    """One-way ANOVA F-score of each feature against a categorical target."""
    X, y = check_X_y(X, y)
    classes = np.unique(y)
    overall_mean = X.mean(axis=0)
    between = np.zeros(X.shape[1])
    within = np.zeros(X.shape[1])
    for label in classes:
        members = X[y == label]
        between += len(members) * (members.mean(axis=0) - overall_mean) ** 2
        within += ((members - members.mean(axis=0)) ** 2).sum(axis=0)
    df_between = max(len(classes) - 1, 1)
    df_within = max(X.shape[0] - len(classes), 1)
    within[within == 0.0] = 1e-12
    return (between / df_between) / (within / df_within)


def correlation_score_regression(X, y):
    """Absolute Pearson correlation of each feature with a numeric target."""
    X, y = check_X_y(X, y, y_numeric=True)
    X_centered = X - X.mean(axis=0)
    y_centered = y - y.mean()
    numerator = np.abs(X_centered.T @ y_centered)
    denominator = np.sqrt((X_centered ** 2).sum(axis=0) * (y_centered ** 2).sum())
    denominator[denominator == 0.0] = 1e-12
    return numerator / denominator


class SelectKBest(BaseEstimator, TransformerMixin):
    """Keep the K features with the highest univariate score.

    Parameters
    ----------
    k:
        Number of features to keep.
    problem_type:
        ``"classification"`` (ANOVA F-score) or ``"regression"``
        (absolute correlation).
    """

    def __init__(self, k=10, problem_type="classification"):
        self.k = k
        self.problem_type = problem_type

    def fit(self, X, y):
        if self.k < 1:
            raise ValueError("k must be at least 1")
        if self.problem_type == "classification":
            scores = f_score_classification(X, y)
        elif self.problem_type == "regression":
            scores = correlation_score_regression(X, y)
        else:
            raise ValueError("Unknown problem_type: {!r}".format(self.problem_type))
        self.scores_ = scores
        k = min(self.k, len(scores))
        self.support_ = np.zeros(len(scores), dtype=bool)
        self.support_[np.argsort(scores)[::-1][:k]] = True
        self.n_features_in_ = len(scores)
        return self

    def transform(self, X):
        self._check_fitted("support_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError("Inconsistent number of features")
        return X[:, self.support_]
