"""Dimensionality reduction: PCA and truncated SVD."""

import numpy as np

from repro.learners.base import BaseEstimator, TransformerMixin
from repro.learners.validation import check_array


class PCA(BaseEstimator, TransformerMixin):
    """Principal component analysis via singular value decomposition.

    Parameters
    ----------
    n_components:
        Number of components to keep.  ``None`` keeps
        ``min(n_samples, n_features)`` components.
    whiten:
        If True, components are scaled to unit variance.
    """

    def __init__(self, n_components=None, whiten=False):
        self.n_components = n_components
        self.whiten = whiten

    def fit(self, X, y=None):
        if self.n_components is not None and self.n_components < 1:
            raise ValueError("n_components must be at least 1")
        X = check_array(X)
        n_samples, n_features = X.shape
        n_components = self.n_components or min(n_samples, n_features)
        n_components = min(n_components, n_samples, n_features)
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        _, singular_values, vt = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vt[:n_components]
        explained_variance = (singular_values ** 2) / max(n_samples - 1, 1)
        total_variance = explained_variance.sum()
        self.explained_variance_ = explained_variance[:n_components]
        if total_variance > 0:
            self.explained_variance_ratio_ = self.explained_variance_ / total_variance
        else:
            self.explained_variance_ratio_ = np.zeros(n_components)
        self.n_components_ = n_components
        self.n_features_in_ = n_features
        return self

    def transform(self, X):
        self._check_fitted("components_")
        X = check_array(X)
        transformed = (X - self.mean_) @ self.components_.T
        if self.whiten:
            scale = np.sqrt(self.explained_variance_)
            scale[scale == 0.0] = 1.0
            transformed = transformed / scale
        return transformed

    def inverse_transform(self, X):
        self._check_fitted("components_")
        X = check_array(X)
        if self.whiten:
            X = X * np.sqrt(self.explained_variance_)
        return X @ self.components_ + self.mean_


class TruncatedSVD(BaseEstimator, TransformerMixin):
    """Dimensionality reduction without centering (suitable for sparse-like data)."""

    def __init__(self, n_components=2):
        self.n_components = n_components

    def fit(self, X, y=None):
        X = check_array(X)
        n_components = min(self.n_components, X.shape[0], X.shape[1])
        if n_components < 1:
            raise ValueError("n_components must be at least 1")
        _, singular_values, vt = np.linalg.svd(X, full_matrices=False)
        self.components_ = vt[:n_components]
        self.singular_values_ = singular_values[:n_components]
        self.n_components_ = n_components
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("components_")
        X = check_array(X)
        return X @ self.components_.T
