"""Feature scaling transformers (StandardScaler, MinMaxScaler, RobustScaler)."""

import numpy as np

from repro.learners.base import BaseEstimator, TransformerMixin
from repro.learners.validation import check_array


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardize features by removing the mean and scaling to unit variance."""

    def __init__(self, with_mean=True, with_std=True):
        self.with_mean = with_mean
        self.with_std = with_std

    def fit(self, X, y=None):
        X = check_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("mean_")
        X = check_array(X)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X):
        self._check_fitted("mean_")
        X = check_array(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Scale features to a given range (default ``[0, 1]``)."""

    def __init__(self, feature_range=(0.0, 1.0)):
        self.feature_range = feature_range

    def fit(self, X, y=None):
        low, high = self.feature_range
        if low >= high:
            raise ValueError("feature_range minimum must be smaller than maximum")
        X = check_array(X)
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        data_range = self.data_max_ - self.data_min_
        data_range[data_range == 0.0] = 1.0
        self.data_range_ = data_range
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("data_min_")
        X = check_array(X)
        low, high = self.feature_range
        scaled = (X - self.data_min_) / self.data_range_
        return scaled * (high - low) + low

    def inverse_transform(self, X):
        self._check_fitted("data_min_")
        X = check_array(X)
        low, high = self.feature_range
        unscaled = (X - low) / (high - low)
        return unscaled * self.data_range_ + self.data_min_


class RobustScaler(BaseEstimator, TransformerMixin):
    """Scale features using the median and interquartile range."""

    def __init__(self, quantile_range=(25.0, 75.0)):
        self.quantile_range = quantile_range

    def fit(self, X, y=None):
        X = check_array(X)
        low, high = self.quantile_range
        if not 0 <= low < high <= 100:
            raise ValueError("Invalid quantile_range: {!r}".format(self.quantile_range))
        self.center_ = np.median(X, axis=0)
        iqr = np.percentile(X, high, axis=0) - np.percentile(X, low, axis=0)
        iqr[iqr == 0.0] = 1.0
        self.scale_ = iqr
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("center_")
        X = check_array(X)
        return (X - self.center_) / self.scale_
