"""Preprocessing transformers: imputation, scaling, encoding, decomposition."""

from repro.learners.preprocessing.imputation import SimpleImputer
from repro.learners.preprocessing.scalers import MinMaxScaler, RobustScaler, StandardScaler
from repro.learners.preprocessing.encoders import (
    CategoricalEncoder,
    ClassDecoder,
    ClassEncoder,
    LabelEncoder,
    OneHotEncoder,
    OrdinalEncoder,
)
from repro.learners.preprocessing.decomposition import PCA, TruncatedSVD
from repro.learners.preprocessing.datetime_features import DatetimeFeaturizer
from repro.learners.preprocessing.feature_engineering import (
    Binarizer,
    KBinsDiscretizer,
    Normalizer,
    PolynomialFeatures,
    SelectKBest,
    VarianceThreshold,
)

__all__ = [
    "SimpleImputer",
    "StandardScaler",
    "MinMaxScaler",
    "RobustScaler",
    "LabelEncoder",
    "ClassEncoder",
    "ClassDecoder",
    "OneHotEncoder",
    "OrdinalEncoder",
    "CategoricalEncoder",
    "PCA",
    "TruncatedSVD",
    "Normalizer",
    "Binarizer",
    "PolynomialFeatures",
    "KBinsDiscretizer",
    "VarianceThreshold",
    "SelectKBest",
    "DatetimeFeaturizer",
]
