"""Collaborative filtering (LightFM stand-in)."""

from repro.learners.recommendation.matrix_factorization import MatrixFactorization

__all__ = ["MatrixFactorization"]
