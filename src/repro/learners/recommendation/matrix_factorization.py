"""Matrix factorization for collaborative filtering (stand-in for LightFM).

Trains user and item embeddings with biased SGD on observed
(user, item, rating) triples, which is the interaction format used by the
collaborative filtering tasks of paper Table II.
"""

import numpy as np

from repro.learners.base import BaseEstimator, RegressorMixin, check_random_state
from repro.learners.validation import check_array


class MatrixFactorization(BaseEstimator, RegressorMixin):
    """Biased matrix factorization trained with stochastic gradient descent.

    Parameters
    ----------
    n_factors:
        Dimensionality of the user/item embeddings.
    learning_rate, reg, epochs:
        SGD hyperparameters.
    """

    def __init__(self, n_factors=8, learning_rate=0.05, reg=0.02, epochs=30, random_state=None):
        self.n_factors = n_factors
        self.learning_rate = learning_rate
        self.reg = reg
        self.epochs = epochs
        self.random_state = random_state

    def fit(self, X, y):
        """Fit on interaction triples.

        ``X`` has two columns (user id, item id); ``y`` is the rating or
        implicit-feedback strength.
        """
        if self.n_factors < 1:
            raise ValueError("n_factors must be at least 1")
        X = check_array(X)
        if X.shape[1] < 2:
            raise ValueError("X must have (user, item) columns")
        y = np.asarray(y, dtype=float).ravel()
        users = X[:, 0].astype(int)
        items = X[:, 1].astype(int)
        self.n_users_ = int(users.max()) + 1
        self.n_items_ = int(items.max()) + 1

        rng = check_random_state(self.random_state)
        scale = 1.0 / np.sqrt(self.n_factors)
        self.user_factors_ = rng.normal(0.0, scale, size=(self.n_users_, self.n_factors))
        self.item_factors_ = rng.normal(0.0, scale, size=(self.n_items_, self.n_factors))
        self.user_bias_ = np.zeros(self.n_users_)
        self.item_bias_ = np.zeros(self.n_items_)
        self.global_bias_ = float(y.mean())

        n_interactions = len(y)
        for _ in range(self.epochs):
            order = rng.permutation(n_interactions)
            for position in order:
                user, item, rating = users[position], items[position], y[position]
                prediction = (
                    self.global_bias_
                    + self.user_bias_[user]
                    + self.item_bias_[item]
                    + self.user_factors_[user] @ self.item_factors_[item]
                )
                error = rating - prediction
                self.user_bias_[user] += self.learning_rate * (error - self.reg * self.user_bias_[user])
                self.item_bias_[item] += self.learning_rate * (error - self.reg * self.item_bias_[item])
                user_factor = self.user_factors_[user].copy()
                self.user_factors_[user] += self.learning_rate * (
                    error * self.item_factors_[item] - self.reg * user_factor
                )
                self.item_factors_[item] += self.learning_rate * (
                    error * user_factor - self.reg * self.item_factors_[item]
                )
        return self

    def predict(self, X):
        self._check_fitted("user_factors_")
        X = check_array(X)
        users = np.clip(X[:, 0].astype(int), 0, self.n_users_ - 1)
        items = np.clip(X[:, 1].astype(int), 0, self.n_items_ - 1)
        predictions = (
            self.global_bias_
            + self.user_bias_[users]
            + self.item_bias_[items]
            + np.sum(self.user_factors_[users] * self.item_factors_[items], axis=1)
        )
        return predictions
