"""Base estimator API shared by every learner in the substrate.

The design deliberately mirrors the scikit-learn ``fit``/``predict``
paradigm referenced throughout the ML Bazaar paper so that primitive
annotations can wrap our learners exactly the way MLPrimitives wraps
scikit-learn estimators.
"""

import copy
import inspect

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class BaseEstimator:
    """Base class providing parameter introspection and cloning.

    Subclasses must accept all of their configuration through explicit
    keyword arguments in ``__init__`` and store each argument on an
    attribute of the same name.  This is the contract that makes
    ``get_params`` / ``set_params`` and therefore hyperparameter tuning
    work without any per-estimator glue code.
    """

    @classmethod
    def _param_names(cls):
        init = cls.__init__
        if init is object.__init__:
            return []
        signature = inspect.signature(init)
        names = [
            name
            for name, parameter in signature.parameters.items()
            if name != "self" and parameter.kind != inspect.Parameter.VAR_KEYWORD
        ]
        return sorted(names)

    def get_params(self):
        """Return the constructor parameters of this estimator as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params):
        """Set constructor parameters on this estimator.

        Unknown parameter names raise ``ValueError`` so that tuners cannot
        silently misconfigure an estimator.
        """
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    "Invalid parameter {!r} for estimator {}".format(name, type(self).__name__)
                )
            setattr(self, name, value)
        return self

    def _check_fitted(self, attribute):
        if not hasattr(self, attribute):
            raise NotFittedError(
                "{} instance is not fitted yet; call 'fit' first".format(type(self).__name__)
            )

    def __repr__(self):
        params = ", ".join("{}={!r}".format(k, v) for k, v in self.get_params().items())
        return "{}({})".format(type(self).__name__, params)


def clone(estimator):
    """Return an unfitted copy of ``estimator`` with the same parameters."""
    params = {key: copy.deepcopy(value) for key, value in estimator.get_params().items()}
    return type(estimator)(**params)


class ClassifierMixin:
    """Mixin adding ``score`` (accuracy) for classifiers."""

    _estimator_type = "classifier"

    def score(self, X, y):
        from repro.learners.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))


class RegressorMixin:
    """Mixin adding ``score`` (R^2) for regressors."""

    _estimator_type = "regressor"

    def score(self, X, y):
        from repro.learners.metrics import r2_score

        return r2_score(y, self.predict(X))


class TransformerMixin:
    """Mixin adding ``fit_transform`` for transformers."""

    _estimator_type = "transformer"

    def fit_transform(self, X, y=None):
        return self.fit(X, y).transform(X)


def check_random_state(seed):
    """Turn ``seed`` into a ``numpy.random.RandomState`` instance.

    ``None`` returns the process-global RandomState singleton (the sklearn
    convention), so unseeded components follow ``np.random.seed`` instead
    of drawing a fresh OS-entropy seed per component — without this, no
    ambient seeding can ever make an unseeded pipeline reproducible.
    """
    if seed is None:
        return np.random.mtrand._rand
    if isinstance(seed, np.random.RandomState):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.RandomState(int(seed))
    raise ValueError("Cannot use {!r} to seed a RandomState".format(seed))
