"""Image feature extraction.

The paper's image templates use a Keras pretrained CNN (MobileNet) as a
frozen featurizer plus an XGBoost head.  Pretrained weights are not
available offline, so :class:`PretrainedCNNFeaturizer` substitutes a fixed
random convolutional projection (deterministic given the seed), which
preserves the template structure (preprocess -> frozen featurizer ->
estimator) and produces informative features for the synthetic image
tasks.  :class:`HOGFeaturizer` reproduces the classic ``hog`` primitive.
"""

import numpy as np

from repro.learners.base import BaseEstimator, TransformerMixin, check_random_state


def flatten_images(X):
    """Flatten a stack of images into a 2-D feature matrix (one row per image)."""
    X = np.asarray(X, dtype=float)
    if X.ndim <= 2:
        return X
    return X.reshape(X.shape[0], -1)


def preprocess_input(images):
    """Scale uint8-style images to the [-1, 1] range (Keras ``preprocess_input``)."""
    images = np.asarray(images, dtype=float)
    if images.max() > 1.0:
        images = images / 127.5 - 1.0
    return images


class GaussianBlur(BaseEstimator):
    """Blur images with a separable Gaussian kernel (OpenCV stand-in)."""

    def __init__(self, kernel_size=3, sigma=1.0):
        self.kernel_size = kernel_size
        self.sigma = sigma

    def produce(self, images):
        images = np.asarray(images, dtype=float)
        if images.ndim == 2:
            images = images[None, :, :]
        if self.kernel_size < 1 or self.kernel_size % 2 == 0:
            raise ValueError("kernel_size must be a positive odd number")
        kernel = self._kernel()
        blurred = np.empty_like(images)
        for index, image in enumerate(images):
            blurred[index] = self._convolve2d_separable(image, kernel)
        return blurred

    def _kernel(self):
        half = self.kernel_size // 2
        positions = np.arange(-half, half + 1, dtype=float)
        kernel = np.exp(-(positions ** 2) / (2.0 * self.sigma ** 2))
        return kernel / kernel.sum()

    @staticmethod
    def _convolve2d_separable(image, kernel):
        pad = len(kernel) // 2
        padded = np.pad(image, pad, mode="edge")
        # horizontal then vertical pass
        horizontal = np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="valid"), 1, padded
        )
        vertical = np.apply_along_axis(
            lambda column: np.convolve(column, kernel, mode="valid"), 0, horizontal
        )
        return vertical


class HOGFeaturizer(BaseEstimator, TransformerMixin):
    """Histogram-of-oriented-gradients features for grayscale images."""

    def __init__(self, cell_size=8, n_bins=9):
        self.cell_size = cell_size
        self.n_bins = n_bins

    def fit(self, X, y=None):
        return self

    def transform(self, X):
        images = np.asarray(X, dtype=float)
        if images.ndim == 2:
            images = images[None, :, :]
        if images.ndim == 4:  # drop a channel axis by averaging
            images = images.mean(axis=-1)
        return np.stack([self._hog(image) for image in images])

    def _hog(self, image):
        gradient_y, gradient_x = np.gradient(image)
        magnitude = np.sqrt(gradient_x ** 2 + gradient_y ** 2)
        orientation = np.arctan2(gradient_y, gradient_x) % np.pi

        height, width = image.shape
        cells_y = max(1, height // self.cell_size)
        cells_x = max(1, width // self.cell_size)
        histogram = np.zeros((cells_y, cells_x, self.n_bins))
        bin_width = np.pi / self.n_bins
        for cy in range(cells_y):
            for cx in range(cells_x):
                y0, y1 = cy * self.cell_size, min((cy + 1) * self.cell_size, height)
                x0, x1 = cx * self.cell_size, min((cx + 1) * self.cell_size, width)
                cell_magnitude = magnitude[y0:y1, x0:x1].ravel()
                cell_orientation = orientation[y0:y1, x0:x1].ravel()
                bins = np.minimum((cell_orientation / bin_width).astype(int), self.n_bins - 1)
                for bin_index in range(self.n_bins):
                    histogram[cy, cx, bin_index] = cell_magnitude[bins == bin_index].sum()
        flattened = histogram.ravel()
        norm = np.linalg.norm(flattened)
        return flattened / norm if norm > 0 else flattened


class SobelEdgeFeaturizer(BaseEstimator, TransformerMixin):
    """Edge-statistics features from Sobel gradients.

    For each image, the Sobel gradient magnitudes are summarized per grid
    cell (mean and max), giving a cheap orientation-free complement to the
    HOG features.
    """

    def __init__(self, grid=4):
        self.grid = grid

    def fit(self, X, y=None):
        if self.grid < 1:
            raise ValueError("grid must be at least 1")
        return self

    def transform(self, X):
        images = np.asarray(X, dtype=float)
        if images.ndim == 2:
            images = images[None, :, :]
        if images.ndim == 4:
            images = images.mean(axis=-1)
        return np.stack([self._featurize(image) for image in images])

    def _featurize(self, image):
        kernel_x = np.array([[-1, 0, 1], [-2, 0, 2], [-1, 0, 1]], dtype=float)
        kernel_y = kernel_x.T
        gx = _convolve_valid(image, kernel_x)
        gy = _convolve_valid(image, kernel_y)
        magnitude = np.sqrt(gx ** 2 + gy ** 2)
        height, width = magnitude.shape
        cell_h = max(1, height // self.grid)
        cell_w = max(1, width // self.grid)
        features = []
        for row in range(self.grid):
            for column in range(self.grid):
                cell = magnitude[row * cell_h:(row + 1) * cell_h,
                                 column * cell_w:(column + 1) * cell_w]
                if cell.size == 0:
                    features.extend([0.0, 0.0])
                else:
                    features.extend([float(cell.mean()), float(cell.max())])
        return np.asarray(features)


def _convolve_valid(image, kernel):
    k = kernel.shape[0]
    height, width = image.shape
    if height < k or width < k:
        return np.zeros((max(height - k + 1, 1), max(width - k + 1, 1)))
    windows = np.lib.stride_tricks.sliding_window_view(image, (k, k))
    return np.einsum("ijkl,kl->ij", windows, kernel)


class PretrainedCNNFeaturizer(BaseEstimator, TransformerMixin):
    """Frozen random convolutional featurizer standing in for MobileNet/ResNet50.

    A bank of fixed random filters is convolved (valid, strided) with the
    input; ReLU activations are average-pooled into a fixed-size feature
    vector.  Weights depend only on ``random_state``, so the featurizer is
    deterministic and identical across fit/produce calls, like a frozen
    pretrained network.
    """

    def __init__(self, n_filters=16, filter_size=5, stride=3, random_state=0):
        self.n_filters = n_filters
        self.filter_size = filter_size
        self.stride = stride
        self.random_state = random_state

    def fit(self, X, y=None):
        rng = check_random_state(self.random_state)
        self.filters_ = rng.normal(
            0.0, 1.0, size=(self.n_filters, self.filter_size, self.filter_size)
        )
        self.filters_ /= np.sqrt(self.filter_size ** 2)
        return self

    def transform(self, X):
        if not hasattr(self, "filters_"):
            self.fit(X)
        images = np.asarray(X, dtype=float)
        if images.ndim == 2:
            images = images[None, :, :]
        if images.ndim == 4:
            images = images.mean(axis=-1)
        return np.stack([self._featurize(image) for image in images])

    def _featurize(self, image):
        size = self.filter_size
        stride = max(1, self.stride)
        height, width = image.shape
        features = []
        for filter_bank in self.filters_:
            activations = []
            for y in range(0, height - size + 1, stride):
                for x in range(0, width - size + 1, stride):
                    patch = image[y:y + size, x:x + size]
                    activations.append(max(0.0, float(np.sum(patch * filter_bank))))
            if not activations:
                activations = [0.0]
            activations = np.asarray(activations)
            features.extend([activations.mean(), activations.max()])
        return np.asarray(features)
