"""Image featurization primitives (stand-ins for OpenCV / pretrained CNNs)."""

from repro.learners.image.features import (
    GaussianBlur,
    HOGFeaturizer,
    PretrainedCNNFeaturizer,
    SobelEdgeFeaturizer,
    flatten_images,
    preprocess_input,
)

__all__ = [
    "GaussianBlur",
    "HOGFeaturizer",
    "PretrainedCNNFeaturizer",
    "SobelEdgeFeaturizer",
    "flatten_images",
    "preprocess_input",
]
