"""Random forests built from bootstrap-aggregated CART trees."""

import numpy as np

from repro.learners.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_random_state
from repro.learners.validation import check_X_y, check_array
from repro.learners.tree.decision_tree import DecisionTreeClassifier, DecisionTreeRegressor


class _BaseForest(BaseEstimator):
    """Shared bagging machinery for forest ensembles."""

    def __init__(self, n_estimators=10, max_depth=None, min_samples_split=2,
                 min_samples_leaf=1, max_features="sqrt", bootstrap=True,
                 max_thresholds=16, random_state=None):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_thresholds = max_thresholds
        self.random_state = random_state

    def _make_tree(self, seed):
        raise NotImplementedError

    def _tree_params(self, seed):
        return dict(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            max_thresholds=self.max_thresholds,
            random_state=seed,
        )

    def _fit_forest(self, X, y):
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        self.estimators_ = []
        for _ in range(self.n_estimators):
            seed = int(rng.randint(0, 2 ** 31 - 1))
            tree = self._make_tree(seed)
            if self.bootstrap:
                indices = rng.randint(0, n_samples, size=n_samples)
            else:
                indices = np.arange(n_samples)
            tree.fit(X[indices], y[indices])
            self.estimators_.append(tree)
        self.n_features_in_ = X.shape[1]
        return self

    def feature_importances(self):
        """Importance of each feature: split usage weighted by node size."""
        self._check_fitted("estimators_")
        counts = np.zeros(self.n_features_in_)

        def visit(node):
            if node is None or node.is_leaf:
                return
            counts[node.feature] += node.n_samples
            visit(node.left)
            visit(node.right)

        for tree in self.estimators_:
            visit(tree.tree_)
        total = counts.sum()
        return counts / total if total > 0 else counts


class RandomForestRegressor(_BaseForest, RegressorMixin):
    """Bagged ensemble of CART regressors (stand-in for sklearn's RandomForestRegressor)."""

    def _make_tree(self, seed):
        return DecisionTreeRegressor(**self._tree_params(seed))

    def fit(self, X, y):
        X, y = check_X_y(X, y, y_numeric=True)
        return self._fit_forest(X, y)

    def predict(self, X):
        self._check_fitted("estimators_")
        X = check_array(X)
        predictions = np.stack([tree.predict(X) for tree in self.estimators_])
        return predictions.mean(axis=0)


class RandomForestClassifier(_BaseForest, ClassifierMixin):
    """Bagged ensemble of CART classifiers (stand-in for sklearn's RandomForestClassifier)."""

    def _make_tree(self, seed):
        return DecisionTreeClassifier(**self._tree_params(seed))

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        return self._fit_forest(X, y)

    def predict_proba(self, X):
        self._check_fitted("estimators_")
        X = check_array(X)
        n_classes = len(self.classes_)
        probabilities = np.zeros((X.shape[0], n_classes))
        class_index = {label: i for i, label in enumerate(self.classes_)}
        for tree in self.estimators_:
            tree_proba = tree.predict_proba(X)
            # trees may have seen a subset of classes under bootstrap sampling
            for j, label in enumerate(tree.classes_):
                probabilities[:, class_index[label]] += tree_proba[:, j]
        probabilities /= len(self.estimators_)
        row_sums = probabilities.sum(axis=1, keepdims=True)
        row_sums[row_sums == 0.0] = 1.0
        return probabilities / row_sums

    def predict(self, X):
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
