"""Tree-based models: CART trees, random forests, extra trees and gradient boosting."""

from repro.learners.tree.decision_tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.learners.tree.random_forest import RandomForestClassifier, RandomForestRegressor
from repro.learners.tree.extra_trees import (
    ExtraTreesClassifier,
    ExtraTreesRegressor,
    ExtraTreesFeatureSelector,
)
from repro.learners.tree.gradient_boosting import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
)

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "ExtraTreesClassifier",
    "ExtraTreesRegressor",
    "ExtraTreesFeatureSelector",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
]
