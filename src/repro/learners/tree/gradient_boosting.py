"""Gradient boosted trees in the style of XGBoost.

This is the stand-in for the ``XGBClassifier`` / ``XGBRegressor``
primitives that dominate the default templates of paper Table II and that
are the subject of the case study in Section VI-B (XGB vs RF).  Like
XGBoost it uses a second-order Taylor approximation of the loss, L2 leaf
regularization (``reg_lambda``) and shrinkage (``learning_rate``), with
Newton trees fitted to the per-sample gradient/hessian statistics.
"""

import numpy as np

from repro.learners.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_random_state
from repro.learners.validation import check_X_y, check_array
from repro.learners.tree.decision_tree import _BaseDecisionTree


class _NewtonTree(_BaseDecisionTree):
    """Regression tree whose leaves store the Newton step -G/(H + lambda).

    The split criterion is the (negated, count-normalized) XGBoost
    structure score -G^2/(H + lambda), so maximizing the impurity decrease
    is equivalent to maximizing the XGBoost split gain.
    """

    def __init__(self, reg_lambda=1.0, **kwargs):
        super().__init__(**kwargs)
        self.reg_lambda = reg_lambda

    def fit_gradients(self, X, gradients, hessians):
        stats = np.column_stack([gradients, hessians])
        return self._fit_tree(np.asarray(X, dtype=float), stats)

    def _impurity_from_stats(self, sums, counts):
        counts = np.asarray(counts, dtype=float)
        gradient_sums = sums[:, 0]
        hessian_sums = sums[:, 1]
        structure_score = (gradient_sums ** 2) / (hessian_sums + self.reg_lambda)
        return -structure_score / counts

    def _leaf_value_from_stats(self, sums, count):
        return float(-sums[0] / (sums[1] + self.reg_lambda))

    def predict_values(self, X):
        return np.asarray(self._predict_values(np.asarray(X, dtype=float)))


class _BaseGradientBoosting(BaseEstimator):
    """Shared boosting loop for the classifier and regressor."""

    def __init__(self, n_estimators=30, learning_rate=0.1, max_depth=3,
                 min_samples_split=2, min_samples_leaf=1, subsample=1.0,
                 reg_lambda=1.0, max_thresholds=16, random_state=None):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.reg_lambda = reg_lambda
        self.max_thresholds = max_thresholds
        self.random_state = random_state

    def _validate(self):
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")

    def _new_tree(self, seed):
        return _NewtonTree(
            reg_lambda=self.reg_lambda,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_thresholds=self.max_thresholds,
            random_state=seed,
        )

    def _boost(self, X, n_outputs, gradient_fn):
        """Run the boosting loop.

        ``gradient_fn(raw_predictions)`` must return per-output
        ``(gradients, hessians)`` arrays of shape (n_samples, n_outputs).
        """
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        raw_predictions = np.full((n_samples, n_outputs), self._base_score, dtype=float)
        self.stages_ = []
        for _ in range(self.n_estimators):
            gradients, hessians = gradient_fn(raw_predictions)
            stage = []
            if self.subsample < 1.0:
                n_sub = max(2, int(self.subsample * n_samples))
                subsample_indices = rng.choice(n_samples, size=n_sub, replace=False)
            else:
                subsample_indices = np.arange(n_samples)
            for output in range(n_outputs):
                seed = int(rng.randint(0, 2 ** 31 - 1))
                tree = self._new_tree(seed)
                tree.fit_gradients(
                    X[subsample_indices],
                    gradients[subsample_indices, output],
                    hessians[subsample_indices, output],
                )
                raw_predictions[:, output] += self.learning_rate * tree.predict_values(X)
                stage.append(tree)
            self.stages_.append(stage)
        self.n_features_in_ = X.shape[1]
        return raw_predictions

    def _raw_predict(self, X):
        self._check_fitted("stages_")
        X = check_array(X)
        n_outputs = len(self.stages_[0])
        raw = np.full((X.shape[0], n_outputs), self._base_score, dtype=float)
        for stage in self.stages_:
            for output, tree in enumerate(stage):
                raw[:, output] += self.learning_rate * tree.predict_values(X)
        return raw


class GradientBoostingRegressor(_BaseGradientBoosting, RegressorMixin):
    """Gradient boosting with squared-error loss (XGBRegressor stand-in)."""

    def fit(self, X, y):
        self._validate()
        X, y = check_X_y(X, y, y_numeric=True)
        self._base_score = float(np.mean(y))

        def gradient_fn(raw_predictions):
            gradients = (raw_predictions[:, 0] - y).reshape(-1, 1)
            hessians = np.ones_like(gradients)
            return gradients, hessians

        self._boost(X, n_outputs=1, gradient_fn=gradient_fn)
        return self

    def predict(self, X):
        return self._raw_predict(X)[:, 0]


class GradientBoostingClassifier(_BaseGradientBoosting, ClassifierMixin):
    """Gradient boosting with logistic/softmax loss (XGBClassifier stand-in)."""

    def fit(self, X, y):
        self._validate()
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("GradientBoostingClassifier requires at least 2 classes")
        index = {label: i for i, label in enumerate(self.classes_)}
        encoded = np.asarray([index[label] for label in y], dtype=int)
        self._base_score = 0.0

        if n_classes == 2:
            targets = encoded.astype(float)

            def gradient_fn(raw_predictions):
                probabilities = _sigmoid(raw_predictions[:, 0])
                gradients = (probabilities - targets).reshape(-1, 1)
                hessians = (probabilities * (1.0 - probabilities)).reshape(-1, 1)
                hessians = np.maximum(hessians, 1e-6)
                return gradients, hessians

            self._boost(X, n_outputs=1, gradient_fn=gradient_fn)
        else:
            onehot = np.zeros((len(encoded), n_classes))
            onehot[np.arange(len(encoded)), encoded] = 1.0

            def gradient_fn(raw_predictions):
                probabilities = _softmax(raw_predictions)
                gradients = probabilities - onehot
                hessians = np.maximum(probabilities * (1.0 - probabilities), 1e-6)
                return gradients, hessians

            self._boost(X, n_outputs=n_classes, gradient_fn=gradient_fn)
        return self

    def predict_proba(self, X):
        raw = self._raw_predict(X)
        if raw.shape[1] == 1:
            positive = _sigmoid(raw[:, 0])
            return np.column_stack([1.0 - positive, positive])
        return _softmax(raw)

    def predict(self, X):
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]


def _sigmoid(values):
    return 1.0 / (1.0 + np.exp(-np.clip(values, -30, 30)))


def _softmax(logits):
    shifted = logits - logits.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=1, keepdims=True)
