"""Extremely randomized trees and the ExtraTrees-based feature selector.

The ``ExtraTreesSelector`` primitive appears in the ML Bazaar primitive
catalog (paper Figure 2) as a feature selector; here it is backed by our
own extra-trees importance estimates.
"""

import numpy as np

from repro.learners.base import BaseEstimator, TransformerMixin
from repro.learners.validation import check_X_y, check_array
from repro.learners.tree.decision_tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.learners.tree.random_forest import RandomForestClassifier, RandomForestRegressor


class _RandomSplitMixin:
    """Overrides CART's exhaustive threshold search with one random cut per feature."""

    def _select_positions(self, distinct_positions, sorted_values):
        if len(distinct_positions) == 0:
            return distinct_positions
        pick = int(self._rng.randint(0, len(distinct_positions)))
        return distinct_positions[pick:pick + 1]


class _ExtraTreeRegressor(_RandomSplitMixin, DecisionTreeRegressor):
    pass


class _ExtraTreeClassifier(_RandomSplitMixin, DecisionTreeClassifier):
    pass


class ExtraTreesRegressor(RandomForestRegressor):
    """Forest of extremely randomized regression trees (no bootstrap by default)."""

    def __init__(self, n_estimators=10, max_depth=None, min_samples_split=2,
                 min_samples_leaf=1, max_features="sqrt", bootstrap=False,
                 max_thresholds=16, random_state=None):
        super().__init__(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            bootstrap=bootstrap,
            max_thresholds=max_thresholds,
            random_state=random_state,
        )

    def _make_tree(self, seed):
        return _ExtraTreeRegressor(**self._tree_params(seed))


class ExtraTreesClassifier(RandomForestClassifier):
    """Forest of extremely randomized classification trees (no bootstrap by default)."""

    def __init__(self, n_estimators=10, max_depth=None, min_samples_split=2,
                 min_samples_leaf=1, max_features="sqrt", bootstrap=False,
                 max_thresholds=16, random_state=None):
        super().__init__(
            n_estimators=n_estimators,
            max_depth=max_depth,
            min_samples_split=min_samples_split,
            min_samples_leaf=min_samples_leaf,
            max_features=max_features,
            bootstrap=bootstrap,
            max_thresholds=max_thresholds,
            random_state=random_state,
        )

    def _make_tree(self, seed):
        return _ExtraTreeClassifier(**self._tree_params(seed))


class ExtraTreesFeatureSelector(BaseEstimator, TransformerMixin):
    """Select the most important features according to an ExtraTrees ensemble.

    Parameters
    ----------
    n_features:
        Number of features to keep.  ``None`` keeps features whose
        importance exceeds the mean importance.
    problem_type:
        ``"classification"`` or ``"regression"``; selects the underlying
        ensemble type.
    """

    def __init__(self, n_features=None, n_estimators=10, problem_type="classification",
                 random_state=None):
        self.n_features = n_features
        self.n_estimators = n_estimators
        self.problem_type = problem_type
        self.random_state = random_state

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        if self.problem_type == "classification":
            ensemble = ExtraTreesClassifier(
                n_estimators=self.n_estimators, random_state=self.random_state
            )
        elif self.problem_type == "regression":
            ensemble = ExtraTreesRegressor(
                n_estimators=self.n_estimators, random_state=self.random_state
            )
            y = y.astype(float)
        else:
            raise ValueError("Unknown problem_type: {!r}".format(self.problem_type))
        ensemble.fit(X, y)
        importances = ensemble.feature_importances()
        if self.n_features is not None:
            n_keep = max(1, min(self.n_features, X.shape[1]))
            self.support_ = np.zeros(X.shape[1], dtype=bool)
            self.support_[np.argsort(importances)[::-1][:n_keep]] = True
        else:
            threshold = importances.mean()
            self.support_ = importances >= threshold
            if not self.support_.any():
                self.support_[np.argmax(importances)] = True
        self.importances_ = importances
        self.n_features_in_ = X.shape[1]
        return self

    def transform(self, X):
        self._check_fitted("support_")
        X = check_array(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError("Inconsistent number of features")
        return X[:, self.support_]
