"""CART decision trees for classification and regression.

Split search is vectorized: per node and per feature, candidate thresholds
are evaluated from cumulative sufficient statistics of the sorted samples,
so growing a tree costs O(n_features * n log n) per node.  Subclasses
define the sufficient statistics and the impurity/leaf-value functions,
which lets the same machinery drive Gini trees, variance trees and the
Newton trees used by gradient boosting.
"""

import numpy as np

from repro.learners.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_random_state
from repro.learners.validation import check_X_y, check_array


class _Node:
    """A single node of a binary decision tree."""

    __slots__ = ("feature", "threshold", "left", "right", "value", "n_samples", "impurity")

    def __init__(self, value, n_samples, impurity):
        self.feature = None
        self.threshold = None
        self.left = None
        self.right = None
        self.value = value
        self.n_samples = n_samples
        self.impurity = impurity

    @property
    def is_leaf(self):
        return self.feature is None


class _BaseDecisionTree(BaseEstimator):
    """Shared CART machinery, parameterized by sufficient statistics.

    Subclasses implement:

    * ``_sample_stats(y)`` — per-sample statistic matrix of shape (n, d);
    * ``_impurity_from_stats(sums, counts)`` — vectorized impurity for
      aggregated statistics (one row per candidate split side);
    * ``_leaf_value_from_stats(sums, count)`` — the prediction stored at a
      leaf.
    """

    def __init__(self, max_depth=None, min_samples_split=2, min_samples_leaf=1,
                 max_features=None, max_thresholds=32, random_state=None):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_thresholds = max_thresholds
        self.random_state = random_state

    # -- subclass hooks -----------------------------------------------------

    def _sample_stats(self, y):
        raise NotImplementedError

    def _impurity_from_stats(self, sums, counts):
        raise NotImplementedError

    def _leaf_value_from_stats(self, sums, count):
        raise NotImplementedError

    # -- fitting ------------------------------------------------------------

    def _fit_tree(self, X, stats):
        if self.min_samples_split < 2:
            raise ValueError("min_samples_split must be at least 2")
        if self.min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be at least 1")
        self._rng = check_random_state(self.random_state)
        self.n_features_in_ = X.shape[1]
        self.tree_ = self._build(X, stats, depth=0)
        self.n_nodes_ = self._count_nodes(self.tree_)
        del self._rng
        return self

    def _resolve_max_features(self, n_features):
        max_features = self.max_features
        if max_features is None:
            return n_features
        if max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if max_features == "log2":
            return max(1, int(np.log2(n_features)) or 1)
        if isinstance(max_features, float):
            return max(1, int(max_features * n_features))
        return max(1, min(int(max_features), n_features))

    def _node_summary(self, stats):
        sums = stats.sum(axis=0, keepdims=True)
        count = np.asarray([len(stats)], dtype=float)
        impurity = float(self._impurity_from_stats(sums, count)[0])
        value = self._leaf_value_from_stats(sums[0], float(len(stats)))
        return value, impurity

    def _build(self, X, stats, depth):
        value, impurity = self._node_summary(stats)
        node = _Node(value, len(stats), impurity)
        if (
            len(stats) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node

        best = self._best_split(X, stats)
        if best is None:
            return node

        feature, threshold = best
        left_mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[left_mask], stats[left_mask], depth + 1)
        node.right = self._build(X[~left_mask], stats[~left_mask], depth + 1)
        return node

    def _select_positions(self, distinct_positions, sorted_values):
        """Choose which candidate split positions to evaluate for one feature."""
        if self.max_thresholds and len(distinct_positions) > self.max_thresholds:
            picks = np.linspace(0, len(distinct_positions) - 1, self.max_thresholds).astype(int)
            return distinct_positions[np.unique(picks)]
        return distinct_positions

    def _best_split(self, X, stats):
        n_samples, n_features = X.shape
        totals = stats.sum(axis=0, keepdims=True)
        parent_impurity = float(self._impurity_from_stats(totals, np.asarray([float(n_samples)]))[0])

        n_candidates = self._resolve_max_features(n_features)
        if n_candidates < n_features:
            features = self._rng.choice(n_features, size=n_candidates, replace=False)
        else:
            features = np.arange(n_features)

        best_gain = 1e-12
        best = None
        for feature in features:
            values = X[:, feature]
            order = np.argsort(values, kind="mergesort")
            sorted_values = values[order]
            if sorted_values[0] == sorted_values[-1]:
                continue
            cumulative = np.cumsum(stats[order], axis=0)
            # split after position i puts samples [0..i] on the left
            distinct = np.flatnonzero(sorted_values[:-1] < sorted_values[1:])
            positions = self._select_positions(distinct, sorted_values)
            if len(positions) == 0:
                continue
            n_left = (positions + 1).astype(float)
            n_right = n_samples - n_left
            valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
            if not valid.any():
                continue
            left_sums = cumulative[positions]
            right_sums = totals - left_sums
            impurity_left = self._impurity_from_stats(left_sums, n_left)
            impurity_right = self._impurity_from_stats(right_sums, n_right)
            child_impurity = (n_left * impurity_left + n_right * impurity_right) / n_samples
            gains = np.where(valid, parent_impurity - child_impurity, -np.inf)
            index = int(np.argmax(gains))
            if gains[index] > best_gain:
                best_gain = float(gains[index])
                position = positions[index]
                threshold = 0.5 * (sorted_values[position] + sorted_values[position + 1])
                best = (int(feature), float(threshold))
        return best

    def _count_nodes(self, node):
        if node is None:
            return 0
        if node.is_leaf:
            return 1
        return 1 + self._count_nodes(node.left) + self._count_nodes(node.right)

    # -- prediction ---------------------------------------------------------

    def _predict_value(self, x):
        node = self.tree_
        while not node.is_leaf:
            if x[node.feature] <= node.threshold:
                node = node.left
            else:
                node = node.right
        return node.value

    def _predict_values(self, X):
        return [self._predict_value(x) for x in X]

    def get_depth(self):
        """Return the depth of the fitted tree."""
        self._check_fitted("tree_")

        def depth(node):
            if node is None or node.is_leaf:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self.tree_)


class DecisionTreeRegressor(_BaseDecisionTree, RegressorMixin):
    """CART regressor minimizing within-node variance."""

    def _sample_stats(self, y):
        return np.column_stack([y, y ** 2])

    def _impurity_from_stats(self, sums, counts):
        counts = np.asarray(counts, dtype=float)
        mean = sums[:, 0] / counts
        return np.maximum(sums[:, 1] / counts - mean ** 2, 0.0)

    def _leaf_value_from_stats(self, sums, count):
        return float(sums[0] / count)

    def fit(self, X, y):
        X, y = check_X_y(X, y, y_numeric=True)
        return self._fit_tree(X, self._sample_stats(y))

    def predict(self, X):
        self._check_fitted("tree_")
        X = check_array(X)
        return np.asarray(self._predict_values(X))


class DecisionTreeClassifier(_BaseDecisionTree, ClassifierMixin):
    """CART classifier minimizing Gini impurity."""

    def _sample_stats(self, y):
        onehot = np.zeros((len(y), self._n_classes))
        onehot[np.arange(len(y)), y] = 1.0
        return onehot

    def _impurity_from_stats(self, sums, counts):
        counts = np.asarray(counts, dtype=float)
        proportions = sums / counts[:, None]
        return 1.0 - np.sum(proportions ** 2, axis=1)

    def _leaf_value_from_stats(self, sums, count):
        return sums / count

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        self._n_classes = len(self.classes_)
        index = {label: i for i, label in enumerate(self.classes_)}
        encoded = np.asarray([index[label] for label in y], dtype=int)
        return self._fit_tree(X, self._sample_stats(encoded))

    def predict_proba(self, X):
        self._check_fitted("tree_")
        X = check_array(X)
        return np.asarray(self._predict_values(X))

    def predict(self, X):
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
