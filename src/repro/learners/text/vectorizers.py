"""Bag-of-words and TF-IDF vectorizers (``StringVectorizer`` primitive)."""

from collections import Counter

import numpy as np

from repro.learners.base import BaseEstimator, TransformerMixin


class CountVectorizer(BaseEstimator, TransformerMixin):
    """Convert documents to a matrix of token counts."""

    def __init__(self, max_features=None, lowercase=True, min_df=1):
        self.max_features = max_features
        self.lowercase = lowercase
        self.min_df = min_df

    def fit(self, X, y=None):
        document_frequency = Counter()
        total_frequency = Counter()
        for document in X:
            tokens = self._split(document)
            total_frequency.update(tokens)
            document_frequency.update(set(tokens))
        terms = [
            term for term, count in document_frequency.items() if count >= self.min_df
        ]
        terms.sort(key=lambda term: (-total_frequency[term], term))
        if self.max_features is not None:
            terms = terms[: self.max_features]
        self.vocabulary_ = {term: index for index, term in enumerate(sorted(terms))}
        return self

    def transform(self, X):
        self._check_fitted("vocabulary_")
        matrix = np.zeros((len(X), len(self.vocabulary_)))
        for row, document in enumerate(X):
            for token in self._split(document):
                column = self.vocabulary_.get(token)
                if column is not None:
                    matrix[row, column] += 1.0
        return matrix

    def _split(self, document):
        text = str(document)
        if self.lowercase:
            text = text.lower()
        return text.split()


class TfidfVectorizer(CountVectorizer):
    """TF-IDF weighted bag-of-words features."""

    def fit(self, X, y=None):
        super().fit(X)
        counts = super().transform(X)
        document_frequency = (counts > 0).sum(axis=0)
        n_documents = len(X)
        self.idf_ = np.log((1.0 + n_documents) / (1.0 + document_frequency)) + 1.0
        return self

    def transform(self, X):
        self._check_fitted("idf_")
        counts = super().transform(X)
        tfidf = counts * self.idf_
        norms = np.linalg.norm(tfidf, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        return tfidf / norms


class StringVectorizer(TfidfVectorizer):
    """Alias matching the MLPrimitives primitive name for text regression templates."""
