"""Co-occurrence based word embeddings and document embedding features.

A lightweight stand-in for pretrained embedding primitives: token vectors
are obtained from a truncated SVD of the word co-occurrence matrix (in the
spirit of GloVe/LSA) and documents are embedded as the average of their
token vectors.  This provides a second text featurization path next to
TF-IDF and the tokenizer/padding route.
"""

from collections import Counter

import numpy as np

from repro.learners.base import BaseEstimator, TransformerMixin


class WordEmbeddingVectorizer(BaseEstimator, TransformerMixin):
    """Embed documents as the mean of SVD-factorized co-occurrence word vectors.

    Parameters
    ----------
    embedding_dim:
        Dimensionality of the word (and document) vectors.
    window:
        Co-occurrence window size in tokens.
    max_vocabulary:
        Keep only the most frequent tokens.
    lowercase:
        Lowercase documents before tokenizing.
    """

    def __init__(self, embedding_dim=32, window=3, max_vocabulary=2000, lowercase=True):
        self.embedding_dim = embedding_dim
        self.window = window
        self.max_vocabulary = max_vocabulary
        self.lowercase = lowercase

    def _split(self, document):
        text = str(document)
        if self.lowercase:
            text = text.lower()
        return text.split()

    def fit(self, X, y=None):
        if self.embedding_dim < 1:
            raise ValueError("embedding_dim must be at least 1")
        if self.window < 1:
            raise ValueError("window must be at least 1")
        counts = Counter()
        tokenized = []
        for document in X:
            tokens = self._split(document)
            tokenized.append(tokens)
            counts.update(tokens)
        vocabulary = [token for token, _ in counts.most_common(self.max_vocabulary)]
        self.vocabulary_ = {token: index for index, token in enumerate(sorted(vocabulary))}
        size = len(self.vocabulary_)
        if size == 0:
            raise ValueError("The corpus contains no tokens")

        cooccurrence = np.zeros((size, size))
        for tokens in tokenized:
            indices = [self.vocabulary_.get(token) for token in tokens]
            for position, center in enumerate(indices):
                if center is None:
                    continue
                low = max(0, position - self.window)
                high = min(len(indices), position + self.window + 1)
                for neighbor in indices[low:high]:
                    if neighbor is not None and neighbor != center:
                        cooccurrence[center, neighbor] += 1.0

        # positive log co-occurrence, factorized with a truncated SVD
        log_cooccurrence = np.log1p(cooccurrence)
        dim = min(self.embedding_dim, size)
        u, singular_values, _ = np.linalg.svd(log_cooccurrence, full_matrices=False)
        self.word_vectors_ = u[:, :dim] * np.sqrt(singular_values[:dim])
        self.embedding_dim_ = dim
        return self

    def transform(self, X):
        self._check_fitted("word_vectors_")
        embeddings = np.zeros((len(X), self.embedding_dim_))
        for row, document in enumerate(X):
            indices = [
                self.vocabulary_[token]
                for token in self._split(document)
                if token in self.vocabulary_
            ]
            if indices:
                embeddings[row] = self.word_vectors_[indices].mean(axis=0)
        return embeddings
