"""Text cleaning primitives used by the text-classification template.

These reproduce the ``UniqueCounter``, ``TextCleaner`` and
``VocabularyCounter`` custom primitives from MLPrimitives that appear in
the text classification pipeline of paper Figure 3.
"""

import re
import string

import numpy as np

from repro.learners.base import BaseEstimator


_PUNCTUATION_TABLE = str.maketrans({char: " " for char in string.punctuation})
_WHITESPACE = re.compile(r"\s+")


class TextCleaner(BaseEstimator):
    """Normalize raw text: lowercase, strip punctuation, collapse whitespace."""

    def __init__(self, lowercase=True, strip_punctuation=True):
        self.lowercase = lowercase
        self.strip_punctuation = strip_punctuation

    def produce(self, X):
        """Return cleaned copies of the input documents."""
        cleaned = []
        for document in _as_documents(X):
            text = document
            if self.lowercase:
                text = text.lower()
            if self.strip_punctuation:
                text = text.translate(_PUNCTUATION_TABLE)
            text = _WHITESPACE.sub(" ", text).strip()
            cleaned.append(text)
        return np.asarray(cleaned, dtype=object)


class UniqueCounter(BaseEstimator):
    """Count the number of unique values in the target vector.

    In the text classification template this produces the number of
    classes, which is later consumed by the classifier head.
    """

    def produce(self, y):
        y = np.asarray(y)
        return int(len(np.unique(y)))


class VocabularyCounter(BaseEstimator):
    """Count the number of distinct tokens across a text corpus.

    The resulting vocabulary size is consumed by the downstream text
    classifier (as the input dimension of its embedding).
    """

    def __init__(self, add=1):
        self.add = add

    def produce(self, X):
        vocabulary = set()
        for document in _as_documents(X):
            vocabulary.update(document.split())
        return int(len(vocabulary)) + self.add


def _as_documents(X):
    if isinstance(X, str):
        raise ValueError("Expected an iterable of documents, got a single string")
    return [str(document) for document in X]
