"""Tokenization utilities (Keras-style ``Tokenizer`` and ``pad_sequences``)."""

from collections import Counter

import numpy as np

from repro.learners.base import BaseEstimator


class Tokenizer(BaseEstimator):
    """Map documents to sequences of integer token indices.

    Index 0 is reserved for padding and index 1 for out-of-vocabulary
    tokens, mirroring the Keras tokenizer conventions relied on by the
    text classification template.
    """

    OOV_INDEX = 1

    def __init__(self, num_words=None, lower=True):
        self.num_words = num_words
        self.lower = lower

    def fit(self, X, y=None):
        counts = Counter()
        for document in X:
            counts.update(self._split(document))
        most_common = counts.most_common(self.num_words)
        self.word_index_ = {
            word: index for index, (word, _) in enumerate(most_common, start=self.OOV_INDEX + 1)
        }
        self.vocabulary_size_ = len(self.word_index_) + 2  # padding + OOV
        return self

    def transform(self, X):
        self._check_fitted("word_index_")
        sequences = []
        for document in X:
            sequence = [
                self.word_index_.get(token, self.OOV_INDEX) for token in self._split(document)
            ]
            sequences.append(sequence)
        return sequences

    def fit_transform(self, X, y=None):
        return self.fit(X).transform(X)

    def _split(self, document):
        text = str(document)
        if self.lower:
            text = text.lower()
        return text.split()


def pad_sequences(sequences, maxlen=None, padding="pre", truncating="pre", value=0):
    """Pad variable-length integer sequences into a dense 2-D array.

    Parameters
    ----------
    sequences:
        Iterable of lists of integers.
    maxlen:
        Target length; defaults to the longest sequence.
    padding, truncating:
        ``"pre"`` or ``"post"``, matching the Keras semantics.
    value:
        Padding value (0 by convention).
    """
    sequences = [list(sequence) for sequence in sequences]
    if not sequences:
        raise ValueError("pad_sequences requires at least one sequence")
    if padding not in ("pre", "post") or truncating not in ("pre", "post"):
        raise ValueError("padding and truncating must be 'pre' or 'post'")
    if maxlen is None:
        maxlen = max((len(sequence) for sequence in sequences), default=0)
    maxlen = max(int(maxlen), 1)
    padded = np.full((len(sequences), maxlen), value, dtype=int)
    for row, sequence in enumerate(sequences):
        if not sequence:
            continue
        if len(sequence) > maxlen:
            if truncating == "pre":
                sequence = sequence[-maxlen:]
            else:
                sequence = sequence[:maxlen]
        if padding == "pre":
            padded[row, -len(sequence):] = sequence
        else:
            padded[row, :len(sequence)] = sequence
    return padded


class SequencePadder(BaseEstimator):
    """Primitive-style wrapper around :func:`pad_sequences`."""

    def __init__(self, maxlen=None, padding="pre", truncating="pre", value=0):
        self.maxlen = maxlen
        self.padding = padding
        self.truncating = truncating
        self.value = value

    def produce(self, X):
        return pad_sequences(
            X,
            maxlen=self.maxlen,
            padding=self.padding,
            truncating=self.truncating,
            value=self.value,
        )
