"""Text processing primitives: cleaning, tokenization and vectorization."""

from repro.learners.text.cleaning import TextCleaner, UniqueCounter, VocabularyCounter
from repro.learners.text.tokenization import SequencePadder, Tokenizer, pad_sequences
from repro.learners.text.vectorizers import CountVectorizer, StringVectorizer, TfidfVectorizer
from repro.learners.text.embeddings import WordEmbeddingVectorizer

__all__ = [
    "TextCleaner",
    "UniqueCounter",
    "VocabularyCounter",
    "Tokenizer",
    "SequencePadder",
    "pad_sequences",
    "CountVectorizer",
    "TfidfVectorizer",
    "StringVectorizer",
    "WordEmbeddingVectorizer",
]
