"""Model combination: voting and stacking ensembles.

These combine heterogeneous base estimators — the "many compatible
alternatives to achieve a single goal" that the bazaar metaphor is about —
into a single estimator, and are exposed as catalog primitives so
templates can use them like any other estimator.
"""

import numpy as np

from repro.learners.base import (
    BaseEstimator,
    ClassifierMixin,
    RegressorMixin,
    check_random_state,
    clone,
)
from repro.learners.validation import check_X_y, check_array
from repro.learners.linear import LogisticRegression, Ridge
from repro.learners.naive_bayes import GaussianNB
from repro.learners.tree import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)


def _default_classifiers(random_state):
    return [
        RandomForestClassifier(n_estimators=10, random_state=random_state),
        GradientBoostingClassifier(n_estimators=15, random_state=random_state),
        GaussianNB(),
    ]


def _default_regressors(random_state):
    return [
        RandomForestRegressor(n_estimators=10, random_state=random_state),
        GradientBoostingRegressor(n_estimators=15, random_state=random_state),
        Ridge(alpha=1.0),
    ]


class VotingClassifier(BaseEstimator, ClassifierMixin):
    """Majority (or probability-averaged) vote over heterogeneous classifiers.

    Parameters
    ----------
    estimators:
        List of unfitted classifiers; a diverse default trio is used when
        omitted.
    voting:
        ``"hard"`` (majority of predicted labels) or ``"soft"`` (average of
        predicted probabilities, for members that expose ``predict_proba``).
    """

    def __init__(self, estimators=None, voting="hard", random_state=None):
        self.estimators = estimators
        self.voting = voting
        self.random_state = random_state

    def fit(self, X, y):
        if self.voting not in ("hard", "soft"):
            raise ValueError("voting must be 'hard' or 'soft'")
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        members = self.estimators or _default_classifiers(self.random_state)
        self.estimators_ = []
        for member in members:
            fitted = clone(member)
            fitted.fit(X, y)
            self.estimators_.append(fitted)
        return self

    def predict_proba(self, X):
        self._check_fitted("estimators_")
        X = check_array(X)
        class_index = {label: i for i, label in enumerate(self.classes_)}
        probabilities = np.zeros((X.shape[0], len(self.classes_)))
        for member in self.estimators_:
            if self.voting == "soft" and hasattr(member, "predict_proba"):
                member_proba = member.predict_proba(X)
                for j, label in enumerate(member.classes_):
                    probabilities[:, class_index[label]] += member_proba[:, j]
            else:
                for row, label in enumerate(member.predict(X)):
                    probabilities[row, class_index[label]] += 1.0
        totals = probabilities.sum(axis=1, keepdims=True)
        totals[totals == 0.0] = 1.0
        return probabilities / totals

    def predict(self, X):
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]


class StackingClassifier(BaseEstimator, ClassifierMixin):
    """Two-level stacking: out-of-fold base predictions feed a logistic meta-model."""

    def __init__(self, estimators=None, n_splits=3, random_state=None):
        self.estimators = estimators
        self.n_splits = n_splits
        self.random_state = random_state

    def fit(self, X, y):
        if self.n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        members = self.estimators or _default_classifiers(self.random_state)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        indices = rng.permutation(n_samples)
        folds = np.array_split(indices, self.n_splits)
        class_index = {label: i for i, label in enumerate(self.classes_)}

        meta_features = np.zeros((n_samples, len(members) * len(self.classes_)))
        for fold in folds:
            train_mask = np.ones(n_samples, dtype=bool)
            train_mask[fold] = False
            if train_mask.sum() < 2 or len(np.unique(y[train_mask])) < 2:
                continue
            for member_index, member in enumerate(members):
                model = clone(member)
                model.fit(X[train_mask], y[train_mask])
                if hasattr(model, "predict_proba"):
                    proba = model.predict_proba(X[fold])
                    for j, label in enumerate(model.classes_):
                        meta_features[fold, member_index * len(self.classes_)
                                      + class_index[label]] = proba[:, j]
                else:
                    for row, label in zip(fold, model.predict(X[fold])):
                        meta_features[row, member_index * len(self.classes_)
                                      + class_index[label]] = 1.0

        self.estimators_ = []
        for member in members:
            fitted = clone(member)
            fitted.fit(X, y)
            self.estimators_.append(fitted)
        self.meta_model_ = LogisticRegression(max_iter=200)
        self.meta_model_.fit(meta_features, y)
        return self

    def _meta_features(self, X):
        class_index = {label: i for i, label in enumerate(self.classes_)}
        features = np.zeros((X.shape[0], len(self.estimators_) * len(self.classes_)))
        for member_index, member in enumerate(self.estimators_):
            if hasattr(member, "predict_proba"):
                proba = member.predict_proba(X)
                for j, label in enumerate(member.classes_):
                    features[:, member_index * len(self.classes_) + class_index[label]] = proba[:, j]
            else:
                for row, label in enumerate(member.predict(X)):
                    features[row, member_index * len(self.classes_) + class_index[label]] = 1.0
        return features

    def predict(self, X):
        self._check_fitted("meta_model_")
        X = check_array(X)
        return self.meta_model_.predict(self._meta_features(X))


class StackingRegressor(BaseEstimator, RegressorMixin):
    """Two-level stacking for regression with a ridge meta-model."""

    def __init__(self, estimators=None, n_splits=3, random_state=None):
        self.estimators = estimators
        self.n_splits = n_splits
        self.random_state = random_state

    def fit(self, X, y):
        if self.n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        X, y = check_X_y(X, y, y_numeric=True)
        members = self.estimators or _default_regressors(self.random_state)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        indices = rng.permutation(n_samples)
        folds = np.array_split(indices, self.n_splits)

        meta_features = np.zeros((n_samples, len(members)))
        for fold in folds:
            train_mask = np.ones(n_samples, dtype=bool)
            train_mask[fold] = False
            if train_mask.sum() < 2:
                continue
            for member_index, member in enumerate(members):
                model = clone(member)
                model.fit(X[train_mask], y[train_mask])
                meta_features[fold, member_index] = model.predict(X[fold])

        self.estimators_ = []
        for member in members:
            fitted = clone(member)
            fitted.fit(X, y)
            self.estimators_.append(fitted)
        self.meta_model_ = Ridge(alpha=1.0)
        self.meta_model_.fit(meta_features, y)
        return self

    def predict(self, X):
        self._check_fitted("meta_model_")
        X = check_array(X)
        meta_features = np.column_stack([member.predict(X) for member in self.estimators_])
        return self.meta_model_.predict(meta_features)
