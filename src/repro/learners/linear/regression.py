"""Linear regression models solved in closed form or by coordinate descent."""

import numpy as np

from repro.learners.base import BaseEstimator, RegressorMixin
from repro.learners.validation import check_X_y, check_array


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares linear regression."""

    #: OLS has no tunable axis: a hyperparameter batch only ever varies
    #: ``fit_intercept``, so batch fitting dedupes identical solves.
    supports_batch_fit = True

    def __init__(self, fit_intercept=True):
        self.fit_intercept = fit_intercept

    @classmethod
    def fit_batch(cls, configs, X, y):
        """Fit one model per config, solving each distinct config once.

        Bit-identical to ``[cls(**config).fit(X, y) for config in configs]``:
        duplicate configurations share the single fitted reference (the
        solve is deterministic, and ``predict`` only reads the
        coefficients).
        """
        models = [cls(**config) for config in configs]
        fitted = {}
        for model in models:
            key = bool(model.fit_intercept)
            reference = fitted.get(key)
            if reference is None:
                reference = cls(fit_intercept=model.fit_intercept).fit(X, y)
                fitted[key] = reference
            model.coef_ = reference.coef_
            model.intercept_ = reference.intercept_
        return models

    def fit(self, X, y):
        X, y = check_X_y(X, y, y_numeric=True)
        if self.fit_intercept:
            X_design = np.hstack([np.ones((X.shape[0], 1)), X])
        else:
            X_design = X
        coefficients, *_ = np.linalg.lstsq(X_design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(coefficients[0])
            self.coef_ = coefficients[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = coefficients
        return self

    def predict(self, X):
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_


class Ridge(BaseEstimator, RegressorMixin):
    """Linear regression with L2 regularization (closed-form solution)."""

    #: The Gram matrix and the right-hand side are alpha-independent, so a
    #: hyperparameter batch shares them and pays one solve per alpha.
    supports_batch_fit = True

    def __init__(self, alpha=1.0, fit_intercept=True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    @classmethod
    def fit_batch(cls, configs, X, y):
        """Fit one model per config sharing the Gram matrix across alphas.

        Bit-identical to ``[cls(**config).fit(X, y) for config in configs]``:
        the shared quantities (validated arrays, centering, Gram matrix,
        right-hand side) are exactly the per-fit intermediates — the same
        operations on the same inputs — and each model still runs its own
        ``gram_base + alpha * I`` solve.
        """
        models = [cls(**config) for config in configs]
        for model in models:
            if model.alpha < 0:
                raise ValueError("alpha must be non-negative")
        X_valid, y_valid = check_X_y(X, y, y_numeric=True)
        n_features = X_valid.shape[1]
        identity = np.eye(n_features)
        for fit_intercept in (True, False):
            group = [model for model in models if bool(model.fit_intercept) == fit_intercept]
            if not group:
                continue
            if fit_intercept:
                x_mean = X_valid.mean(axis=0)
                y_mean = y_valid.mean()
                X_centered = X_valid - x_mean
                y_centered = y_valid - y_mean
            else:
                x_mean = np.zeros(n_features)
                y_mean = 0.0
                X_centered, y_centered = X_valid, y_valid
            gram_base = X_centered.T @ X_centered
            rhs = X_centered.T @ y_centered
            for model in group:
                gram = gram_base + model.alpha * identity
                model.coef_ = np.linalg.solve(gram, rhs)
                model.intercept_ = float(y_mean - x_mean @ model.coef_)
        return models

    def fit(self, X, y):
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        X, y = check_X_y(X, y, y_numeric=True)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            X_centered = X - x_mean
            y_centered = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            X_centered, y_centered = X, y
        n_features = X.shape[1]
        gram = X_centered.T @ X_centered + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, X_centered.T @ y_centered)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X):
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_


class Lasso(BaseEstimator, RegressorMixin):
    """Linear regression with L1 regularization solved by coordinate descent."""

    def __init__(self, alpha=1.0, max_iter=500, tol=1e-5, fit_intercept=True):
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept

    def fit(self, X, y):
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        X, y = check_X_y(X, y, y_numeric=True)
        n_samples, n_features = X.shape
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            X = X - x_mean
            y = y - y_mean
        else:
            x_mean = np.zeros(n_features)
            y_mean = 0.0

        coef = np.zeros(n_features)
        column_norms = (X ** 2).sum(axis=0)
        residual = y - X @ coef
        threshold = self.alpha * n_samples
        for _ in range(self.max_iter):
            max_update = 0.0
            for j in range(n_features):
                if column_norms[j] == 0.0:
                    continue
                residual += X[:, j] * coef[j]
                rho = X[:, j] @ residual
                new_coef = _soft_threshold(rho, threshold) / column_norms[j]
                max_update = max(max_update, abs(new_coef - coef[j]))
                coef[j] = new_coef
                residual -= X[:, j] * coef[j]
            if max_update < self.tol:
                break
        self.coef_ = coef
        self.intercept_ = float(y_mean - x_mean @ coef)
        return self

    def predict(self, X):
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_


def _soft_threshold(value, threshold):
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0
