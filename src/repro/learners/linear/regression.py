"""Linear regression models solved in closed form or by coordinate descent."""

import numpy as np

from repro.learners.base import BaseEstimator, RegressorMixin
from repro.learners.validation import check_X_y, check_array


class LinearRegression(BaseEstimator, RegressorMixin):
    """Ordinary least squares linear regression."""

    def __init__(self, fit_intercept=True):
        self.fit_intercept = fit_intercept

    def fit(self, X, y):
        X, y = check_X_y(X, y, y_numeric=True)
        if self.fit_intercept:
            X_design = np.hstack([np.ones((X.shape[0], 1)), X])
        else:
            X_design = X
        coefficients, *_ = np.linalg.lstsq(X_design, y, rcond=None)
        if self.fit_intercept:
            self.intercept_ = float(coefficients[0])
            self.coef_ = coefficients[1:]
        else:
            self.intercept_ = 0.0
            self.coef_ = coefficients
        return self

    def predict(self, X):
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_


class Ridge(BaseEstimator, RegressorMixin):
    """Linear regression with L2 regularization (closed-form solution)."""

    def __init__(self, alpha=1.0, fit_intercept=True):
        self.alpha = alpha
        self.fit_intercept = fit_intercept

    def fit(self, X, y):
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        X, y = check_X_y(X, y, y_numeric=True)
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            X_centered = X - x_mean
            y_centered = y - y_mean
        else:
            x_mean = np.zeros(X.shape[1])
            y_mean = 0.0
            X_centered, y_centered = X, y
        n_features = X.shape[1]
        gram = X_centered.T @ X_centered + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, X_centered.T @ y_centered)
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        return self

    def predict(self, X):
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_


class Lasso(BaseEstimator, RegressorMixin):
    """Linear regression with L1 regularization solved by coordinate descent."""

    def __init__(self, alpha=1.0, max_iter=500, tol=1e-5, fit_intercept=True):
        self.alpha = alpha
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept

    def fit(self, X, y):
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        X, y = check_X_y(X, y, y_numeric=True)
        n_samples, n_features = X.shape
        if self.fit_intercept:
            x_mean = X.mean(axis=0)
            y_mean = y.mean()
            X = X - x_mean
            y = y - y_mean
        else:
            x_mean = np.zeros(n_features)
            y_mean = 0.0

        coef = np.zeros(n_features)
        column_norms = (X ** 2).sum(axis=0)
        residual = y - X @ coef
        threshold = self.alpha * n_samples
        for _ in range(self.max_iter):
            max_update = 0.0
            for j in range(n_features):
                if column_norms[j] == 0.0:
                    continue
                residual += X[:, j] * coef[j]
                rho = X[:, j] @ residual
                new_coef = _soft_threshold(rho, threshold) / column_norms[j]
                max_update = max(max_update, abs(new_coef - coef[j]))
                coef[j] = new_coef
                residual -= X[:, j] * coef[j]
            if max_update < self.tol:
                break
        self.coef_ = coef
        self.intercept_ = float(y_mean - x_mean @ coef)
        return self

    def predict(self, X):
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_


def _soft_threshold(value, threshold):
    if value > threshold:
        return value - threshold
    if value < -threshold:
        return value + threshold
    return 0.0
