"""Linear models: least squares, ridge, lasso and logistic regression."""

from repro.learners.linear.regression import Lasso, LinearRegression, Ridge
from repro.learners.linear.logistic import LogisticRegression

__all__ = ["LinearRegression", "Ridge", "Lasso", "LogisticRegression"]
