"""Multinomial logistic regression trained with full-batch gradient descent."""

import numpy as np

from repro.learners.base import BaseEstimator, ClassifierMixin
from repro.learners.validation import check_X_y, check_array


def _softmax(logits):
    shifted = logits - logits.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=1, keepdims=True)


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Multinomial logistic regression with L2 regularization.

    Parameters
    ----------
    C:
        Inverse regularization strength (larger means less regularization).
    learning_rate:
        Gradient-descent step size.
    max_iter:
        Maximum number of full-batch gradient steps.
    tol:
        Convergence tolerance on the gradient norm.
    """

    def __init__(self, C=1.0, learning_rate=0.1, max_iter=300, tol=1e-5, fit_intercept=True):
        self.C = C
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept

    def fit(self, X, y):
        if self.C <= 0:
            raise ValueError("C must be positive")
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("LogisticRegression requires at least 2 classes")
        index = {label: i for i, label in enumerate(self.classes_)}
        targets = np.zeros((X.shape[0], n_classes))
        for row, label in enumerate(y):
            targets[row, index[label]] = 1.0

        n_samples, n_features = X.shape
        weights = np.zeros((n_features, n_classes))
        intercept = np.zeros(n_classes)
        reg = 1.0 / (self.C * n_samples)
        for _ in range(self.max_iter):
            logits = X @ weights + intercept
            probabilities = _softmax(logits)
            error = (probabilities - targets) / n_samples
            grad_weights = X.T @ error + reg * weights
            grad_intercept = error.sum(axis=0) if self.fit_intercept else np.zeros(n_classes)
            weights -= self.learning_rate * grad_weights
            intercept -= self.learning_rate * grad_intercept
            if np.linalg.norm(grad_weights) < self.tol:
                break
        self.coef_ = weights
        self.intercept_ = intercept
        return self

    def decision_function(self, X):
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X):
        return _softmax(self.decision_function(X))

    def predict(self, X):
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
