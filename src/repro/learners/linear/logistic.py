"""Multinomial logistic regression trained with full-batch gradient descent."""

import numpy as np

from repro.learners.base import BaseEstimator, ClassifierMixin
from repro.learners.validation import check_X_y, check_array


def _softmax(logits):
    shifted = logits - logits.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=1, keepdims=True)


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Multinomial logistic regression with L2 regularization.

    Parameters
    ----------
    C:
        Inverse regularization strength (larger means less regularization).
    learning_rate:
        Gradient-descent step size.
    max_iter:
        Maximum number of full-batch gradient steps.
    tol:
        Convergence tolerance on the gradient norm.
    """

    #: Configs differing only in ``max_iter`` are prefixes of one descent
    #: trajectory, so a batch shares validation/one-hot targets and runs
    #: one trajectory per distinct ``(C, learning_rate, tol, fit_intercept)``.
    supports_batch_fit = True

    def __init__(self, C=1.0, learning_rate=0.1, max_iter=300, tol=1e-5, fit_intercept=True):
        self.C = C
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept

    @classmethod
    def fit_batch(cls, configs, X, y):
        """Fit one model per config sharing descent trajectories.

        Bit-identical to ``[cls(**config).fit(X, y) for config in configs]``:
        gradient descent from zeros is deterministic, so a run stopped at
        ``max_iter=k`` is exactly the first ``k`` updates of a longer run
        with the same ``(C, learning_rate, tol, fit_intercept)`` — each
        such subgroup runs a single trajectory to its largest ``max_iter``
        and snapshots the weights at every member's stopping point.
        """
        models = [cls(**config) for config in configs]
        for model in models:
            if model.C <= 0:
                raise ValueError("C must be positive")
        X_valid, y_valid = check_X_y(X, y)
        classes = np.unique(y_valid)
        n_classes = len(classes)
        if n_classes < 2:
            raise ValueError("LogisticRegression requires at least 2 classes")
        index = {label: i for i, label in enumerate(classes)}
        targets = np.zeros((X_valid.shape[0], n_classes))
        for row, label in enumerate(y_valid):
            targets[row, index[label]] = 1.0

        trajectories = {}
        for model in models:
            key = (
                float(model.C), float(model.learning_rate), float(model.tol),
                bool(model.fit_intercept),
            )
            trajectories.setdefault(key, []).append(model)
        for (C, learning_rate, tol, fit_intercept), group in trajectories.items():
            snapshots = _descent_snapshots(
                X_valid, targets, C, learning_rate, tol, fit_intercept,
                sorted({int(model.max_iter) for model in group}),
            )
            for model in group:
                weights, intercept = snapshots[int(model.max_iter)]
                model.classes_ = classes
                model.coef_ = weights
                model.intercept_ = intercept
        return models

    def fit(self, X, y):
        if self.C <= 0:
            raise ValueError("C must be positive")
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        n_classes = len(self.classes_)
        if n_classes < 2:
            raise ValueError("LogisticRegression requires at least 2 classes")
        index = {label: i for i, label in enumerate(self.classes_)}
        targets = np.zeros((X.shape[0], n_classes))
        for row, label in enumerate(y):
            targets[row, index[label]] = 1.0

        n_samples, n_features = X.shape
        weights = np.zeros((n_features, n_classes))
        intercept = np.zeros(n_classes)
        reg = 1.0 / (self.C * n_samples)
        for _ in range(self.max_iter):
            logits = X @ weights + intercept
            probabilities = _softmax(logits)
            error = (probabilities - targets) / n_samples
            grad_weights = X.T @ error + reg * weights
            grad_intercept = error.sum(axis=0) if self.fit_intercept else np.zeros(n_classes)
            weights -= self.learning_rate * grad_weights
            intercept -= self.learning_rate * grad_intercept
            if np.linalg.norm(grad_weights) < self.tol:
                break
        self.coef_ = weights
        self.intercept_ = intercept
        return self

    def decision_function(self, X):
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X):
        return _softmax(self.decision_function(X))

    def predict(self, X):
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]


def _descent_snapshots(X, targets, C, learning_rate, tol, fit_intercept, wanted_iters):
    """One gradient-descent trajectory, snapshotted at each wanted iteration.

    Replays exactly the update loop of :meth:`LogisticRegression.fit`; the
    snapshot at iteration ``k`` is the state a separate fit with
    ``max_iter=k`` would have ended on (the convergence break happens
    *after* the update, so a converged trajectory's final state also
    stands in for every larger ``max_iter``).
    """
    n_samples, n_features = X.shape
    n_classes = targets.shape[1]
    weights = np.zeros((n_features, n_classes))
    intercept = np.zeros(n_classes)
    reg = 1.0 / (C * n_samples)
    snapshots = {}
    pending = set()
    for max_iter in wanted_iters:
        if max_iter <= 0:
            # a zero-iteration fit never enters the loop
            snapshots[max_iter] = (weights.copy(), intercept.copy())
        else:
            pending.add(max_iter)
    if pending:
        for iteration in range(1, max(pending) + 1):
            logits = X @ weights + intercept
            probabilities = _softmax(logits)
            error = (probabilities - targets) / n_samples
            grad_weights = X.T @ error + reg * weights
            grad_intercept = error.sum(axis=0) if fit_intercept else np.zeros(n_classes)
            weights -= learning_rate * grad_weights
            intercept -= learning_rate * grad_intercept
            if iteration in pending:
                snapshots[iteration] = (weights.copy(), intercept.copy())
                pending.discard(iteration)
            if np.linalg.norm(grad_weights) < tol:
                break
        for max_iter in pending:
            # converged before reaching these budgets: the final state is
            # what their own fits would have stopped on
            snapshots[max_iter] = (weights.copy(), intercept.copy())
    return snapshots
