"""Linear support vector machines trained with subgradient descent.

``LinearSVC`` minimizes the L2-regularized hinge loss; ``LinearSVR``
minimizes the epsilon-insensitive loss.  Multiclass classification uses a
one-vs-rest scheme.
"""

import numpy as np

from repro.learners.base import BaseEstimator, ClassifierMixin, RegressorMixin
from repro.learners.validation import check_X_y, check_array


class LinearSVC(BaseEstimator, ClassifierMixin):
    """Linear support vector classifier (one-vs-rest for multiclass)."""

    def __init__(self, C=1.0, max_iter=200, learning_rate=0.05, random_state=None):
        self.C = C
        self.max_iter = max_iter
        self.learning_rate = learning_rate
        self.random_state = random_state

    def fit(self, X, y):
        if self.C <= 0:
            raise ValueError("C must be positive")
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("LinearSVC requires at least 2 classes")
        n_samples, n_features = X.shape
        self.coef_ = np.zeros((len(self.classes_), n_features))
        self.intercept_ = np.zeros(len(self.classes_))
        reg = 1.0 / (self.C * n_samples)
        for class_index, label in enumerate(self.classes_):
            targets = np.where(y == label, 1.0, -1.0)
            weights = np.zeros(n_features)
            bias = 0.0
            for iteration in range(self.max_iter):
                margins = targets * (X @ weights + bias)
                violating = margins < 1.0
                step = self.learning_rate / (1.0 + 0.01 * iteration)
                gradient_w = reg * weights - (targets[violating, None] * X[violating]).sum(axis=0) / n_samples
                gradient_b = -targets[violating].sum() / n_samples
                weights -= step * gradient_w
                bias -= step * gradient_b
            self.coef_[class_index] = weights
            self.intercept_[class_index] = bias
        return self

    def decision_function(self, X):
        self._check_fitted("coef_")
        X = check_array(X)
        return X @ self.coef_.T + self.intercept_

    def predict(self, X):
        scores = self.decision_function(X)
        if len(self.classes_) == 2:
            # one-vs-rest over two classes: pick the larger margin
            return self.classes_[np.argmax(scores, axis=1)]
        return self.classes_[np.argmax(scores, axis=1)]


class LinearSVR(BaseEstimator, RegressorMixin):
    """Linear support vector regression with epsilon-insensitive loss."""

    def __init__(self, C=1.0, epsilon=0.1, max_iter=200, learning_rate=0.05):
        self.C = C
        self.epsilon = epsilon
        self.max_iter = max_iter
        self.learning_rate = learning_rate

    def fit(self, X, y):
        if self.C <= 0:
            raise ValueError("C must be positive")
        X, y = check_X_y(X, y, y_numeric=True)
        n_samples, n_features = X.shape
        self._y_mean = float(y.mean())
        self._y_scale = float(y.std()) or 1.0
        targets = (y - self._y_mean) / self._y_scale
        weights = np.zeros(n_features)
        bias = 0.0
        reg = 1.0 / (self.C * n_samples)
        for iteration in range(self.max_iter):
            residuals = X @ weights + bias - targets
            outside = np.abs(residuals) > self.epsilon
            signs = np.sign(residuals)
            step = self.learning_rate / (1.0 + 0.01 * iteration)
            gradient_w = reg * weights + (signs[outside, None] * X[outside]).sum(axis=0) / n_samples
            gradient_b = signs[outside].sum() / n_samples
            weights -= step * gradient_w
            bias -= step * gradient_b
        self.coef_ = weights
        self.intercept_ = bias
        return self

    def predict(self, X):
        self._check_fitted("coef_")
        X = check_array(X)
        return (X @ self.coef_ + self.intercept_) * self._y_scale + self._y_mean
