"""Clustering models (KMeans), used as unsupervised primitives."""

import numpy as np

from repro.learners.base import BaseEstimator, TransformerMixin, check_random_state
from repro.learners.validation import check_array


class KMeans(BaseEstimator, TransformerMixin):
    """Lloyd's algorithm with k-means++ initialization.

    Parameters
    ----------
    n_clusters:
        Number of clusters.
    n_init:
        Number of random restarts; the best inertia wins.
    max_iter, tol:
        Convergence controls for each run.
    """

    def __init__(self, n_clusters=3, n_init=3, max_iter=100, tol=1e-6, random_state=None):
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state

    def _init_centers(self, X, rng):
        # k-means++ seeding
        n_samples = X.shape[0]
        centers = [X[rng.randint(n_samples)]]
        for _ in range(1, self.n_clusters):
            distances = np.min(
                np.stack([np.sum((X - center) ** 2, axis=1) for center in centers]), axis=0
            )
            total = distances.sum()
            if total == 0.0:
                centers.append(X[rng.randint(n_samples)])
                continue
            probabilities = distances / total
            centers.append(X[rng.choice(n_samples, p=probabilities)])
        return np.stack(centers)

    def _run_once(self, X, rng):
        centers = self._init_centers(X, rng)
        labels = np.zeros(X.shape[0], dtype=int)
        for _ in range(self.max_iter):
            distances = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            labels = np.argmin(distances, axis=1)
            new_centers = np.stack([
                X[labels == k].mean(axis=0) if np.any(labels == k) else centers[k]
                for k in range(self.n_clusters)
            ])
            shift = np.abs(new_centers - centers).max()
            centers = new_centers
            if shift < self.tol:
                break
        distances = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        inertia = float(distances[np.arange(len(labels)), labels].sum())
        return centers, labels, inertia

    def fit(self, X, y=None):
        if self.n_clusters < 1:
            raise ValueError("n_clusters must be at least 1")
        X = check_array(X)
        if X.shape[0] < self.n_clusters:
            raise ValueError("n_clusters cannot exceed the number of samples")
        rng = check_random_state(self.random_state)
        best = None
        for _ in range(max(1, self.n_init)):
            centers, labels, inertia = self._run_once(X, rng)
            if best is None or inertia < best[2]:
                best = (centers, labels, inertia)
        self.cluster_centers_, self.labels_, self.inertia_ = best
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X):
        self._check_fitted("cluster_centers_")
        X = check_array(X)
        distances = ((X[:, None, :] - self.cluster_centers_[None, :, :]) ** 2).sum(axis=2)
        return np.argmin(distances, axis=1)

    def transform(self, X):
        """Distances from each sample to each cluster center."""
        self._check_fitted("cluster_centers_")
        X = check_array(X)
        return np.sqrt(((X[:, None, :] - self.cluster_centers_[None, :, :]) ** 2).sum(axis=2))

    def fit_predict(self, X, y=None):
        return self.fit(X).labels_
