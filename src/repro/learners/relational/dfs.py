"""Deep feature synthesis over an EntitySet (``featuretools.dfs`` stand-in).

Given a target entity, DFS builds a feature matrix by combining:

* the numeric columns of the target entity itself, and
* aggregations (count, mean, sum, min, max, std) of the numeric columns of
  each child entity, grouped by the foreign key into the target entity,
  recursively up to ``max_depth`` levels.

This covers the behaviour exercised by the multi-table and single-table
templates of paper Table II.
"""

import numpy as np

from repro.learners.base import BaseEstimator
from repro.learners.relational.entityset import EntitySet


_AGGREGATIONS = {
    "count": lambda values: float(len(values)),
    "mean": lambda values: float(np.mean(values)) if len(values) else 0.0,
    "sum": lambda values: float(np.sum(values)) if len(values) else 0.0,
    "min": lambda values: float(np.min(values)) if len(values) else 0.0,
    "max": lambda values: float(np.max(values)) if len(values) else 0.0,
    "std": lambda values: float(np.std(values)) if len(values) else 0.0,
}


def dfs(entityset, target_entity, aggregations=None, max_depth=2, instance_ids=None):
    """Run deep feature synthesis and return ``(feature_matrix, feature_names)``.

    The rows of the feature matrix are aligned with the order of the target
    entity's index column, or with ``instance_ids`` when given.
    """
    if not isinstance(entityset, EntitySet):
        raise TypeError("dfs expects an EntitySet, got {!r}".format(type(entityset).__name__))
    if target_entity not in entityset.entities:
        raise ValueError("Unknown target entity {!r}".format(target_entity))
    if max_depth < 1:
        raise ValueError("max_depth must be at least 1")
    aggregations = aggregations or ["count", "mean", "sum", "min", "max", "std"]
    for name in aggregations:
        if name not in _AGGREGATIONS:
            raise ValueError("Unknown aggregation {!r}".format(name))

    index_column = entityset.indexes[target_entity]
    index_values = entityset.entities[target_entity][index_column]

    columns = []
    names = []

    # direct numeric features of the target entity
    for column in entityset.numeric_columns(target_entity):
        columns.append(np.asarray(entityset.entities[target_entity][column], dtype=float))
        names.append("{}.{}".format(target_entity, column))

    if instance_ids is not None:
        instance_ids = np.asarray(instance_ids).ravel()
        position = {value: row for row, value in enumerate(index_values)}
        missing = [value for value in instance_ids if value not in position]
        if missing:
            raise ValueError(
                "instance_ids contain values not present in {}.{}: {!r}".format(
                    target_entity, index_column, missing[:5]
                )
            )

    # aggregated features from child entities, recursively
    aggregated, aggregated_names = _aggregate_children(
        entityset, target_entity, index_values, aggregations, max_depth, prefix=target_entity
    )
    columns.extend(aggregated)
    names.extend(aggregated_names)

    if not columns:
        # no numeric information at all: fall back to a constant column
        columns = [np.zeros(len(index_values))]
        names = ["{}.__constant__".format(target_entity)]
    matrix = np.column_stack(columns)
    if instance_ids is not None:
        rows = np.asarray([position[value] for value in instance_ids])
        matrix = matrix[rows]
    return matrix, names


def _aggregate_children(entityset, entity, index_values, aggregations, depth, prefix):
    if depth < 1:
        return [], []
    columns = []
    names = []
    for relationship in entityset.children_of(entity):
        child = relationship.child_entity
        child_table = entityset.entities[child]
        child_keys = np.asarray(child_table[relationship.child_key])
        groups = {}
        for row, key in enumerate(child_keys):
            groups.setdefault(key, []).append(row)

        child_numeric = entityset.numeric_columns(child)
        # per-child-entity row counts
        counts = np.asarray(
            [float(len(groups.get(key, []))) for key in index_values], dtype=float
        )
        columns.append(counts)
        names.append("{}.COUNT({})".format(prefix, child))

        for column in child_numeric:
            values = np.asarray(child_table[column], dtype=float)
            for aggregation in aggregations:
                if aggregation == "count":
                    continue
                function = _AGGREGATIONS[aggregation]
                aggregated = np.asarray([
                    function(values[groups[key]]) if key in groups else 0.0
                    for key in index_values
                ])
                columns.append(aggregated)
                names.append("{}.{}({}.{})".format(prefix, aggregation.upper(), child, column))

        # recurse one level down: aggregate grandchildren onto the child, then onto us
        if depth > 1:
            child_index = entityset.entities[child][entityset.indexes[child]]
            grandchild_columns, grandchild_names = _aggregate_children(
                entityset, child, child_index, aggregations, depth - 1, prefix=child
            )
            for grandchild_column, grandchild_name in zip(grandchild_columns, grandchild_names):
                aggregated = np.asarray([
                    float(np.mean(grandchild_column[groups[key]])) if key in groups else 0.0
                    for key in index_values
                ])
                columns.append(aggregated)
                names.append("{}.MEAN({})".format(prefix, grandchild_name))
    return columns, names


class DeepFeatureSynthesis(BaseEstimator):
    """Primitive wrapper around :func:`dfs`.

    Two calling conventions are supported, matching how the ``dfs``
    primitive is used across the templates of paper Table II:

    * multi-table: ``produce(X, entityset)`` where ``X`` holds target-entity
      instance ids and ``entityset`` is an :class:`EntitySet` — returns the
      synthesized feature rows for those instances;
    * single-table: ``produce(X)`` with a plain numeric matrix — the matrix
      passes through unchanged (the primitive acts as an identity
      featurizer in front of the estimator).
    """

    def __init__(self, target_entity=None, aggregations=None, max_depth=2):
        self.target_entity = target_entity
        self.aggregations = aggregations
        self.max_depth = max_depth

    def produce(self, X, entityset=None):
        if entityset is None and isinstance(X, EntitySet):
            entityset, X = X, None
        if entityset is not None:
            target = self.target_entity or _default_target(entityset)
            instance_ids = None if X is None else np.asarray(X).ravel()
            matrix, names = dfs(
                entityset,
                target,
                aggregations=self.aggregations,
                max_depth=self.max_depth,
                instance_ids=instance_ids,
            )
            self.feature_names_ = names
            return matrix
        matrix = np.asarray(X, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(-1, 1)
        if matrix.ndim == 3:
            matrix = matrix.reshape(matrix.shape[0], -1)
        self.feature_names_ = ["feature_{}".format(i) for i in range(matrix.shape[1])]
        return matrix


def _default_target(entityset):
    """The entity that is never a child in any relationship, or the first one."""
    children = {relationship.child_entity for relationship in entityset.relationships}
    for name in entityset.entities:
        if name not in children:
            return name
    return next(iter(entityset.entities))
