"""Relational data handling: entity sets and deep feature synthesis.

Stand-in for the ``featuretools.dfs`` primitive that dominates the
default templates of paper Table II for multi-table, single-table and
time series tasks.
"""

from repro.learners.relational.entityset import EntitySet, Relationship
from repro.learners.relational.dfs import DeepFeatureSynthesis, dfs

__all__ = ["EntitySet", "Relationship", "DeepFeatureSynthesis", "dfs"]
