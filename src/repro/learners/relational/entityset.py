"""A minimal EntitySet abstraction over dict-of-column tables.

Tables are plain ``{column_name: numpy array}`` mappings (pandas is not
available in this environment), with one table designated per entity and
parent/child relationships declared by key columns, mirroring the
Featuretools EntitySet model that the paper's ``dfs`` primitive consumes.
"""

import numpy as np


class Relationship:
    """A one-to-many relationship between a parent and a child entity."""

    def __init__(self, parent_entity, parent_key, child_entity, child_key):
        self.parent_entity = parent_entity
        self.parent_key = parent_key
        self.child_entity = child_entity
        self.child_key = child_key

    def __repr__(self):
        return "Relationship({}.{} -> {}.{})".format(
            self.parent_entity, self.parent_key, self.child_entity, self.child_key
        )


class EntitySet:
    """A collection of named tables and the relationships between them."""

    def __init__(self, name="entityset"):
        self.name = name
        self.entities = {}
        self.indexes = {}
        self.relationships = []

    def add_entity(self, name, table, index):
        """Register a table as an entity.

        Parameters
        ----------
        name:
            Entity name.
        table:
            Mapping from column name to a 1-D array; all columns must have
            the same length.
        index:
            Name of the column holding the unique entity identifier.
        """
        if name in self.entities:
            raise ValueError("Entity {!r} already exists".format(name))
        if index not in table:
            raise ValueError("Index column {!r} not found in table {!r}".format(index, name))
        lengths = {column: len(np.asarray(values)) for column, values in table.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError("All columns of entity {!r} must have equal length".format(name))
        self.entities[name] = {column: np.asarray(values) for column, values in table.items()}
        self.indexes[name] = index
        return self

    def add_relationship(self, parent_entity, parent_key, child_entity, child_key):
        """Declare that ``child_entity.child_key`` references ``parent_entity.parent_key``."""
        for entity in (parent_entity, child_entity):
            if entity not in self.entities:
                raise ValueError("Unknown entity {!r}".format(entity))
        if parent_key not in self.entities[parent_entity]:
            raise ValueError("Unknown column {!r} in {!r}".format(parent_key, parent_entity))
        if child_key not in self.entities[child_entity]:
            raise ValueError("Unknown column {!r} in {!r}".format(child_key, child_entity))
        relationship = Relationship(parent_entity, parent_key, child_entity, child_key)
        self.relationships.append(relationship)
        return relationship

    def children_of(self, entity):
        """Return the relationships in which ``entity`` is the parent."""
        return [r for r in self.relationships if r.parent_entity == entity]

    def numeric_columns(self, entity):
        """Names of the numeric, non-key columns of an entity."""
        key_columns = {self.indexes[entity]}
        for relationship in self.relationships:
            if relationship.child_entity == entity:
                key_columns.add(relationship.child_key)
            if relationship.parent_entity == entity:
                key_columns.add(relationship.parent_key)
        numeric = []
        for column, values in self.entities[entity].items():
            if column in key_columns:
                continue
            if np.issubdtype(np.asarray(values).dtype, np.number):
                numeric.append(column)
        return numeric

    def __repr__(self):
        return "EntitySet({!r}, entities={}, relationships={})".format(
            self.name, sorted(self.entities), len(self.relationships)
        )
