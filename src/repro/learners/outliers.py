"""Tabular anomaly / outlier detectors.

Paper Figure 2 lists ``AnomalyDetector`` and ``BoundaryDetector``
postprocessors among the catalog primitives; these are their stand-ins.
``IsolationTreeDetector`` is a compact isolation-forest-style detector and
``ZScoreBoundaryDetector`` flags points outside a robust z-score boundary.
"""

import numpy as np

from repro.learners.base import BaseEstimator, check_random_state
from repro.learners.validation import check_array


class ZScoreBoundaryDetector(BaseEstimator):
    """Flag samples whose robust z-score exceeds a threshold in any feature.

    The robust z-score uses the median and the median absolute deviation,
    so a handful of extreme outliers does not mask the boundary.
    """

    def __init__(self, threshold=3.5):
        self.threshold = threshold

    def fit(self, X, y=None):
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        X = check_array(X)
        self.median_ = np.median(X, axis=0)
        mad = np.median(np.abs(X - self.median_), axis=0)
        mad[mad == 0.0] = 1e-9
        self.mad_ = mad
        self.n_features_in_ = X.shape[1]
        return self

    def score_samples(self, X):
        """Maximum absolute robust z-score per sample (higher = more anomalous)."""
        self._check_fitted("median_")
        X = check_array(X)
        z_scores = 0.6745 * np.abs(X - self.median_) / self.mad_
        return z_scores.max(axis=1)

    def predict(self, X):
        """Return 1 for outliers and 0 for inliers."""
        return (self.score_samples(X) > self.threshold).astype(int)


class _IsolationTree:
    """A single isolation tree with random axis-aligned splits."""

    def __init__(self, max_depth, rng):
        self.max_depth = max_depth
        self.rng = rng

    def fit(self, X):
        self.root_ = self._build(X, depth=0)
        return self

    def _build(self, X, depth):
        n_samples, n_features = X.shape
        if depth >= self.max_depth or n_samples <= 1:
            return {"size": n_samples}
        feature = int(self.rng.randint(n_features))
        low, high = X[:, feature].min(), X[:, feature].max()
        if low == high:
            return {"size": n_samples}
        threshold = float(self.rng.uniform(low, high))
        mask = X[:, feature] < threshold
        return {
            "feature": feature,
            "threshold": threshold,
            "left": self._build(X[mask], depth + 1),
            "right": self._build(X[~mask], depth + 1),
        }

    def path_length(self, x):
        node = self.root_
        depth = 0
        while "feature" in node:
            node = node["left"] if x[node["feature"]] < node["threshold"] else node["right"]
            depth += 1
        return depth + _average_path_length(node["size"])


def _average_path_length(n):
    if n <= 1:
        return 0.0
    harmonic = np.log(n - 1) + 0.5772156649
    return 2.0 * harmonic - 2.0 * (n - 1) / n


class IsolationTreeDetector(BaseEstimator):
    """Isolation-forest-style anomaly detector.

    Parameters
    ----------
    n_estimators:
        Number of isolation trees.
    contamination:
        Expected fraction of outliers; sets the decision threshold.
    max_samples:
        Sub-sample size used to build each tree.
    """

    def __init__(self, n_estimators=30, contamination=0.1, max_samples=64, random_state=None):
        self.n_estimators = n_estimators
        self.contamination = contamination
        self.max_samples = max_samples
        self.random_state = random_state

    def fit(self, X, y=None):
        if not 0.0 < self.contamination < 0.5:
            raise ValueError("contamination must be in (0, 0.5)")
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be at least 1")
        X = check_array(X)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        sample_size = min(self.max_samples, n_samples)
        max_depth = int(np.ceil(np.log2(max(sample_size, 2))))
        self.trees_ = []
        for _ in range(self.n_estimators):
            indices = rng.choice(n_samples, size=sample_size, replace=False)
            tree = _IsolationTree(max_depth, rng)
            tree.fit(X[indices])
            self.trees_.append(tree)
        self._normalizer = _average_path_length(sample_size) or 1.0
        scores = self.score_samples(X)
        self.threshold_ = float(np.quantile(scores, 1.0 - self.contamination))
        self.n_features_in_ = X.shape[1]
        return self

    def score_samples(self, X):
        """Anomaly score in (0, 1); higher means more anomalous."""
        self._check_fitted("trees_")
        X = check_array(X)
        depths = np.asarray([
            [tree.path_length(x) for tree in self.trees_] for x in X
        ])
        mean_depth = depths.mean(axis=1)
        return 2.0 ** (-mean_depth / self._normalizer)

    def predict(self, X):
        """Return 1 for outliers and 0 for inliers."""
        self._check_fitted("trees_")
        return (self.score_samples(X) > self.threshold_).astype(int)
