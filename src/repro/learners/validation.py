"""Input validation helpers used across the learner substrate."""

import numpy as np


def check_array(X, ensure_2d=True, dtype=float, allow_nan=False):
    """Validate ``X`` and return it as a numpy array.

    Parameters
    ----------
    X:
        Array-like input.
    ensure_2d:
        If True, a 1-D input is rejected.
    dtype:
        Target dtype, or ``None`` to keep the input dtype.
    allow_nan:
        Whether NaN values are accepted.
    """
    X = np.asarray(X, dtype=dtype)
    if ensure_2d and X.ndim != 2:
        raise ValueError("Expected a 2D array, got array with shape {}".format(X.shape))
    if X.size == 0:
        raise ValueError("Found an empty array; at least one sample is required")
    if not allow_nan and np.issubdtype(X.dtype, np.floating) and np.isnan(X).any():
        raise ValueError("Input contains NaN values")
    return X


def check_X_y(X, y, allow_nan=False, y_numeric=False):
    """Validate a feature matrix and target vector of matching length."""
    X = check_array(X, allow_nan=allow_nan)
    y = np.asarray(y)
    if y.ndim != 1:
        y = y.ravel()
    if X.shape[0] != y.shape[0]:
        raise ValueError(
            "X and y have inconsistent lengths: {} != {}".format(X.shape[0], y.shape[0])
        )
    if y_numeric:
        y = y.astype(float)
    return X, y


def column_or_1d(y):
    """Ravel ``y`` to a 1-D array, rejecting genuinely 2-D targets."""
    y = np.asarray(y)
    if y.ndim == 1:
        return y
    if y.ndim == 2 and y.shape[1] == 1:
        return y.ravel()
    raise ValueError("Expected a 1D array, got shape {}".format(y.shape))
