"""Synthetic-cost learners for scheduler and backend experiments.

Benchmarking a parallel search scheduler needs pipelines whose *cost* is
controlled and whose *result* is deterministic — real estimators conflate
the two.  :class:`TimedDummyClassifier` decouples them: it predicts the
majority class (a deterministic, data-independent baseline) while sleeping
a configurable amount of time in ``fit``, so a benchmark can lay out an
arbitrary skew of cheap and expensive evaluations and measure nothing but
the scheduling.
"""

import time

import numpy as np

from repro.learners.base import BaseEstimator, ClassifierMixin


class TimedDummyClassifier(BaseEstimator, ClassifierMixin):
    """Majority-class classifier with a configurable artificial cost.

    Parameters
    ----------
    fit_seconds:
        Wall-clock time slept inside ``fit`` (simulated training cost).
    predict_seconds:
        Wall-clock time slept inside ``predict`` (simulated scoring cost).

    The sleeps release the GIL, so thread- and process-pool backends can
    overlap them the same way they overlap real model fits.
    """

    def __init__(self, fit_seconds=0.0, predict_seconds=0.0):
        self.fit_seconds = fit_seconds
        self.predict_seconds = predict_seconds

    def fit(self, X, y):
        if self.fit_seconds:
            time.sleep(self.fit_seconds)
        y = np.asarray(y)
        values, counts = np.unique(y, return_counts=True)
        self.majority_ = values[int(np.argmax(counts))]
        return self

    def predict(self, X):
        self._check_fitted("majority_")
        if self.predict_seconds:
            time.sleep(self.predict_seconds)
        return np.full(len(X), self.majority_)


class TimedIdentityTransformer(BaseEstimator):
    """Identity feature transformer with a configurable artificial fit cost.

    The preprocessing counterpart of :class:`TimedDummyClassifier`: it
    passes the features through unchanged (a deterministic, artifact-free
    transform) while sleeping a configurable amount of time in ``fit`` —
    a stand-in for an expensive imputer/encoder/featurizer prefix.  The
    prefix-cache benchmarks build templates around it to measure nothing
    but how often the evaluation stack refits a shared prefix.

    Parameters
    ----------
    fit_seconds:
        Wall-clock time slept inside ``fit`` (simulated prefix fit cost).
    transform_seconds:
        Wall-clock time slept inside ``transform``.

    The sleeps release the GIL, so pool backends overlap them the same
    way they overlap real preprocessing fits.
    """

    def __init__(self, fit_seconds=0.0, transform_seconds=0.0):
        self.fit_seconds = fit_seconds
        self.transform_seconds = transform_seconds

    def fit(self, X, y=None):
        if self.fit_seconds:
            time.sleep(self.fit_seconds)
        self.n_features_ = np.asarray(X).shape[1] if np.asarray(X).ndim > 1 else 1
        return self

    def transform(self, X):
        self._check_fitted("n_features_")
        if self.transform_seconds:
            time.sleep(self.transform_seconds)
        return np.asarray(X)
