"""Graph featurization, link prediction and community detection primitives."""

from repro.learners.graph.features import (
    GraphFeaturizer,
    LinkPredictionFeatureExtractor,
    graph_feature_extraction,
    link_prediction_feature_extraction,
)
from repro.learners.graph.community import CommunityBestPartition, louvain_communities

__all__ = [
    "GraphFeaturizer",
    "LinkPredictionFeatureExtractor",
    "graph_feature_extraction",
    "link_prediction_feature_extraction",
    "CommunityBestPartition",
    "louvain_communities",
]
