"""Community detection (stand-in for ``python-louvain`` / ``community.best_partition``)."""

import numpy as np
import networkx as nx

from repro.learners.base import BaseEstimator, check_random_state


def louvain_communities(graph, resolution=1.0, random_state=None):
    """Partition a graph into communities by greedy modularity maximization.

    A light-weight Louvain-style local moving heuristic: nodes are moved
    between communities while modularity improves.  Returns a mapping
    ``node -> community_id`` like ``community.best_partition``.
    """
    if graph.number_of_nodes() == 0:
        return {}
    rng = check_random_state(random_state)
    nodes = list(graph.nodes())
    community = {node: i for i, node in enumerate(nodes)}
    total_weight = graph.size(weight="weight") or graph.number_of_edges()
    if total_weight == 0:
        return community
    two_m = 2.0 * total_weight

    degrees = dict(graph.degree(weight="weight"))
    community_degree = {community[node]: degrees[node] for node in nodes}

    improved = True
    iterations = 0
    while improved and iterations < 20:
        improved = False
        iterations += 1
        order = list(nodes)
        rng.shuffle(order)
        for node in order:
            current = community[node]
            community_degree[current] -= degrees[node]
            # weights of edges from node to each neighboring community
            neighbor_weights = {}
            for neighbor in graph.neighbors(node):
                if neighbor == node:
                    continue
                weight = graph[node][neighbor].get("weight", 1.0)
                neighbor_community = community[neighbor]
                neighbor_weights[neighbor_community] = (
                    neighbor_weights.get(neighbor_community, 0.0) + weight
                )
            best_community = current
            best_gain = 0.0
            for candidate, weight in neighbor_weights.items():
                gain = weight - resolution * community_degree.get(candidate, 0.0) * degrees[node] / two_m
                if gain > best_gain:
                    best_gain = gain
                    best_community = candidate
            community[node] = best_community
            community_degree[best_community] = (
                community_degree.get(best_community, 0.0) + degrees[node]
            )
            if best_community != current:
                improved = True

    # relabel communities to consecutive integers
    labels = {}
    relabeled = {}
    for node in nodes:
        label = community[node]
        if label not in labels:
            labels[label] = len(labels)
        relabeled[node] = labels[label]
    return relabeled


def modularity(graph, partition):
    """Newman modularity of a partition (mapping node -> community)."""
    communities = {}
    for node, community_id in partition.items():
        communities.setdefault(community_id, set()).add(node)
    return nx.algorithms.community.modularity(graph, list(communities.values()))


class CommunityBestPartition(BaseEstimator):
    """Primitive wrapper for Louvain community detection.

    ``produce`` returns an array of community labels aligned with the
    requested node list, which is what the community detection template of
    paper Table II expects.
    """

    def __init__(self, resolution=1.0, random_state=None):
        self.resolution = resolution
        self.random_state = random_state

    def produce(self, graph, nodes=None):
        partition = louvain_communities(
            graph, resolution=self.resolution, random_state=self.random_state
        )
        if nodes is None:
            nodes = list(graph.nodes())
        return np.asarray([partition.get(node, -1) for node in nodes], dtype=int)
