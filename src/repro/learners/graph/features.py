"""Graph feature extraction primitives built on networkx.

These stand in for the ``graph_feature_extraction`` and
``link_prediction_feature_extraction`` primitives used by the graph
templates of paper Table II (graph matching, link prediction and vertex
nomination tasks).
"""

import numpy as np
import networkx as nx

from repro.learners.base import BaseEstimator


def _node_feature_row(graph, node, degrees, clustering, pagerank):
    return [
        degrees.get(node, 0.0),
        clustering.get(node, 0.0),
        pagerank.get(node, 0.0),
        float(nx.degree(graph, node)),
    ]


def graph_feature_extraction(graph, nodes=None):
    """Per-node structural features: degree, clustering, pagerank, core number.

    Parameters
    ----------
    graph:
        A ``networkx.Graph``.
    nodes:
        Nodes to featurize; defaults to every node in the graph.

    Returns
    -------
    2-D float array of shape ``(len(nodes), 5)``.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("Cannot featurize an empty graph")
    if nodes is None:
        nodes = list(graph.nodes())
    degrees = dict(graph.degree())
    clustering = nx.clustering(graph)
    pagerank = nx.pagerank(graph, max_iter=100)
    try:
        core_numbers = nx.core_number(graph)
    except nx.NetworkXError:
        core_numbers = {node: 0 for node in graph.nodes()}
    features = []
    for node in nodes:
        if node in graph:
            features.append([
                float(degrees.get(node, 0)),
                float(clustering.get(node, 0.0)),
                float(pagerank.get(node, 0.0)),
                float(core_numbers.get(node, 0)),
                float(nx.degree(graph, node)),
            ])
        else:
            features.append([0.0, 0.0, 0.0, 0.0, 0.0])
    return np.asarray(features, dtype=float)


def link_prediction_feature_extraction(graph, pairs):
    """Per-pair topological features for link prediction.

    For every ``(u, v)`` pair the features are: number of common
    neighbors, Jaccard coefficient, Adamic-Adar index, preferential
    attachment score, and whether the two nodes are in the same connected
    component.
    """
    if graph.number_of_nodes() == 0:
        raise ValueError("Cannot featurize pairs on an empty graph")
    components = {}
    for component_id, component in enumerate(nx.connected_components(graph)):
        for node in component:
            components[node] = component_id

    features = []
    for u, v in pairs:
        if u not in graph or v not in graph:
            features.append([0.0, 0.0, 0.0, 0.0, 0.0])
            continue
        neighbors_u = set(graph.neighbors(u))
        neighbors_v = set(graph.neighbors(v))
        common = neighbors_u & neighbors_v
        union = neighbors_u | neighbors_v
        jaccard = len(common) / len(union) if union else 0.0
        adamic_adar = sum(
            1.0 / np.log(graph.degree(node)) for node in common if graph.degree(node) > 1
        )
        preferential = len(neighbors_u) * len(neighbors_v)
        same_component = float(components.get(u, -1) == components.get(v, -2))
        features.append([
            float(len(common)),
            float(jaccard),
            float(adamic_adar),
            float(preferential),
            same_component,
        ])
    return np.asarray(features, dtype=float)


class GraphFeaturizer(BaseEstimator):
    """Primitive wrapper producing node features for a node list."""

    def produce(self, graph, nodes=None):
        return graph_feature_extraction(graph, nodes=nodes)


class LinkPredictionFeatureExtractor(BaseEstimator):
    """Primitive wrapper producing pairwise features for candidate edges."""

    def produce(self, graph, pairs):
        return link_prediction_feature_extraction(graph, pairs)
