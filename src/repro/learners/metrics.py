"""Evaluation metrics for classification, regression and ranking.

These replace ``sklearn.metrics`` for the purpose of scoring pipelines in
AutoBazaar (paper Algorithm 2) and in the experiment harnesses of
Section VI.
"""

import numpy as np

from repro.learners.validation import column_or_1d


def _check_lengths(y_true, y_pred):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError(
            "y_true and y_pred have different lengths: {} != {}".format(
                y_true.shape[0], y_pred.shape[0]
            )
        )
    if y_true.shape[0] == 0:
        raise ValueError("Cannot compute a metric on empty arrays")
    return y_true, y_pred


# ---------------------------------------------------------------------------
# Classification metrics
# ---------------------------------------------------------------------------

def accuracy_score(y_true, y_pred):
    """Fraction of exactly matching predictions."""
    y_true, y_pred = _check_lengths(y_true, y_pred)
    return float(np.mean(np.asarray(y_true) == np.asarray(y_pred)))


def confusion_matrix(y_true, y_pred, labels=None):
    """Confusion matrix with rows = true labels and columns = predictions."""
    y_true, y_pred = _check_lengths(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([np.asarray(y_true), np.asarray(y_pred)]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((len(labels), len(labels)), dtype=int)
    for true, pred in zip(y_true, y_pred):
        matrix[index[true], index[pred]] += 1
    return matrix


def _precision_recall_counts(y_true, y_pred, label):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = np.sum((y_pred == label) & (y_true == label))
    fp = np.sum((y_pred == label) & (y_true != label))
    fn = np.sum((y_pred != label) & (y_true == label))
    return tp, fp, fn


def precision_score(y_true, y_pred, average="macro"):
    """Precision, macro-averaged over classes by default."""
    return _prf(y_true, y_pred, average)[0]


def recall_score(y_true, y_pred, average="macro"):
    """Recall, macro-averaged over classes by default."""
    return _prf(y_true, y_pred, average)[1]


def f1_score(y_true, y_pred, average="macro"):
    """F1 score, macro-averaged over classes by default."""
    return _prf(y_true, y_pred, average)[2]


def _prf(y_true, y_pred, average):
    y_true, y_pred = _check_lengths(y_true, y_pred)
    labels = np.unique(np.asarray(y_true))
    precisions, recalls, f1s, supports = [], [], [], []
    for label in labels:
        tp, fp, fn = _precision_recall_counts(y_true, y_pred, label)
        precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
        recall = tp / (tp + fn) if (tp + fn) > 0 else 0.0
        f1 = 2 * precision * recall / (precision + recall) if (precision + recall) > 0 else 0.0
        precisions.append(precision)
        recalls.append(recall)
        f1s.append(f1)
        supports.append(np.sum(np.asarray(y_true) == label))
    if average == "macro":
        return float(np.mean(precisions)), float(np.mean(recalls)), float(np.mean(f1s))
    if average == "weighted":
        weights = np.asarray(supports, dtype=float)
        weights = weights / weights.sum()
        return (
            float(np.dot(precisions, weights)),
            float(np.dot(recalls, weights)),
            float(np.dot(f1s, weights)),
        )
    if average == "micro":
        tp_total = fp_total = fn_total = 0
        for label in labels:
            tp, fp, fn = _precision_recall_counts(y_true, y_pred, label)
            tp_total += tp
            fp_total += fp
            fn_total += fn
        precision = tp_total / (tp_total + fp_total) if (tp_total + fp_total) > 0 else 0.0
        recall = tp_total / (tp_total + fn_total) if (tp_total + fn_total) > 0 else 0.0
        f1 = 2 * precision * recall / (precision + recall) if (precision + recall) > 0 else 0.0
        return float(precision), float(recall), float(f1)
    raise ValueError("Unknown average mode: {!r}".format(average))


def log_loss(y_true, y_proba, labels=None, eps=1e-15):
    """Multiclass logarithmic loss for probability predictions."""
    y_true = column_or_1d(y_true)
    y_proba = np.asarray(y_proba, dtype=float)
    if y_proba.ndim == 1:
        y_proba = np.column_stack([1.0 - y_proba, y_proba])
    if labels is None:
        labels = np.unique(y_true)
    labels = np.asarray(labels)
    if y_proba.shape[1] != len(labels):
        raise ValueError(
            "y_proba has {} columns but there are {} labels".format(y_proba.shape[1], len(labels))
        )
    y_proba = np.clip(y_proba, eps, 1.0 - eps)
    y_proba = y_proba / y_proba.sum(axis=1, keepdims=True)
    index = {label: i for i, label in enumerate(labels)}
    rows = np.arange(len(y_true))
    cols = np.array([index[label] for label in y_true])
    return float(-np.mean(np.log(y_proba[rows, cols])))


def roc_auc_score(y_true, y_score):
    """Area under the ROC curve for binary targets.

    ``y_true`` must contain exactly two classes; the larger one is treated
    as the positive class.  Ties in ``y_score`` are handled by assigning
    average ranks, which matches the Mann-Whitney U formulation.
    """
    y_true = column_or_1d(y_true)
    y_score = column_or_1d(np.asarray(y_score, dtype=float))
    classes = np.unique(y_true)
    if len(classes) != 2:
        raise ValueError("roc_auc_score requires exactly 2 classes, got {}".format(len(classes)))
    positive = classes[1]
    pos_mask = y_true == positive
    n_pos = int(pos_mask.sum())
    n_neg = int((~pos_mask).sum())
    order = np.argsort(y_score, kind="mergesort")
    ranks = np.empty(len(y_score), dtype=float)
    sorted_scores = y_score[order]
    # average ranks for tied scores
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[pos_mask].sum()
    auc = (rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
    return float(auc)


def adjusted_rand_score(labels_true, labels_pred):
    """Adjusted Rand index between two clusterings (permutation invariant).

    Used to score community detection tasks, where the predicted community
    ids carry no intrinsic meaning and only the grouping matters.
    """
    labels_true = column_or_1d(labels_true)
    labels_pred = column_or_1d(labels_pred)
    if len(labels_true) != len(labels_pred):
        raise ValueError("labels_true and labels_pred must be aligned")
    n_samples = len(labels_true)
    if n_samples == 0:
        raise ValueError("Cannot compute ARI on empty arrays")

    classes, class_idx = np.unique(labels_true, return_inverse=True)
    clusters, cluster_idx = np.unique(labels_pred, return_inverse=True)
    contingency = np.zeros((len(classes), len(clusters)), dtype=float)
    for i, j in zip(class_idx, cluster_idx):
        contingency[i, j] += 1

    def comb2(values):
        return values * (values - 1) / 2.0

    sum_comb_c = comb2(contingency.sum(axis=1)).sum()
    sum_comb_k = comb2(contingency.sum(axis=0)).sum()
    sum_comb = comb2(contingency).sum()
    total_comb = comb2(np.array([n_samples]))[0]
    expected = sum_comb_c * sum_comb_k / total_comb if total_comb > 0 else 0.0
    max_index = 0.5 * (sum_comb_c + sum_comb_k)
    if max_index == expected:
        return 1.0
    return float((sum_comb - expected) / (max_index - expected))


# ---------------------------------------------------------------------------
# Regression metrics
# ---------------------------------------------------------------------------

def mean_squared_error(y_true, y_pred):
    """Mean squared error."""
    y_true, y_pred = _check_lengths(y_true, y_pred)
    diff = np.asarray(y_true, dtype=float) - np.asarray(y_pred, dtype=float)
    return float(np.mean(diff ** 2))


def root_mean_squared_error(y_true, y_pred):
    """Root mean squared error."""
    return float(np.sqrt(mean_squared_error(y_true, y_pred)))


def mean_absolute_error(y_true, y_pred):
    """Mean absolute error."""
    y_true, y_pred = _check_lengths(y_true, y_pred)
    diff = np.asarray(y_true, dtype=float) - np.asarray(y_pred, dtype=float)
    return float(np.mean(np.abs(diff)))


def r2_score(y_true, y_pred):
    """Coefficient of determination R^2."""
    y_true, y_pred = _check_lengths(y_true, y_pred)
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    ss_res = np.sum((y_true - y_pred) ** 2)
    ss_tot = np.sum((y_true - np.mean(y_true)) ** 2)
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return float(1.0 - ss_res / ss_tot)


def mean_absolute_percentage_error(y_true, y_pred, eps=1e-9):
    """Mean absolute percentage error, guarding against zero targets."""
    y_true, y_pred = _check_lengths(y_true, y_pred)
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    denominator = np.maximum(np.abs(y_true), eps)
    return float(np.mean(np.abs((y_true - y_pred) / denominator)))


# ---------------------------------------------------------------------------
# Anomaly detection / interval metrics (ORION use case)
# ---------------------------------------------------------------------------

def _intervals_overlap(a, b):
    return a[0] <= b[1] and b[0] <= a[1]


def anomaly_f1_score(true_anomalies, detected_anomalies):
    """Overlap-based F1 score between true and detected anomaly intervals.

    Each anomaly is an ``(start, end)`` pair of indices.  A true anomaly
    counts as detected if any detected interval overlaps it; a detected
    interval counts as a true positive if it overlaps any true anomaly.
    This matches the evaluation used by the ORION satellite telemetry use
    case (paper Section V-A).
    """
    true_anomalies = [tuple(interval) for interval in true_anomalies]
    detected_anomalies = [tuple(interval) for interval in detected_anomalies]
    if not true_anomalies and not detected_anomalies:
        return 1.0
    if not true_anomalies or not detected_anomalies:
        return 0.0
    detected_true = sum(
        1 for t in true_anomalies if any(_intervals_overlap(t, d) for d in detected_anomalies)
    )
    correct_detections = sum(
        1 for d in detected_anomalies if any(_intervals_overlap(d, t) for t in true_anomalies)
    )
    recall = detected_true / len(true_anomalies)
    precision = correct_detections / len(detected_anomalies)
    if precision + recall == 0:
        return 0.0
    return float(2 * precision * recall / (precision + recall))


# ---------------------------------------------------------------------------
# Metric registry used by tasks and AutoBazaar
# ---------------------------------------------------------------------------

#: Mapping from metric name to (callable, higher_is_better).
METRICS = {
    "accuracy": (accuracy_score, True),
    "f1_macro": (lambda y, p: f1_score(y, p, average="macro"), True),
    "f1_micro": (lambda y, p: f1_score(y, p, average="micro"), True),
    "roc_auc": (roc_auc_score, True),
    "log_loss": (log_loss, False),
    "mse": (mean_squared_error, False),
    "rmse": (root_mean_squared_error, False),
    "mae": (mean_absolute_error, False),
    "mape": (mean_absolute_percentage_error, False),
    "r2": (r2_score, True),
    "anomaly_f1": (anomaly_f1_score, True),
    "adjusted_rand": (adjusted_rand_score, True),
}


def get_metric(name):
    """Return ``(metric_function, higher_is_better)`` for a metric name."""
    try:
        return METRICS[name]
    except KeyError:
        raise ValueError(
            "Unknown metric {!r}; available metrics: {}".format(name, sorted(METRICS))
        ) from None
