"""Sequence models standing in for the Keras LSTM primitives.

``LSTMTimeSeriesRegressor`` consumes rolling-window sequences (as produced
by :func:`repro.learners.timeseries.rolling_window_sequences`) and predicts
the next value of the series; ``LSTMTextClassifier`` consumes padded token
sequences (as produced by the tokenizer primitives) and predicts a class.

Both models keep the exact input/output contracts of the Keras primitives
from the ORION and text-classification pipelines (paper Figure 3) but are
implemented as windowed/embedding MLPs in numpy, which preserves the
pipeline and AutoML behaviour while staying laptop-fast.
"""

import numpy as np

from repro.learners.base import BaseEstimator, RegressorMixin, ClassifierMixin, check_random_state
from repro.learners.neural.mlp import MLPClassifier, MLPRegressor


class LSTMTimeSeriesRegressor(BaseEstimator, RegressorMixin):
    """Predict the next value of a time series from a fixed-length window.

    Parameters
    ----------
    hidden_units:
        Sizes of the hidden layers of the underlying network.
    epochs, learning_rate, batch_size:
        Training hyperparameters passed to the underlying network.
    """

    def __init__(self, hidden_units=(64, 32), epochs=35, learning_rate=0.01,
                 batch_size=64, random_state=None):
        self.hidden_units = hidden_units
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.random_state = random_state

    def fit(self, X, y):
        X = _flatten_sequences(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        self._network = MLPRegressor(
            hidden_units=self.hidden_units,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            random_state=self.random_state,
        )
        self._network.fit(X, y)
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X):
        self._check_fitted("_network")
        X = _flatten_sequences(np.asarray(X, dtype=float))
        return self._network.predict(X)


class LSTMTextClassifier(BaseEstimator, ClassifierMixin):
    """Classify padded token sequences.

    Token indices are embedded with a fixed random embedding table (a
    cheap, deterministic substitute for a learned embedding), pooled over
    the sequence, and classified with an MLP head.

    Parameters
    ----------
    vocabulary_size:
        Number of distinct tokens; inferred from the data when ``None``.
    embedding_dim:
        Dimensionality of the token embeddings.
    """

    def __init__(self, vocabulary_size=None, embedding_dim=32, hidden_units=(64,),
                 epochs=30, learning_rate=0.01, batch_size=32, random_state=None):
        self.vocabulary_size = vocabulary_size
        self.embedding_dim = embedding_dim
        self.hidden_units = hidden_units
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.batch_size = batch_size
        self.random_state = random_state

    def _embed(self, X):
        X = np.asarray(X, dtype=int)
        if X.ndim != 2:
            raise ValueError("Expected padded token sequences of shape (n_samples, maxlen)")
        clipped = np.clip(X, 0, self._vocabulary_size - 1)
        embedded = self._embeddings[clipped]        # (n, maxlen, dim)
        mask = (X > 0).astype(float)[:, :, None]    # 0 is the padding index
        lengths = np.maximum(mask.sum(axis=1), 1.0)
        mean_pooled = (embedded * mask).sum(axis=1) / lengths
        max_pooled = (embedded * mask).max(axis=1)
        return np.hstack([mean_pooled, max_pooled])

    def fit(self, X, y, vocabulary_size=None, classes=None):
        """Fit on padded sequences.

        ``classes`` (the number of target classes) is accepted for
        interface compatibility with the Keras primitive it replaces, where
        it sizes the output layer; here the output size is inferred from
        ``y`` directly.
        """
        X = np.asarray(X, dtype=int)
        y = np.asarray(y)
        size = vocabulary_size or self.vocabulary_size
        if size is None:
            size = int(X.max()) + 1 if X.size else 1
        self._vocabulary_size = max(int(size), int(X.max()) + 1 if X.size else 1)
        rng = check_random_state(self.random_state)
        self._embeddings = rng.normal(0.0, 1.0, size=(self._vocabulary_size, self.embedding_dim))
        self._embeddings[0] = 0.0  # padding token embeds to zero
        features = self._embed(X)
        self._network = MLPClassifier(
            hidden_units=self.hidden_units,
            epochs=self.epochs,
            learning_rate=self.learning_rate,
            batch_size=self.batch_size,
            random_state=self.random_state,
        )
        self._network.fit(features, y)
        self.classes_ = self._network.classes_
        return self

    def predict_proba(self, X):
        self._check_fitted("_network")
        return self._network.predict_proba(self._embed(X))

    def predict(self, X):
        self._check_fitted("_network")
        return self._network.predict(self._embed(X))


def _flatten_sequences(X):
    if X.ndim == 3:
        return X.reshape(X.shape[0], -1)
    if X.ndim == 2:
        return X
    raise ValueError("Expected 2D or 3D sequence input, got shape {}".format(X.shape))
