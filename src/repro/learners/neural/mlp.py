"""Multilayer perceptrons trained with mini-batch Adam."""

import numpy as np

from repro.learners.base import BaseEstimator, ClassifierMixin, RegressorMixin, check_random_state
from repro.learners.validation import check_X_y, check_array


def _relu(values):
    return np.maximum(values, 0.0)


def _relu_grad(values):
    return (values > 0.0).astype(float)


def _softmax(logits):
    shifted = logits - logits.max(axis=1, keepdims=True)
    exps = np.exp(shifted)
    return exps / exps.sum(axis=1, keepdims=True)


class _AdamState:
    """Adam optimizer state for a list of parameter arrays."""

    def __init__(self, parameters, learning_rate, beta1=0.9, beta2=0.999, eps=1e-8):
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.step = 0
        self.m = [np.zeros_like(p) for p in parameters]
        self.v = [np.zeros_like(p) for p in parameters]

    def update(self, parameters, gradients):
        self.step += 1
        for i, (parameter, gradient) in enumerate(zip(parameters, gradients)):
            self.m[i] = self.beta1 * self.m[i] + (1 - self.beta1) * gradient
            self.v[i] = self.beta2 * self.v[i] + (1 - self.beta2) * gradient ** 2
            m_hat = self.m[i] / (1 - self.beta1 ** self.step)
            v_hat = self.v[i] / (1 - self.beta2 ** self.step)
            parameter -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.eps)


class _BaseMLP(BaseEstimator):
    """Shared forward/backward machinery for MLP models."""

    def __init__(self, hidden_units=(32,), learning_rate=0.01, epochs=50, batch_size=32,
                 alpha=1e-4, random_state=None):
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.alpha = alpha
        self.random_state = random_state

    def _initialize(self, n_inputs, n_outputs, rng):
        sizes = [n_inputs] + list(self.hidden_units) + [n_outputs]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights_.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

    def _forward(self, X):
        activations = [X]
        pre_activations = []
        hidden = X
        for i, (weights, bias) in enumerate(zip(self.weights_, self.biases_)):
            linear = hidden @ weights + bias
            pre_activations.append(linear)
            if i < len(self.weights_) - 1:
                hidden = _relu(linear)
            else:
                hidden = linear
            activations.append(hidden)
        return activations, pre_activations

    def _backward(self, activations, pre_activations, output_gradient):
        weight_gradients = [None] * len(self.weights_)
        bias_gradients = [None] * len(self.biases_)
        delta = output_gradient
        for i in reversed(range(len(self.weights_))):
            weight_gradients[i] = activations[i].T @ delta + self.alpha * self.weights_[i]
            bias_gradients[i] = delta.sum(axis=0)
            if i > 0:
                delta = (delta @ self.weights_[i].T) * _relu_grad(pre_activations[i - 1])
        return weight_gradients, bias_gradients

    def _train(self, X, targets, output_gradient_fn):
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        rng = check_random_state(self.random_state)
        self._initialize(X.shape[1], targets.shape[1], rng)
        optimizer = _AdamState(self.weights_ + self.biases_, self.learning_rate)
        n_samples = X.shape[0]
        self.loss_curve_ = []
        for _ in range(self.epochs):
            permutation = rng.permutation(n_samples)
            epoch_loss = 0.0
            for start in range(0, n_samples, self.batch_size):
                batch = permutation[start:start + self.batch_size]
                activations, pre_activations = self._forward(X[batch])
                gradient, loss = output_gradient_fn(activations[-1], targets[batch])
                epoch_loss += loss * len(batch)
                weight_gradients, bias_gradients = self._backward(
                    activations, pre_activations, gradient
                )
                optimizer.update(
                    self.weights_ + self.biases_, weight_gradients + bias_gradients
                )
            self.loss_curve_.append(epoch_loss / n_samples)
        self.n_features_in_ = X.shape[1]
        return self


class MLPRegressor(_BaseMLP, RegressorMixin):
    """Feed-forward network for regression with squared-error loss."""

    def fit(self, X, y):
        X, y = check_X_y(X, y, y_numeric=True)
        targets = y.reshape(-1, 1)
        self._y_mean = float(targets.mean())
        self._y_scale = float(targets.std()) or 1.0
        normalized = (targets - self._y_mean) / self._y_scale

        def gradient_fn(outputs, batch_targets):
            diff = outputs - batch_targets
            loss = float(np.mean(diff ** 2))
            return diff / len(batch_targets), loss

        return self._train(X, normalized, gradient_fn)

    def predict(self, X):
        self._check_fitted("weights_")
        X = check_array(X)
        outputs, _ = self._forward(X)
        return outputs[-1][:, 0] * self._y_scale + self._y_mean


class MLPClassifier(_BaseMLP, ClassifierMixin):
    """Feed-forward network for classification with softmax cross-entropy loss."""

    def fit(self, X, y):
        X, y = check_X_y(X, y)
        self.classes_ = np.unique(y)
        index = {label: i for i, label in enumerate(self.classes_)}
        onehot = np.zeros((len(y), len(self.classes_)))
        for row, label in enumerate(y):
            onehot[row, index[label]] = 1.0

        def gradient_fn(outputs, batch_targets):
            probabilities = _softmax(outputs)
            loss = float(-np.mean(np.sum(batch_targets * np.log(probabilities + 1e-12), axis=1)))
            return (probabilities - batch_targets) / len(batch_targets), loss

        return self._train(X, onehot, gradient_fn)

    def predict_proba(self, X):
        self._check_fitted("weights_")
        X = check_array(X)
        outputs, _ = self._forward(X)
        return _softmax(outputs[-1])

    def predict(self, X):
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]
