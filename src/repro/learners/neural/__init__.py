"""Neural network models: multilayer perceptrons and sequence models.

These are the stand-ins for the Keras primitives in the original catalog
(``LSTMTimeSeriesRegressor``, ``LSTMTextClassifier`` and friends).  They
are implemented with plain numpy backpropagation, which keeps the same
fit/produce surface while running quickly on a laptop.
"""

from repro.learners.neural.mlp import MLPClassifier, MLPRegressor
from repro.learners.neural.sequence import LSTMTextClassifier, LSTMTimeSeriesRegressor

__all__ = [
    "MLPClassifier",
    "MLPRegressor",
    "LSTMTimeSeriesRegressor",
    "LSTMTextClassifier",
]
