"""Synthetic task generators for every task type in the suite.

The original ML Bazaar Task Suite is built from 456 externally hosted
datasets (Kaggle, OpenML, MIT Lincoln Laboratory, ...), none of which are
available offline.  Each generator below produces a small synthetic task
with a controllable amount of learnable signal so that relative comparisons
(template A vs template B, tuner A vs tuner B) behave like they do on real
data, which is what the paper's experiments measure.
"""

import numpy as np
import networkx as nx

from repro.learners.base import check_random_state
from repro.learners.relational import EntitySet
from repro.tasks.task import MLTask


# ---------------------------------------------------------------------------
# single table
# ---------------------------------------------------------------------------

def make_single_table_classification(name="single_table_classification", n_samples=150,
                                     n_features=8, n_informative=4, n_classes=2,
                                     class_sep=1.5, noise=1.0, random_state=None):
    """Gaussian-cluster classification with informative and noise features."""
    rng = check_random_state(random_state)
    n_informative = min(n_informative, n_features)
    centers = rng.normal(0.0, class_sep, size=(n_classes, n_informative))
    y = rng.randint(0, n_classes, size=n_samples)
    X = rng.normal(0.0, noise, size=(n_samples, n_features))
    X[:, :n_informative] += centers[y]
    return MLTask(
        name=name,
        data_modality="single_table",
        problem_type="classification",
        context={"X": X, "y": y},
        metadata={"n_classes": n_classes, "class_sep": class_sep},
    )


def make_single_table_regression(name="single_table_regression", n_samples=150, n_features=8,
                                 n_informative=4, noise=0.5, random_state=None):
    """Regression with a linear + interaction signal and additive noise."""
    rng = check_random_state(random_state)
    n_informative = min(n_informative, n_features)
    X = rng.normal(size=(n_samples, n_features))
    coefficients = rng.uniform(0.5, 2.0, size=n_informative)
    y = X[:, :n_informative] @ coefficients
    if n_informative >= 2:
        y = y + 0.5 * X[:, 0] * X[:, 1]
    y = y + noise * rng.normal(size=n_samples)
    return MLTask(
        name=name,
        data_modality="single_table",
        problem_type="regression",
        context={"X": X, "y": y},
        metadata={"noise": noise},
    )


def make_collaborative_filtering(name="collaborative_filtering", n_users=30, n_items=20,
                                 n_interactions=300, n_factors=3, noise=0.3, random_state=None):
    """Ratings generated from a latent factor model."""
    rng = check_random_state(random_state)
    user_factors = rng.normal(size=(n_users, n_factors))
    item_factors = rng.normal(size=(n_items, n_factors))
    users = rng.randint(0, n_users, size=n_interactions)
    items = rng.randint(0, n_items, size=n_interactions)
    ratings = np.sum(user_factors[users] * item_factors[items], axis=1)
    ratings = ratings + noise * rng.normal(size=n_interactions)
    X = np.column_stack([users, items]).astype(float)
    return MLTask(
        name=name,
        data_modality="single_table",
        problem_type="collaborative_filtering",
        context={"X": X, "y": ratings},
        metadata={"n_users": n_users, "n_items": n_items},
    )


def make_timeseries_forecasting(name="timeseries_forecasting", n_samples=200, n_lags=6,
                                noise=0.2, random_state=None):
    """One-step-ahead forecasting with lag features of a seasonal AR series."""
    rng = check_random_state(random_state)
    length = n_samples + n_lags + 1
    t = np.arange(length, dtype=float)
    series = np.sin(t / 8.0) + 0.3 * np.sin(t / 3.0) + 0.05 * t / length
    series = series + noise * rng.normal(size=length)
    X = np.column_stack([series[i:i + n_samples] for i in range(n_lags)])
    y = series[n_lags:n_lags + n_samples]
    return MLTask(
        name=name,
        data_modality="single_table",
        problem_type="timeseries_forecasting",
        context={"X": X, "y": y},
        ordered=True,
        metadata={"n_lags": n_lags},
    )


# ---------------------------------------------------------------------------
# multi table (relational)
# ---------------------------------------------------------------------------

def _make_entityset(n_customers, n_transactions, rng):
    customer_ids = np.arange(n_customers)
    ages = rng.uniform(18, 80, size=n_customers)
    incomes = rng.uniform(20, 150, size=n_customers)

    transaction_customer = rng.randint(0, n_customers, size=n_transactions)
    amounts = rng.exponential(scale=50.0, size=n_transactions)
    # make spending behaviour depend on income so the target is learnable
    amounts = amounts * (1.0 + incomes[transaction_customer] / 150.0)

    entityset = EntitySet(name="retail")
    entityset.add_entity("customers", {
        "customer_id": customer_ids,
        "age": ages,
        "income": incomes,
    }, index="customer_id")
    entityset.add_entity("transactions", {
        "transaction_id": np.arange(n_transactions),
        "customer_id": transaction_customer,
        "amount": amounts,
    }, index="transaction_id")
    entityset.add_relationship("customers", "customer_id", "transactions", "customer_id")

    total_spend = np.zeros(n_customers)
    np.add.at(total_spend, transaction_customer, amounts)
    return entityset, customer_ids, ages, incomes, total_spend


def make_multi_table_classification(name="multi_table_classification", n_customers=100,
                                    n_transactions=400, random_state=None):
    """Predict high-spending customers from a two-table retail entity set."""
    rng = check_random_state(random_state)
    entityset, customer_ids, _, incomes, total_spend = _make_entityset(
        n_customers, n_transactions, rng
    )
    score = total_spend + 2.0 * incomes + rng.normal(0, 20.0, size=n_customers)
    y = (score > np.median(score)).astype(int)
    return MLTask(
        name=name,
        data_modality="multi_table",
        problem_type="classification",
        context={"X": customer_ids.astype(float).reshape(-1, 1), "y": y, "entityset": entityset},
        static_keys={"entityset"},
        metadata={"n_customers": n_customers},
    )


def make_multi_table_regression(name="multi_table_regression", n_customers=100,
                                n_transactions=400, random_state=None):
    """Predict total customer spend from a two-table retail entity set."""
    rng = check_random_state(random_state)
    entityset, customer_ids, ages, _, total_spend = _make_entityset(
        n_customers, n_transactions, rng
    )
    y = total_spend + 0.5 * ages + rng.normal(0, 10.0, size=n_customers)
    return MLTask(
        name=name,
        data_modality="multi_table",
        problem_type="regression",
        context={"X": customer_ids.astype(float).reshape(-1, 1), "y": y, "entityset": entityset},
        static_keys={"entityset"},
        metadata={"n_customers": n_customers},
    )


# ---------------------------------------------------------------------------
# time series classification
# ---------------------------------------------------------------------------

def make_timeseries_classification(name="timeseries_classification", n_samples=120,
                                   series_length=30, n_classes=2, noise=0.4,
                                   random_state=None):
    """Classify fixed-length series generated from class-specific frequencies."""
    rng = check_random_state(random_state)
    t = np.arange(series_length, dtype=float)
    frequencies = np.linspace(4.0, 10.0, n_classes)
    y = rng.randint(0, n_classes, size=n_samples)
    phases = rng.uniform(0, 2 * np.pi, size=n_samples)
    X = np.stack([
        np.sin(t / frequencies[label] + phase) + noise * rng.normal(size=series_length)
        for label, phase in zip(y, phases)
    ])
    return MLTask(
        name=name,
        data_modality="timeseries",
        problem_type="classification",
        context={"X": X, "y": y},
        metadata={"series_length": series_length, "n_classes": n_classes},
    )


# ---------------------------------------------------------------------------
# text
# ---------------------------------------------------------------------------

_TOPIC_WORDS = {
    0: ["engine", "wheel", "road", "driver", "fuel", "speed", "car", "track"],
    1: ["galaxy", "orbit", "star", "telescope", "planet", "rocket", "cosmos", "lunar"],
    2: ["recipe", "flavor", "oven", "butter", "spice", "kitchen", "dough", "salt"],
}
_FILLER_WORDS = ["the", "a", "and", "with", "of", "for", "very", "quite", "some", "many",
                 "is", "was", "on", "at", "it", "this", "that"]
_POSITIVE_WORDS = ["excellent", "great", "wonderful", "amazing", "superb", "good"]
_NEGATIVE_WORDS = ["terrible", "awful", "poor", "bad", "horrible", "boring"]


def _sample_document(words, rng, length):
    tokens = []
    for _ in range(length):
        if rng.uniform() < 0.55:
            tokens.append(words[rng.randint(0, len(words))])
        else:
            tokens.append(_FILLER_WORDS[rng.randint(0, len(_FILLER_WORDS))])
    return " ".join(tokens)


def make_text_classification(name="text_classification", n_samples=120, n_classes=2,
                             document_length=20, random_state=None):
    """Topic classification over synthetic documents with class-specific vocabularies."""
    rng = check_random_state(random_state)
    n_classes = min(n_classes, len(_TOPIC_WORDS))
    y = rng.randint(0, n_classes, size=n_samples)
    documents = [
        _sample_document(_TOPIC_WORDS[label], rng, document_length) for label in y
    ]
    return MLTask(
        name=name,
        data_modality="text",
        problem_type="classification",
        context={"X": np.asarray(documents, dtype=object), "y": y},
        metadata={"n_classes": n_classes},
    )


def make_text_regression(name="text_regression", n_samples=120, document_length=20,
                         noise=0.3, random_state=None):
    """Sentiment-score regression over synthetic reviews."""
    rng = check_random_state(random_state)
    documents = []
    targets = []
    for _ in range(n_samples):
        positivity = rng.uniform()
        tokens = []
        for _ in range(document_length):
            draw = rng.uniform()
            if draw < positivity * 0.5:
                tokens.append(_POSITIVE_WORDS[rng.randint(0, len(_POSITIVE_WORDS))])
            elif draw > 1.0 - (1.0 - positivity) * 0.5:
                tokens.append(_NEGATIVE_WORDS[rng.randint(0, len(_NEGATIVE_WORDS))])
            else:
                tokens.append(_FILLER_WORDS[rng.randint(0, len(_FILLER_WORDS))])
        documents.append(" ".join(tokens))
        targets.append(positivity * 10.0 + noise * rng.normal())
    return MLTask(
        name=name,
        data_modality="text",
        problem_type="regression",
        context={"X": np.asarray(documents, dtype=object), "y": np.asarray(targets)},
        metadata={"noise": noise},
    )


# ---------------------------------------------------------------------------
# image
# ---------------------------------------------------------------------------

def _striped_image(size, orientation, rng, noise):
    image = np.zeros((size, size))
    period = max(2, size // 4)
    if orientation == 0:
        image[::2, :] = 1.0
        image[:, :] += np.sin(np.arange(size) / period)[None, :] * 0.2
    else:
        image[:, ::2] = 1.0
        image[:, :] += np.sin(np.arange(size) / period)[:, None] * 0.2
    return image + noise * rng.normal(size=(size, size))


def make_image_classification(name="image_classification", n_samples=80, image_size=16,
                              noise=0.3, random_state=None):
    """Classify horizontally vs vertically striped synthetic images."""
    rng = check_random_state(random_state)
    y = rng.randint(0, 2, size=n_samples)
    X = np.stack([_striped_image(image_size, label, rng, noise) for label in y])
    return MLTask(
        name=name,
        data_modality="image",
        problem_type="classification",
        context={"X": X, "y": y},
        metadata={"image_size": image_size},
    )


def make_image_regression(name="image_regression", n_samples=80, image_size=16, noise=0.05,
                          random_state=None):
    """Predict the mean brightness of synthetic blob images."""
    rng = check_random_state(random_state)
    brightness = rng.uniform(0.2, 1.0, size=n_samples)
    X = np.stack([
        level * np.ones((image_size, image_size)) + 0.1 * rng.normal(size=(image_size, image_size))
        for level in brightness
    ])
    y = brightness + noise * rng.normal(size=n_samples)
    return MLTask(
        name=name,
        data_modality="image",
        problem_type="regression",
        context={"X": X, "y": y},
        metadata={"image_size": image_size},
    )


# ---------------------------------------------------------------------------
# graph
# ---------------------------------------------------------------------------

def _stochastic_block_model(n_nodes, n_blocks, p_in, p_out, rng):
    sizes = [n_nodes // n_blocks] * n_blocks
    sizes[0] += n_nodes - sum(sizes)
    probabilities = np.full((n_blocks, n_blocks), p_out)
    np.fill_diagonal(probabilities, p_in)
    graph = nx.stochastic_block_model(sizes, probabilities, seed=int(rng.randint(0, 2 ** 31 - 1)))
    blocks = np.concatenate([[block] * size for block, size in enumerate(sizes)])
    return nx.Graph(graph), blocks


def make_community_detection(name="community_detection", n_nodes=60, n_blocks=3, p_in=0.35,
                             p_out=0.02, random_state=None):
    """Recover planted communities of a stochastic block model."""
    rng = check_random_state(random_state)
    graph, blocks = _stochastic_block_model(n_nodes, n_blocks, p_in, p_out, rng)
    nodes = np.arange(n_nodes)
    return MLTask(
        name=name,
        data_modality="graph",
        problem_type="community_detection",
        context={"X": nodes, "y": blocks, "graph": graph},
        static_keys={"graph"},
        metadata={"n_blocks": n_blocks},
    )


def make_vertex_nomination(name="vertex_nomination", n_nodes=80, n_blocks=2, p_in=0.25,
                           p_out=0.03, random_state=None):
    """Classify nodes into their planted block using structural features."""
    rng = check_random_state(random_state)
    graph, blocks = _stochastic_block_model(n_nodes, n_blocks, p_in, p_out, rng)
    # attach block-dependent degree signal by adding extra edges inside block 0
    block0 = [node for node, block in enumerate(blocks) if block == 0]
    for _ in range(len(block0)):
        u, v = rng.choice(block0, size=2, replace=False)
        graph.add_edge(int(u), int(v))
    nodes = np.arange(n_nodes)
    return MLTask(
        name=name,
        data_modality="graph",
        problem_type="vertex_nomination",
        context={"X": nodes, "y": blocks, "graph": graph},
        static_keys={"graph"},
        metadata={"n_blocks": n_blocks},
    )


def make_link_prediction(name="link_prediction", n_nodes=60, k=6, p_rewire=0.1,
                         n_pairs=160, random_state=None):
    """Predict held-out edges of a small-world graph from topological features."""
    rng = check_random_state(random_state)
    graph = nx.watts_strogatz_graph(n_nodes, k, p_rewire, seed=int(rng.randint(0, 2 ** 31 - 1)))
    edges = list(graph.edges())
    rng.shuffle(edges)
    n_positive = min(n_pairs // 2, len(edges) // 3)
    positives = edges[:n_positive]
    observed = nx.Graph(graph)
    observed.remove_edges_from(positives)

    negatives = []
    nodes = list(graph.nodes())
    existing = set(map(frozenset, graph.edges()))
    while len(negatives) < n_positive:
        u, v = rng.choice(nodes, size=2, replace=False)
        if frozenset((u, v)) not in existing:
            negatives.append((int(u), int(v)))
    pairs = np.asarray([list(p) for p in positives] + [list(p) for p in negatives], dtype=float)
    y = np.asarray([1] * len(positives) + [0] * len(negatives))
    order = rng.permutation(len(y))
    return MLTask(
        name=name,
        data_modality="graph",
        problem_type="link_prediction",
        context={"X": pairs[order], "y": y[order], "graph": observed},
        static_keys={"graph"},
        metadata={"n_nodes": n_nodes},
    )


def make_graph_matching(name="graph_matching", n_nodes=60, n_blocks=3, p_in=0.3, p_out=0.03,
                        n_pairs=160, random_state=None):
    """Decide whether two nodes belong to the same planted community.

    This stands in for the D3M graph matching task type: pairs of entities
    must be matched based on graph structure.
    """
    rng = check_random_state(random_state)
    graph, blocks = _stochastic_block_model(n_nodes, n_blocks, p_in, p_out, rng)
    pairs = []
    labels = []
    nodes = np.arange(n_nodes)
    for _ in range(n_pairs):
        u, v = rng.choice(nodes, size=2, replace=False)
        pairs.append([float(u), float(v)])
        labels.append(int(blocks[u] == blocks[v]))
    return MLTask(
        name=name,
        data_modality="graph",
        problem_type="graph_matching",
        context={"X": np.asarray(pairs), "y": np.asarray(labels), "graph": graph},
        static_keys={"graph"},
        metadata={"n_blocks": n_blocks},
    )


# ---------------------------------------------------------------------------
# anomaly detection (ORION use case; not part of the Table II suite)
# ---------------------------------------------------------------------------

def make_anomaly_signal(name="satellite_telemetry", length=600, n_anomalies=2,
                        anomaly_magnitude=3.0, noise=0.05, random_state=None):
    """A telemetry-like signal with injected anomalies and their true intervals.

    Returns
    -------
    (signal, anomalies):
        ``signal`` is a 2-column array of (timestamp, value) rows suitable
        for the ORION pipeline; ``anomalies`` is the list of true
        ``(start, end)`` intervals in timestamp units.
    """
    rng = check_random_state(random_state)
    t = np.arange(length, dtype=float)
    values = np.sin(t / 20.0) + 0.4 * np.sin(t / 55.0) + noise * rng.normal(size=length)
    anomalies = []
    for i in range(n_anomalies):
        start = int(rng.randint(length // 4, length - 40))
        width = int(rng.randint(5, 20))
        direction = 1.0 if rng.uniform() < 0.5 else -1.0
        values[start:start + width] += direction * anomaly_magnitude
        anomalies.append((float(start), float(start + width - 1)))
    signal = np.column_stack([t, values])
    return signal, sorted(anomalies)
