"""The ML Bazaar Task Suite builder (paper Table II).

``TABLE_II_COUNTS`` records the exact task counts reported in the paper;
:func:`build_task_suite` generates a synthetic suite whose composition
mirrors those proportions at a laptop-friendly scale.
"""

from repro.learners.base import check_random_state
from repro.tasks import synth
from repro.tasks.types import TaskType

#: Task counts per task type as reported in paper Table II (total = 456).
TABLE_II_COUNTS = {
    TaskType("graph", "community_detection"): 2,
    TaskType("graph", "graph_matching"): 9,
    TaskType("graph", "link_prediction"): 1,
    TaskType("graph", "vertex_nomination"): 1,
    TaskType("image", "classification"): 5,
    TaskType("image", "regression"): 1,
    TaskType("multi_table", "classification"): 6,
    TaskType("multi_table", "regression"): 7,
    TaskType("single_table", "classification"): 234,
    TaskType("single_table", "collaborative_filtering"): 4,
    TaskType("single_table", "regression"): 87,
    TaskType("single_table", "timeseries_forecasting"): 35,
    TaskType("text", "classification"): 18,
    TaskType("text", "regression"): 9,
    TaskType("timeseries", "classification"): 37,
}

#: Generator used for each task type.
_GENERATORS = {
    TaskType("graph", "community_detection"): synth.make_community_detection,
    TaskType("graph", "graph_matching"): synth.make_graph_matching,
    TaskType("graph", "link_prediction"): synth.make_link_prediction,
    TaskType("graph", "vertex_nomination"): synth.make_vertex_nomination,
    TaskType("image", "classification"): synth.make_image_classification,
    TaskType("image", "regression"): synth.make_image_regression,
    TaskType("multi_table", "classification"): synth.make_multi_table_classification,
    TaskType("multi_table", "regression"): synth.make_multi_table_regression,
    TaskType("single_table", "classification"): synth.make_single_table_classification,
    TaskType("single_table", "collaborative_filtering"): synth.make_collaborative_filtering,
    TaskType("single_table", "regression"): synth.make_single_table_regression,
    TaskType("single_table", "timeseries_forecasting"): synth.make_timeseries_forecasting,
    TaskType("text", "classification"): synth.make_text_classification,
    TaskType("text", "regression"): synth.make_text_regression,
    TaskType("timeseries", "classification"): synth.make_timeseries_classification,
}


class TaskSuite:
    """An ordered collection of :class:`~repro.tasks.task.MLTask` objects."""

    def __init__(self, tasks):
        self.tasks = list(tasks)
        names = [task.name for task in self.tasks]
        if len(names) != len(set(names)):
            raise ValueError("Task names within a suite must be unique")

    def __len__(self):
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def __getitem__(self, index):
        return self.tasks[index]

    def get(self, name):
        """Return the task with the given name."""
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError("No task named {!r} in the suite".format(name))

    def by_task_type(self):
        """Group tasks by ``(data_modality, problem_type)``."""
        grouped = {}
        for task in self.tasks:
            grouped.setdefault(task.task_type, []).append(task)
        return grouped

    def counts_by_task_type(self):
        """Number of tasks per task type (the Table II breakdown of this suite)."""
        return {task_type: len(tasks) for task_type, tasks in self.by_task_type().items()}

    def filter(self, data_modality=None, problem_type=None):
        """A new suite restricted to a modality and/or problem type."""
        selected = [
            task for task in self.tasks
            if (data_modality is None or task.data_modality == data_modality)
            and (problem_type is None or task.problem_type == problem_type)
        ]
        return TaskSuite(selected)

    def __repr__(self):
        return "TaskSuite(n_tasks={}, n_task_types={})".format(
            len(self.tasks), len(self.by_task_type())
        )


def scaled_counts(total_tasks):
    """Scale the Table II composition down to approximately ``total_tasks`` tasks.

    Every task type keeps at least one task so the suite still covers all
    15 task types.
    """
    if total_tasks < len(TABLE_II_COUNTS):
        raise ValueError(
            "total_tasks must be at least {} to cover every task type".format(len(TABLE_II_COUNTS))
        )
    table_total = sum(TABLE_II_COUNTS.values())
    counts = {}
    for task_type, count in TABLE_II_COUNTS.items():
        counts[task_type] = max(1, int(round(count / table_total * total_tasks)))
    return counts


def build_task_suite(total_tasks=30, counts=None, random_state=0):
    """Build a synthetic task suite mirroring the Table II composition.

    Parameters
    ----------
    total_tasks:
        Approximate number of tasks in the suite (ignored when ``counts``
        is given).
    counts:
        Explicit ``{TaskType: n_tasks}`` mapping.
    random_state:
        Base seed; each task gets a distinct derived seed so suites are
        reproducible.
    """
    rng = check_random_state(random_state)
    counts = counts or scaled_counts(total_tasks)
    counts = {TaskType(*task_type): count for task_type, count in counts.items()}
    unknown = set(counts) - set(_GENERATORS)
    if unknown:
        raise ValueError("No generator available for task types: {}".format(sorted(unknown)))
    tasks = []
    for task_type in sorted(counts, key=lambda tt: (tt.data_modality, tt.problem_type)):
        generator = _GENERATORS[task_type]
        for index in range(counts[task_type]):
            seed = int(rng.randint(0, 2 ** 31 - 1))
            name = "{}/{}_{:03d}".format(task_type.data_modality, task_type.problem_type, index)
            tasks.append(generator(name=name, random_state=seed))
    return TaskSuite(tasks)
