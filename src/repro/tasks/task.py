"""The MLTask abstraction: raw data plus task and dataset metadata.

A task's data lives in a context dict (the same key-value structure the
pipeline execution engine consumes).  Keys listed in ``static_keys`` are
shared resources (a graph, an entity set) that are passed unchanged to
every split; every other key is sample-aligned with the target ``y`` and
is subset by row indices when splitting.
"""

import numpy as np

from repro.learners.base import check_random_state
from repro.learners.metrics import get_metric
from repro.tasks.types import TaskType, default_metric


class MLTask:
    """One ML task: dataset, task-type annotation and evaluation procedure.

    Parameters
    ----------
    name:
        Unique task name within a suite.
    data_modality, problem_type:
        The task type (paper Table II).
    context:
        Dict of ML data objects; must contain ``y`` plus whatever the
        templates for this task type expect (``X``, ``graph``,
        ``entityset``, ...).
    static_keys:
        Keys of ``context`` that are not sample-aligned.
    metric:
        Metric name from :mod:`repro.learners.metrics`; defaults to the
        problem type's standard metric.
    ordered:
        If True, splits preserve temporal order (no shuffling) — used by
        forecasting tasks.
    metadata:
        Free-form dataset metadata (source, difficulty parameters, ...).
    """

    def __init__(self, name, data_modality, problem_type, context, static_keys=(),
                 metric=None, ordered=False, metadata=None):
        if "y" not in context:
            raise ValueError("A task context must contain the target 'y'")
        self.name = name
        self.data_modality = data_modality
        self.problem_type = problem_type
        self.context = dict(context)
        self.static_keys = set(static_keys)
        self.metric = metric or default_metric(problem_type)
        self.ordered = ordered
        self.metadata = dict(metadata or {})
        self._validate_alignment()

    # -- basic properties ---------------------------------------------------------

    @property
    def task_type(self):
        """The ``(data_modality, problem_type)`` pair."""
        return TaskType(self.data_modality, self.problem_type)

    @property
    def n_samples(self):
        """Number of samples (length of the target)."""
        return len(self.context["y"])

    @property
    def sample_keys(self):
        """Context keys that are sample-aligned with the target."""
        return [key for key in self.context if key not in self.static_keys]

    @property
    def data_nbytes(self):
        """Total bytes of the ndarray context values.

        This is the amount of data a zero-copy transport has to publish
        (non-ndarray values cannot be shared and count as zero).
        """
        return sum(
            value.nbytes
            for value in self.context.values()
            if isinstance(value, np.ndarray)
        )

    def _validate_alignment(self):
        n = self.n_samples
        for key in self.sample_keys:
            if len(self.context[key]) != n:
                raise ValueError(
                    "Context key {!r} has length {} but the target has {} samples; "
                    "declare it in static_keys if it is not sample-aligned".format(
                        key, len(self.context[key]), n
                    )
                )

    # -- scoring ---------------------------------------------------------------------

    def score(self, y_true, y_pred):
        """Raw metric value for predictions against true targets."""
        metric_fn, _ = get_metric(self.metric)
        return float(metric_fn(y_true, y_pred))

    @property
    def higher_is_better(self):
        """Whether larger metric values are better."""
        return get_metric(self.metric)[1]

    def normalized_score(self, y_true, y_pred):
        """Metric value oriented so that higher is always better."""
        raw = self.score(y_true, y_pred)
        return raw if self.higher_is_better else -raw

    # -- splitting ---------------------------------------------------------------------

    def subset(self, indices, suffix="subset"):
        """A new task restricted to the given sample indices."""
        indices = np.asarray(indices)
        context = {}
        for key, value in self.context.items():
            if key in self.static_keys:
                context[key] = value
            else:
                context[key] = _take(value, indices)
        return MLTask(
            name="{}[{}]".format(self.name, suffix),
            data_modality=self.data_modality,
            problem_type=self.problem_type,
            context=context,
            static_keys=self.static_keys,
            metric=self.metric,
            ordered=self.ordered,
            metadata=self.metadata,
        )

    def pipeline_data(self, include_target=True):
        """The context as keyword arguments for ``MLPipeline.fit``/``predict``."""
        data = dict(self.context)
        if not include_target:
            data.pop("y", None)
        return data

    def __repr__(self):
        return "MLTask(name={!r}, task_type={}, n_samples={}, metric={!r})".format(
            self.name, self.task_type, self.n_samples, self.metric
        )


def _take(values, indices):
    if isinstance(values, np.ndarray):
        return values[indices]
    return [values[int(i)] for i in indices]


def split_task(task, test_size=0.25, random_state=None):
    """Split a task into train and test tasks.

    Ordered tasks (forecasting) are split temporally: the last
    ``test_size`` fraction of samples becomes the test set.
    """
    n_samples = task.n_samples
    n_test = max(1, int(round(test_size * n_samples))) if isinstance(test_size, float) else int(test_size)
    if n_test >= n_samples:
        raise ValueError("test_size leaves no training samples")
    if task.ordered:
        train_indices = np.arange(n_samples - n_test)
        test_indices = np.arange(n_samples - n_test, n_samples)
    else:
        rng = check_random_state(random_state)
        permutation = rng.permutation(n_samples)
        test_indices = np.sort(permutation[:n_test])
        train_indices = np.sort(permutation[n_test:])
    return task.subset(train_indices, "train"), task.subset(test_indices, "test")


def task_cv_indices(task, n_splits=3, random_state=None):
    """Cross-validation folds of a task as ``(train_indices, val_indices)`` pairs.

    This is the index-level view behind :func:`task_cv_splits`.  The
    execution backends ship these index arrays (a few kilobytes) to the
    workers instead of materialized task subsets, so a worker holding the
    full task in its resident cache can rebuild any fold locally.

    Ordered tasks use expanding-window splits; unordered tasks use shuffled
    K-fold splits.
    """
    n_samples = task.n_samples
    if n_splits < 2:
        raise ValueError("n_splits must be at least 2")
    if n_samples < 2 * n_splits:
        n_splits = max(2, n_samples // 2)

    folds = []
    if task.ordered:
        # expanding window: train on [0, cut), validate on [cut, next_cut)
        fold_edges = np.linspace(n_samples // 2, n_samples, n_splits + 1, dtype=int)
        for i in range(n_splits):
            train_indices = np.arange(fold_edges[i])
            val_indices = np.arange(fold_edges[i], fold_edges[i + 1])
            if len(val_indices) == 0 or len(train_indices) == 0:
                continue
            folds.append((train_indices, val_indices))
    else:
        rng = check_random_state(random_state)
        indices = rng.permutation(n_samples)
        chunks = np.array_split(indices, n_splits)
        for i in range(n_splits):
            val_indices = np.sort(chunks[i])
            train_indices = np.sort(np.concatenate([chunks[j] for j in range(n_splits) if j != i]))
            folds.append((train_indices, val_indices))
    if not folds:
        raise ValueError("Could not build any cross-validation split for task {!r}".format(task.name))
    return folds


def materialize_cv_fold(task, train_indices, val_indices):
    """Build the ``(train_task, val_task)`` pair of one cross-validation fold."""
    return task.subset(train_indices, "cv-train"), task.subset(val_indices, "cv-val")


def task_cv_splits(task, n_splits=3, random_state=None):
    """Cross-validation splits of a task as ``(train_task, val_task)`` pairs.

    Ordered tasks use expanding-window splits; unordered tasks use shuffled
    K-fold splits.
    """
    return [
        materialize_cv_fold(task, train_indices, val_indices)
        for train_indices, val_indices in task_cv_indices(
            task, n_splits=n_splits, random_state=random_state
        )
    ]
