"""Task serialization: save and load tasks as dataset folders.

The original task suite is distributed as a folder per task holding the
raw data plus an annotated task description; AutoBazaar then loads tasks
from disk ("loaders and configuration for ML tasks", paper Section IV-C).
This module reproduces that layout:

``<task_dir>/task.json``
    Task metadata: name, data modality, problem type, metric, ordering,
    static keys and free-form metadata.
``<task_dir>/data.npz``
    Every array-valued context entry.
``<task_dir>/graph.json``
    Node-link JSON of the graph, for graph tasks.
``<task_dir>/entityset.json``
    Tables, indexes and relationships, for relational tasks.
"""

import hashlib
import json
import os

import numpy as np
import networkx as nx

from repro.learners.relational import EntitySet
from repro.tasks.task import MLTask


def save_task(task, directory):
    """Write a task to ``directory`` (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    arrays = {}
    graph = None
    entityset = None
    array_keys = []
    for key, value in task.context.items():
        if isinstance(value, nx.Graph):
            graph = value
        elif isinstance(value, EntitySet):
            entityset = value
        else:
            arrays[key] = np.asarray(value)
            array_keys.append(key)

    description = {
        "name": task.name,
        "data_modality": task.data_modality,
        "problem_type": task.problem_type,
        "metric": task.metric,
        "ordered": task.ordered,
        "static_keys": sorted(task.static_keys),
        "array_keys": sorted(array_keys),
        "has_graph": graph is not None,
        "has_entityset": entityset is not None,
        "metadata": task.metadata,
    }
    with open(os.path.join(directory, "task.json"), "w") as stream:
        json.dump(description, stream, indent=2, default=str)

    np.savez(os.path.join(directory, "data.npz"),
             **{key: value for key, value in arrays.items()})

    if graph is not None:
        payload = nx.node_link_data(graph)
        with open(os.path.join(directory, "graph.json"), "w") as stream:
            json.dump(payload, stream, default=str)

    if entityset is not None:
        payload = {
            "name": entityset.name,
            "entities": {
                name: {column: values.tolist() for column, values in table.items()}
                for name, table in entityset.entities.items()
            },
            "indexes": entityset.indexes,
            "relationships": [
                [r.parent_entity, r.parent_key, r.child_entity, r.child_key]
                for r in entityset.relationships
            ],
        }
        with open(os.path.join(directory, "entityset.json"), "w") as stream:
            json.dump(payload, stream, default=str)
    return directory


def load_task(directory):
    """Load a task previously written by :func:`save_task`."""
    with open(os.path.join(directory, "task.json")) as stream:
        description = json.load(stream)

    context = {}
    data_path = os.path.join(directory, "data.npz")
    with np.load(data_path, allow_pickle=True) as data:
        for key in description["array_keys"]:
            context[key] = data[key]

    if description.get("has_graph"):
        with open(os.path.join(directory, "graph.json")) as stream:
            payload = json.load(stream)
        graph = nx.node_link_graph(payload)
        # node-link JSON stringifies integer node labels in some versions;
        # restore integers where possible so node ids match the saved arrays
        if all(isinstance(node, str) and node.lstrip("-").isdigit() for node in graph.nodes):
            graph = nx.relabel_nodes(graph, {node: int(node) for node in graph.nodes})
        context["graph"] = graph

    if description.get("has_entityset"):
        with open(os.path.join(directory, "entityset.json")) as stream:
            payload = json.load(stream)
        entityset = EntitySet(payload.get("name", "entityset"))
        for name, table in payload["entities"].items():
            columns = {column: np.asarray(values) for column, values in table.items()}
            entityset.add_entity(name, columns, index=payload["indexes"][name])
        for parent_entity, parent_key, child_entity, child_key in payload["relationships"]:
            entityset.add_relationship(parent_entity, parent_key, child_entity, child_key)
        context["entityset"] = entityset

    return MLTask(
        name=description["name"],
        data_modality=description["data_modality"],
        problem_type=description["problem_type"],
        context=context,
        static_keys=set(description.get("static_keys", [])),
        metric=description.get("metric"),
        ordered=description.get("ordered", False),
        metadata=description.get("metadata"),
    )


def task_fingerprint(directory):
    """Stable content hash of a saved task folder.

    Hashes every regular file (name plus bytes) in sorted order.  A
    checkpointed run records the fingerprint of its saved task copy in the
    run manifest, so a resume can detect that the task payload was swapped
    or corrupted since the run started — resuming against different data
    would silently diverge from the recorded stream.
    """
    hasher = hashlib.sha256()
    for name in sorted(os.listdir(directory)):
        path = os.path.join(directory, name)
        if not os.path.isfile(path):
            continue
        hasher.update(name.encode("utf-8"))
        hasher.update(b"\0")
        with open(path, "rb") as stream:
            for chunk in iter(lambda: stream.read(1 << 16), b""):
                hasher.update(chunk)
        hasher.update(b"\0")
    return hasher.hexdigest()


def save_suite(suite, directory):
    """Save every task of a suite into one folder per task; returns the index file path."""
    os.makedirs(directory, exist_ok=True)
    index = []
    for position, task in enumerate(suite):
        task_dir = os.path.join(directory, "task_{:03d}".format(position))
        save_task(task, task_dir)
        index.append({"directory": os.path.basename(task_dir), "name": task.name})
    index_path = os.path.join(directory, "index.json")
    with open(index_path, "w") as stream:
        json.dump(index, stream, indent=2)
    return index_path


def load_suite(directory):
    """Load a suite previously written by :func:`save_suite`."""
    from repro.tasks.suite import TaskSuite

    with open(os.path.join(directory, "index.json")) as stream:
        index = json.load(stream)
    tasks = [load_task(os.path.join(directory, entry["directory"])) for entry in index]
    return TaskSuite(tasks)
