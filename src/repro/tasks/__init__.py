"""The ML task suite (paper Section III-C).

A *task* bundles a raw dataset, its task-type annotation (data modality +
problem type) and the evaluation metric.  The original suite contains 456
externally hosted datasets; this package generates synthetic tasks with
the same 15 task types and the same modality/problem-type composition
(paper Table II), scaled to run on a laptop.
"""

from repro.tasks.types import DATA_MODALITIES, PROBLEM_TYPES, TASK_TYPES, TaskType
from repro.tasks.task import MLTask, split_task, task_cv_splits
from repro.tasks.suite import TABLE_II_COUNTS, TaskSuite, build_task_suite
from repro.tasks.io import load_suite, load_task, save_suite, save_task, task_fingerprint
from repro.tasks import synth

__all__ = [
    "TaskType",
    "TASK_TYPES",
    "DATA_MODALITIES",
    "PROBLEM_TYPES",
    "MLTask",
    "split_task",
    "task_cv_splits",
    "TaskSuite",
    "build_task_suite",
    "TABLE_II_COUNTS",
    "save_task",
    "load_task",
    "save_suite",
    "load_suite",
    "task_fingerprint",
    "synth",
]
