"""ML task types: combinations of data modality and problem type (paper Table II)."""

from collections import namedtuple

#: A task type is a (data modality, problem type) pair.
TaskType = namedtuple("TaskType", ["data_modality", "problem_type"])

#: The 15 task types covered by the ML Bazaar Task Suite (paper Table II).
TASK_TYPES = (
    TaskType("graph", "community_detection"),
    TaskType("graph", "graph_matching"),
    TaskType("graph", "link_prediction"),
    TaskType("graph", "vertex_nomination"),
    TaskType("image", "classification"),
    TaskType("image", "regression"),
    TaskType("multi_table", "classification"),
    TaskType("multi_table", "regression"),
    TaskType("single_table", "classification"),
    TaskType("single_table", "collaborative_filtering"),
    TaskType("single_table", "regression"),
    TaskType("single_table", "timeseries_forecasting"),
    TaskType("text", "classification"),
    TaskType("text", "regression"),
    TaskType("timeseries", "classification"),
)

#: Data modalities appearing in the suite.
DATA_MODALITIES = tuple(sorted({task_type.data_modality for task_type in TASK_TYPES}))

#: Problem types appearing in the suite.
PROBLEM_TYPES = tuple(sorted({task_type.problem_type for task_type in TASK_TYPES}))

#: Default evaluation metric per problem type (all oriented so that the
#: AutoBazaar search can maximize a normalized score).
DEFAULT_METRICS = {
    "classification": "f1_macro",
    "regression": "r2",
    "timeseries_forecasting": "r2",
    "collaborative_filtering": "r2",
    "community_detection": "adjusted_rand",
    "graph_matching": "f1_macro",
    "link_prediction": "f1_macro",
    "vertex_nomination": "f1_macro",
}


def default_metric(problem_type):
    """The default evaluation metric name for a problem type."""
    try:
        return DEFAULT_METRICS[problem_type]
    except KeyError:
        raise ValueError(
            "Unknown problem type {!r}; expected one of {}".format(
                problem_type, sorted(DEFAULT_METRICS)
            )
        ) from None
