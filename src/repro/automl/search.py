"""Pipeline search and evaluation (paper Algorithm 2).

Given an ML task and a computational budget, AutoBazaar loads the candidate
templates for the task type, creates one tuner per template and a single
selector over the templates, and runs an asynchronous **sliding-window**
scheduler over the configured
:class:`~repro.automl.backends.ExecutionBackend`:

* **propose & dispatch** — keep exactly ``n_pending`` evaluations in
  flight: whenever the window has a free slot, select a template, draw one
  hyperparameter configuration (pending proposals use the constant-liar
  strategy, see :mod:`repro.tuning.tuners`) and submit it immediately,
* **collect** — block for *one* completed evaluation at a time
  (``backend.collect_one()``) and park it in a reorder buffer,
* **report** — file buffered results back into the tuners, the selector
  and the store strictly *in proposal order*; every reported result frees
  a window slot, so its replacement is proposed with the constant-liar
  bookkeeping updated incrementally per completion rather than per round.

Reporting in proposal order makes the record stream deterministic
regardless of which worker finished first, with one scheduling corollary:
the proposal of candidate ``k`` may only consume the reported results of
candidates ``0 .. k - n_pending``, so a straggler blocks the window only
after ``n_pending - 1`` newer evaluations have been proposed past it —
unlike the historical round-barrier loop (kept as ``schedule="barrier"``
for comparison benchmarks), which idled every worker while a round
drained behind its slowest member.

When the budget is exhausted, the best pipeline is refitted on the full
training data and scored on the held-out test partition.
"""

import shutil
import tempfile
import time
from collections import deque

import numpy as np

from repro.automl.backends import (
    CandidateFuture,
    EvaluationCandidate,
    EvaluationOutcome,
    PruneController,
    PrunedEvaluation,
    _cache_info_fields,
    _format_error,
    get_backend,
)
from repro.automl.catalog import default_template_catalog
from repro.automl.prefix_cache import (
    PREFIX_CACHE_MODES,
    fold_data_key,
    make_prefix_cache_config,
    sweep_orphan_cache_tmp,
    task_content_digest,
)
from repro.explorer.store import normalize_value
from repro.tasks.task import materialize_cv_fold, split_task, task_cv_indices
from repro.telemetry.events import capture_event
from repro.telemetry.sink import TelemetrySink, activate_sink, deactivate_sink
from repro.tuning.selectors import UCB1Selector
from repro.tuning.tuners import GPEiTuner, UniformTuner


class ReplayMismatchError(RuntimeError):
    """A resumed search diverged from the recorded stream it is replaying.

    Raised when the candidate regenerated at some iteration does not match
    the record persisted for that iteration — the store was produced under
    a different configuration/seed, the run directory was tampered with,
    or a nondeterministic component leaked into the proposal path.
    """


def _verify_replay_candidate(candidate, recorded):
    """Check a regenerated candidate against its persisted record."""
    problems = []
    iteration = recorded.get("iteration")
    if iteration is not None and int(iteration) != candidate.iteration:
        problems.append("iteration {} != recorded {}".format(candidate.iteration, iteration))
    if recorded.get("template_name") != candidate.template_name:
        problems.append("template {!r} != recorded {!r}".format(
            candidate.template_name, recorded.get("template_name")))
    if bool(recorded.get("is_default", False)) != candidate.is_default:
        problems.append("is_default {} != recorded {}".format(
            candidate.is_default, recorded.get("is_default")))
    recorded_params = recorded.get("hyperparameters")
    if recorded_params is not None:
        proposed = normalize_value(
            {str(key): value for key, value in candidate.hyperparameters.items()}
        )
        if proposed != recorded_params:
            problems.append("hyperparameters {!r} != recorded {!r}".format(
                proposed, recorded_params))
    if problems:
        raise ReplayMismatchError(
            "Resumed search diverged from the stored record stream at iteration {}: {}. "
            "The store was written under a different configuration or seed, or was "
            "modified since.".format(candidate.iteration, "; ".join(problems))
        )


class EvaluationRecord:
    """One scored pipeline (one row of the paper's 2.5-million-pipeline dataset)."""

    def __init__(self, task_name, template_name, hyperparameters, score, raw_score,
                 iteration, elapsed, error=None, is_default=False, pruned=False):
        self.task_name = task_name
        self.template_name = template_name
        self.hyperparameters = dict(hyperparameters)
        self.score = score
        self.raw_score = raw_score
        self.iteration = iteration
        self.elapsed = elapsed
        self.error = error
        self.is_default = is_default
        self.pruned = bool(pruned)

    @property
    def failed(self):
        """Whether the pipeline failed to evaluate (including pruned candidates)."""
        return self.error is not None

    def to_dict(self):
        """Serialize to a flat dict (the document stored by piex)."""
        return {
            "task_name": self.task_name,
            "template_name": self.template_name,
            "hyperparameters": {str(key): value for key, value in self.hyperparameters.items()},
            "score": self.score,
            "raw_score": self.raw_score,
            "iteration": self.iteration,
            "elapsed": self.elapsed,
            "error": self.error,
            "is_default": self.is_default,
            "pruned": self.pruned,
        }

    def __repr__(self):
        return "EvaluationRecord(template={!r}, score={}, iteration={})".format(
            self.template_name, self.score, self.iteration
        )


class SearchResult:
    """Outcome of one AutoBazaar search run on one task."""

    def __init__(self, task_name, best_template, best_hyperparameters, best_score,
                 best_pipeline, records, test_score=None, elapsed=0.0, cache_stats=None,
                 fleet_stats=None, plane_counts=None, supervisor_stats=None):
        self.task_name = task_name
        self.best_template = best_template
        self.best_hyperparameters = best_hyperparameters
        self.best_score = best_score
        self.best_pipeline = best_pipeline
        self.records = list(records)
        self.test_score = test_score
        self.elapsed = elapsed
        self.cache_stats = cache_stats
        #: Per-tenant fair-share/data-plane counters when the search ran on
        #: a :class:`~repro.automl.fleet.TenantBackend`; ``None`` otherwise.
        self.fleet_stats = fleet_stats
        #: Tasks shipped per transport (``{"shm": n, "pickle": n}``) when
        #: the search ran on a process-boundary backend; ``None`` otherwise.
        self.plane_counts = plane_counts
        #: Fault-tolerance counters (worker deaths, fold retries/timeouts,
        #: pool rebuilds) when the search ran on a supervised process
        #: pool; ``None`` otherwise.
        self.supervisor_stats = supervisor_stats

    @property
    def n_evaluated(self):
        """Number of pipelines evaluated (including failures)."""
        return len(self.records)

    @property
    def n_failed(self):
        """Number of pipelines that failed to evaluate."""
        return sum(1 for record in self.records if record.failed)

    @property
    def n_pruned(self):
        """Number of candidates discarded mid-evaluation by early-discard pruning."""
        return sum(1 for record in self.records if getattr(record, "pruned", False))

    @property
    def default_score(self):
        """Score of the first successfully evaluated default pipeline."""
        for record in self.records:
            if record.is_default and not record.failed:
                return record.score
        return None

    @property
    def pipelines_per_second(self):
        """Throughput of the search (pipelines scored per second)."""
        if self.elapsed <= 0:
            return float("nan")
        return self.n_evaluated / self.elapsed

    def best_score_at_checkpoints(self, fractions=(0.25, 0.5, 0.75, 1.0)):
        """Best score seen after each fraction of the budget (paper's checkpoint view).

        The paper selects the best pipeline at 10/30/60/120-minute
        checkpoints; the in-process analogue uses fractions of the
        iteration budget.
        """
        checkpoints = []
        for fraction in fractions:
            cutoff = max(1, int(round(fraction * len(self.records))))
            seen = [r.score for r in self.records[:cutoff] if not r.failed]
            checkpoints.append(max(seen) if seen else None)
        return checkpoints

    def improvement_sigmas(self):
        """Improvement of the best over the first default, in std-devs of all scores.

        This is the per-task quantity plotted in paper Figure 6.
        """
        scores = [record.score for record in self.records if not record.failed]
        default = self.default_score
        if default is None or self.best_score is None or len(scores) < 2:
            return 0.0
        spread = float(np.std(scores))
        if spread == 0.0:
            return 0.0
        return float((self.best_score - default) / spread)

    def __repr__(self):
        return ("SearchResult(task={!r}, best_template={!r}, best_score={}, "
                "n_evaluated={})".format(self.task_name, self.best_template,
                                         self.best_score, self.n_evaluated))


def evaluate_pipeline(template, hyperparameters, train_task, test_task,
                      prefix_cache=None, data_key=None):
    """Fit a template's pipeline on one task and score it on another.

    Returns the normalized (higher-is-better) score and the raw metric
    value.  With a ``prefix_cache``, fitted preprocessing prefixes are
    looked up by content address instead of refit (see
    :mod:`repro.automl.prefix_cache`); ``data_key`` identifies the
    training data and defaults to its content digest.
    """
    pipeline = template.build_pipeline(hyperparameters)
    if prefix_cache is not None:
        if data_key is None:
            data_key = task_content_digest(train_task)
        pipeline.fit(prefix_cache=prefix_cache, data_key=data_key,
                     **train_task.pipeline_data())
    else:
        pipeline.fit(**train_task.pipeline_data())
    predictions = pipeline.predict(**test_task.pipeline_data(include_target=False))
    y_true = test_task.context["y"]
    raw = test_task.score(y_true, predictions)
    normalized = raw if test_task.higher_is_better else -raw
    return normalized, raw, pipeline


def cross_validate_template(template, hyperparameters, task, n_splits=3, random_state=None,
                            prefix_cache=None, pruner=None, collect=None):
    """Mean normalized cross-validation score of a template configuration on a task.

    The fold sequence and scores are identical to the historical
    implementation; the optional knobs bolt the serial backend onto the
    shared evaluation machinery:

    * ``prefix_cache`` memoizes fitted preprocessing prefixes per fold,
    * ``pruner`` (a :class:`~repro.automl.backends.PruneController`)
      raises :class:`~repro.automl.backends.PrunedEvaluation` as soon as
      the optimistic bound over the remaining folds cannot beat the task
      best minus the margin,
    * ``collect`` (a dict) accumulates the per-fold cache counters.
    """
    folds = task_cv_indices(task, n_splits=n_splits, random_state=random_state)
    scores = []
    raw_scores = []
    for fold_index, (train_indices, val_indices) in enumerate(folds):
        # telemetry capture: this function runs in the coordinator (serial
        # backend) or as a worker would, so it records both terminal fold
        # events itself; every capture_event is a no-op unless a sink is on
        fold_started = time.time()
        capture_event("fold_started", fold=fold_index)
        train_task, val_task = materialize_cv_fold(task, train_indices, val_indices)
        # cache kwargs only travel when caching is on, preserving the
        # historical evaluate_pipeline call signature for the default path
        extra = {}
        if prefix_cache is not None:
            extra.update(prefix_cache=prefix_cache,
                         data_key=fold_data_key(task, train_indices))
        try:
            normalized, raw, pipeline = evaluate_pipeline(
                template, hyperparameters, train_task, val_task, **extra
            )
        except Exception as failure:
            capture_event(
                "fold_finished", fold=fold_index, score=None, raw_score=None,
                error=_format_error(failure), elapsed=time.time() - fold_started,
            )
            raise
        scores.append(normalized)
        raw_scores.append(raw)
        fold_cache = {}
        if collect is not None:
            for field, value in _cache_info_fields(pipeline).items():
                collect[field] = collect.get(field, 0) + value
                fold_cache[field] = value
        capture_event(
            "fold_finished", fold=fold_index, score=normalized, raw_score=raw,
            error=None, elapsed=time.time() - fold_started,
            cache_hits=fold_cache.get("cache_hits", 0),
            cache_misses=fold_cache.get("cache_misses", 0),
        )
        if pruner is not None:
            pruner.observe_fold(normalized)
            reason = pruner.assess(scores, len(folds))
            if reason is not None:
                capture_event(
                    "prune_decision", reason=reason,
                    n_completed=len(scores), n_folds=len(folds),
                )
                raise PrunedEvaluation(reason)
    return float(np.mean(scores)), float(np.mean(raw_scores))


class AutoBazaarSearch:
    """The AutoBazaar pipeline search engine (paper Algorithm 2).

    Parameters
    ----------
    templates:
        Candidate templates.  When omitted they are loaded from the default
        template catalog based on the task's type.
    tuner_class:
        Tuner used for every template (default GP-EI, the paper's default).
    selector_class:
        Selector over templates (default UCB1).
    n_splits:
        Cross-validation folds used to score candidate pipelines.
    store:
        Optional :class:`~repro.explorer.store.PipelineStore`; every
        evaluation record is appended to it.
    warm_start_store:
        Optional :class:`~repro.explorer.store.PipelineStore` holding
        evaluations from *previous* tasks.  When given, tuners are
        warm-started from the historical configurations of each template
        (the meta-learning extension anticipated in the paper's
        conclusion).
    backend:
        Execution backend evaluating the proposed pipelines: ``"serial"``
        (default), ``"thread"`` or ``"process"``, or any
        :class:`~repro.automl.backends.ExecutionBackend` instance.  The
        serial backend reproduces the historical single-threaded loop
        record-for-record; the pool backends dispatch individual
        cross-validation folds to workers (work-stealing over folds, so
        cheap pipelines do not wait behind expensive stragglers).
    workers:
        Worker count for the pool backends (default: the CPU count).
    n_pending:
        Number of proposed candidates kept in flight at once (default 1).
        With ``n_pending > 1`` the sliding-window scheduler refills the
        window on every completion, using the constant-liar strategy:
        each pending configuration is treated as if it had scored the
        worst score observed so far, which pushes subsequent proposals
        away from the pending ones, and the selector counts pending
        evaluations toward each template's trial count.  Results are
        always reported back in proposal order, so for a fixed
        ``n_pending`` the produced records are identical across backends —
        provided the pipelines themselves are deterministic: estimators
        must be explicitly seeded (``random_state`` fixed via template
        ``init_params``); catalog defaults leave it ``None``, which draws
        from the process-global RNG and varies run-to-run on any backend.
    schedule:
        ``"window"`` (default) runs the sliding-window scheduler: one
        completion is collected at a time and its replacement proposed
        immediately, so a straggling evaluation only stalls the search
        once the window has fully slid past it.  ``"barrier"`` restores
        the historical round-based loop — propose ``n_pending``, drain
        them all, repeat — kept for A/B benchmarks of the skew problem.
        Both schedules produce deterministic (but different) record
        streams; the cross-backend equivalence guarantee holds for each.
    task_cache_size:
        Worker-resident dataset cache knob, forwarded to the process
        backend (see :class:`~repro.automl.backends.ProcessBackend`);
        ``None`` keeps the backend default, ``0`` disables the cache.
    data_plane:
        Task transport for the process backend: ``"shm"`` publishes
        pure-ndarray tasks into zero-copy shared-memory segments that
        workers map read-only, ``"pickle"`` forces the historical on-disk
        pickle hand-off (see :mod:`repro.automl.shm`).  ``None`` (default)
        keeps the backend default (``"shm"`` with automatic per-task
        pickle fallback).  Rejected for backends without a process
        boundary, like ``task_cache_size``.
    batch_eval:
        When True, candidates proposed in the same scheduler burst that
        share a template are submitted together and evaluated as one
        fused batch per fold (shared preprocessing prefix; amenable
        estimators fit the whole hyperparameter batch in one call — see
        :mod:`repro.automl.batch_eval`).  Scores, error strings and the
        reported record order are identical to looped evaluation; only
        the grouping of work changes.  The ``"barrier"`` schedule batches
        whole rounds; the ``"window"`` schedule only batches the initial
        window fill (afterwards slots free up one at a time), so pair
        batching with ``schedule="barrier"`` for the full effect.
    estimator_seed:
        When set, every loaded template is cloned with this value pinned
        as the ``random_state`` of each stochastic primitive (see
        :func:`~repro.automl.catalog.seed_templates`), making pipeline
        evaluation a pure function of the configuration.  Checkpointed
        runs set it so that a resumed search reproduces the uninterrupted
        run's scores exactly; the default ``None`` keeps the catalog's
        unseeded behaviour.
    prefix_cache:
        Fitted-prefix cache mode: ``"off"`` (default), ``"mem"`` (a
        per-process LRU of fitted preprocessing prefixes) or ``"disk"``
        (the LRU backed by an on-disk content-addressed store shared by
        process-backend workers).  See :mod:`repro.automl.prefix_cache`.
        Caching never changes scores for deterministic (seeded)
        pipelines — cached artifacts are addressed by the content of the
        training fold and the full configured prefix.
    cache_dir:
        Directory of the shared disk tier (mode ``"disk"``).  When
        omitted, each ``search()`` call creates a private temporary
        directory and removes it on exit; pass an explicit directory to
        share fitted prefixes across searches.
    prune_margin:
        Enables fold-level early-discard pruning when set (a
        non-negative float): after each completed fold, a candidate
        whose optimistic estimate over the remaining folds (best
        observed single-fold score standing in for each) falls short of
        the task best minus this margin is cancelled and recorded as a
        pruned failure.  The estimate is a heuristic, not a sound bound
        — with a tight margin it can discard a candidate whose remaining
        folds would have won — and pruning decisions depend on
        fold-completion timing, so the bit-identical cross-backend
        record stream is traded for throughput.  ``0.0`` prunes most
        aggressively; larger margins are safer.  Leave it ``None`` (off)
        when determinism or exhaustive evaluation matters.
    telemetry:
        Structured-event recording (see :mod:`repro.telemetry`): ``None``
        (off, the default), a :class:`~repro.telemetry.sink.TelemetrySink`
        instance to record into a caller-owned sink (shared across
        searches and tenants; never closed here), or a directory path —
        a sink is opened there for the duration of each ``search()`` call
        and closed on exit.  The recorded stream replays with
        ``python -m repro.telemetry <dir>``.
    fold_timeout, max_fold_retries:
        Fault-tolerance knobs of the process backend (see
        :class:`~repro.automl.backends.ProcessBackend`).  Setting either
        runs folds on a supervised worker pool: a fold past
        ``fold_timeout`` seconds gets its worker killed and is retried, a
        crashed worker is respawned with its in-flight fold requeued, and
        a fold that keeps crashing workers (``max_fold_retries``
        exhausted) is recorded as a failed evaluation.  Folds are pure,
        so retries leave the record stream bit-identical to a fault-free
        run.  Rejected for backends without a process boundary.
    """

    def __init__(self, templates=None, tuner_class=GPEiTuner, selector_class=UCB1Selector,
                 n_splits=3, random_state=None, store=None, catalog=None,
                 warm_start_store=None, backend="serial", workers=None, n_pending=1,
                 schedule="window", task_cache_size=None, estimator_seed=None,
                 prefix_cache="off", cache_dir=None, prune_margin=None,
                 data_plane=None, batch_eval=False, telemetry=None,
                 fold_timeout=None, max_fold_retries=None):
        if schedule not in ("window", "barrier"):
            raise ValueError(
                "Unknown schedule {!r}; expected 'window' or 'barrier'".format(schedule)
            )
        self.templates = templates
        self.tuner_class = tuner_class
        self.selector_class = selector_class
        self.n_splits = n_splits
        self.random_state = random_state
        self.store = store
        self.catalog = catalog or default_template_catalog()
        self.warm_start_store = warm_start_store
        self.backend = backend
        self.workers = workers
        self.n_pending = max(1, int(n_pending))
        self.schedule = schedule
        self.task_cache_size = task_cache_size
        self.estimator_seed = estimator_seed
        self.prefix_cache = prefix_cache or "off"
        if self.prefix_cache not in PREFIX_CACHE_MODES:
            raise ValueError(
                "Unknown prefix-cache mode {!r}; expected one of {}".format(
                    self.prefix_cache, PREFIX_CACHE_MODES
                )
            )
        self.cache_dir = cache_dir
        self.prune_margin = prune_margin
        self.data_plane = data_plane
        self.batch_eval = bool(batch_eval)
        self.telemetry = telemetry
        self.fold_timeout = fold_timeout
        self.max_fold_retries = max_fold_retries

    # -- setup ----------------------------------------------------------------------

    def _load_templates(self, task):
        from repro.automl.catalog import seed_templates
        from repro.core.template import Hypertemplate

        if self.templates is not None:
            candidates = list(self.templates)
        else:
            candidates = self.catalog.get(task.data_modality, task.problem_type)
        templates = []
        for candidate in candidates:
            if isinstance(candidate, Hypertemplate):
                # hypertemplates contribute one selectable template per
                # combination of their conditional hyperparameters (Figure 4)
                templates.extend(candidate.derive_templates())
            else:
                templates.append(candidate)
        if self.estimator_seed is not None:
            templates = seed_templates(templates, self.estimator_seed)
        return templates

    def _build_tuners(self, templates, task):
        from repro.tuning.meta import WarmStartGPTuner, harvest_history

        tuners = {}
        for template in templates:
            space = template.get_tunable_hyperparameters()
            if not space:
                tuners[template.name] = None  # nothing to tune
                continue
            if self.warm_start_store is not None:
                history = harvest_history(
                    self.warm_start_store, template.name, exclude_task=task.name
                )
                tuners[template.name] = WarmStartGPTuner(
                    space, history=history, random_state=self.random_state
                )
            else:
                tuners[template.name] = self.tuner_class(space, random_state=self.random_state)
        return tuners

    # -- main loop ------------------------------------------------------------------

    def search(self, task, budget=20, test_task=None, holdout=0.25, max_seconds=None,
               checkpoint=None, replay=None, elapsed_offset=0.0):
        """Search for the best pipeline for ``task`` within ``budget`` evaluations.

        Parameters
        ----------
        task:
            The training task.  When ``test_task`` is omitted, ``holdout``
            of the task is split off as the test partition.
        budget:
            Number of pipeline evaluations.
        max_seconds:
            Optional wall-clock limit (the paper's per-task budget is a
            2-hour wall-clock limit); the loop stops at whichever of the
            two budgets is exhausted first.
        checkpoint:
            Optional observer with an ``after_report(state)`` method (see
            :class:`~repro.automl.checkpoint.CheckpointManager`), called
            after every reported record — strictly after the record was
            filed into the store/tuners/selector and strictly before the
            next proposal — with a snapshot-able view of the search state.
        replay:
            Optional sequence of previously recorded evaluation documents
            (:meth:`EvaluationRecord.to_dict` dicts), one per iteration
            from 0.  Iterations below ``len(replay)`` re-run the *proposal*
            path (consuming the RNG and updating tuner/selector pending
            state exactly as the original run did) but skip evaluation,
            substituting the recorded outcome — so a resumed search
            reconstructs the exact tuner/selector/RNG state and then
            continues with live evaluations, emitting the identical
            remaining record stream.  Replayed records are not re-added to
            the store.
        elapsed_offset:
            Seconds already spent by a previous incarnation of this search
            (resume); counted against ``max_seconds`` and included in the
            result's ``elapsed``.
        """
        # resolve the telemetry sink for this search: a TelemetrySink is
        # caller-owned and shared; a path string opens a sink owned (and
        # closed) by this call.  The sink is also installed as the
        # process-global active sink so context-free emit points (fleet
        # scheduler, shm plane) reach it — refcounted, so concurrent
        # tenant searches sharing one sink compose.
        owned_sink = None
        sink = self.telemetry
        if sink is not None and not isinstance(sink, TelemetrySink):
            owned_sink = TelemetrySink(str(sink))
            sink = owned_sink
        if sink is not None:
            activate_sink(sink)
        try:
            return self._search(
                task, budget, test_task, holdout, max_seconds, checkpoint,
                replay, elapsed_offset, sink,
            )
        finally:
            if sink is not None:
                deactivate_sink(sink)
                if owned_sink is not None:
                    owned_sink.close()

    def _search(self, task, budget, test_task, holdout, max_seconds, checkpoint,
                replay, elapsed_offset, sink):
        start = time.time() - float(elapsed_offset)
        if test_task is None:
            task, test_task = split_task(task, test_size=holdout, random_state=self.random_state)

        templates = self._load_templates(task)
        if not templates:
            raise ValueError("No templates available for task {!r}".format(task.name))
        template_index = {template.name: template for template in templates}
        tuners = self._build_tuners(templates, task)
        selector = self.selector_class(
            [template.name for template in templates], random_state=self.random_state
        )
        template_scores = {template.name: [] for template in templates}

        records = []
        best_score = None
        best_template = None
        best_hyperparameters = None
        defaults_pending = [template.name for template in templates]

        backend = get_backend(
            self.backend, workers=self.workers, task_cache_size=self.task_cache_size,
            data_plane=self.data_plane, fold_timeout=self.fold_timeout,
            max_fold_retries=self.max_fold_retries,
        )
        # a backend instance supplied by the caller outlives this search;
        # one resolved from a name is owned here and shut down on exit
        owns_backend = backend is not self.backend
        if not owns_backend:
            # a previous search on this backend may have aborted mid-collect
            backend.drain()

        owned_cache_dir = None
        cache_config = None
        if self.prefix_cache != "off":
            cache_dir = self.cache_dir
            if self.prefix_cache == "disk" and cache_dir is None:
                owned_cache_dir = tempfile.mkdtemp(prefix="repro-prefix-cache-")
                cache_dir = owned_cache_dir
            elif cache_dir is not None:
                # a shared, reused directory may hold temp files orphaned
                # by killed writers of earlier runs; sweep them up front
                sweep_orphan_cache_tmp(cache_dir)
            cache_config = make_prefix_cache_config(self.prefix_cache, cache_dir=cache_dir)
        cache_totals = {"hits": 0, "misses": 0, "bytes_written": 0}

        pruner = None
        if self.prune_margin is not None:
            pruner = PruneController(self.prune_margin)
            if self.store is not None:
                # seed the pruning threshold from everything the store
                # already holds for this task (e.g. a resumed or
                # warm-started run), so early candidates are accountable
                # to history, not just to this run's own reports.  The
                # history is matched by task name only: scores from a run
                # with a different CV configuration are not strictly
                # comparable, so choose the margin with the store's
                # provenance in mind (a generous margin neutralizes an
                # optimistic historical best)
                history = self.store.scores_for_task(task.name)
                if history:
                    pruner.update_task_best(max(history))

        budget = int(budget)
        proposed = 0
        next_report = 0
        reorder = {}  # iteration -> completed future, awaiting in-order reporting
        replay = list(replay or ())
        replay_count = len(replay)
        replayed_queue = deque()  # completed-instantly futures for replayed iterations
        submit_buffer = []  # candidates awaiting a fused submit_many (batch_eval)

        # the tenant id keying this search's events: the fleet's
        # per-tenant backend carries its name, every other backend is the
        # single "default" tenant
        tenant = getattr(backend, "tenant_name", None) or "default"
        if sink is not None:
            sink.emit(
                "search_started", tenant=tenant, task=task.name, budget=budget,
                backend=repr(backend), n_splits=self.n_splits,
                schedule=self.schedule, replay_count=replay_count,
            )

        def flush_submissions():
            # hand every candidate proposed in this scheduler burst to the
            # backend at once, so same-template ones fuse into batched
            # evaluation passes.  Futures complete through the backend's
            # normal completion machinery, and the reorder buffer already
            # reports strictly in proposal order, so batching cannot
            # change the record stream.
            if not submit_buffer:
                return
            candidates = list(submit_buffer)
            submit_buffer.clear()
            if len(candidates) == 1:
                backend.submit(candidates[0])
            else:
                backend.submit_many(candidates)

        def deadline_passed():
            # checked before every proposal, so the serial backend stops
            # mid-window like the historical loop; pool backends overshoot
            # by at most the work already in flight.  Replay proposals are
            # exempt: they cost no evaluation time and must all run, or a
            # resumed run whose elapsed_offset already reached max_seconds
            # would reconstruct nothing and return an empty result instead
            # of the records it durably holds.
            if proposed < replay_count:
                return False
            return max_seconds is not None and time.time() - start > max_seconds

        def propose_and_submit():
            # The first several proposals score each template once with
            # defaults; afterwards the selector picks a template and its
            # tuner proposes a configuration.  Pending bookkeeping (the
            # constant liar) steers later proposals away from the ones
            # still in flight.
            nonlocal proposed
            if defaults_pending:
                template_name = defaults_pending.pop(0)
                is_default = True
            else:
                template_name = selector.select(template_scores)
                is_default = False
            template = template_index[template_name]
            tuner = tuners[template_name]

            if is_default or tuner is None:
                hyperparameters = template.default_hyperparameters()
            else:
                propose_started = time.time()
                hyperparameters = tuner.propose()
                if sink is not None:
                    sink.emit(
                        "tuner_propose", tenant=tenant, iteration=proposed,
                        template=template_name, elapsed=time.time() - propose_started,
                    )
            if tuner is not None:
                tuner.add_pending(hyperparameters)
            selector.note_pending(template_name)

            candidate = EvaluationCandidate(
                iteration=proposed,
                template=template,
                hyperparameters=hyperparameters,
                task=task,
                n_splits=self.n_splits,
                random_state=self.random_state,
                template_name=template_name,
                is_default=is_default,
                cache_config=cache_config,
                pruner=pruner,
                telemetry=(sink, tenant) if sink is not None else None,
            )
            proposed += 1
            if candidate.iteration < replay_count:
                # resume replay: the proposal above consumed the RNG and
                # registered its pending bookkeeping exactly like the
                # original run; substitute the recorded outcome instead of
                # re-evaluating.  Replayed futures complete instantly and
                # are collected FIFO — the same semantics as the serial
                # backend — so the propose/report interleave (and with it
                # every subsequent RNG draw) is identical to the original.
                recorded = replay[candidate.iteration]
                _verify_replay_candidate(candidate, recorded)
                outcome = EvaluationOutcome(
                    recorded.get("score"), recorded.get("raw_score"),
                    recorded.get("error"), recorded.get("elapsed") or 0.0,
                    pruned=bool(recorded.get("pruned", False)),
                )
                replayed_queue.append(CandidateFuture(candidate, outcome))
            elif self.batch_eval:
                # buffered until the scheduler's flush point so same-burst
                # candidates can be fused; never buffered across a report
                submit_buffer.append(candidate)
            else:
                backend.submit(candidate)

        def report(future):
            # file one outcome back into the records, the store, the tuner
            # and the selector; called strictly in proposal order, so the
            # record stream (and hence the tuner/selector state feeding the
            # next proposal) is deterministic regardless of which worker
            # finished first
            nonlocal next_report, best_score, best_template, best_hyperparameters
            candidate = future.candidate
            outcome = future.result()
            error = outcome.error
            score = outcome.score
            raw_score = outcome.raw_score
            if error is None and (score is None or not np.isfinite(score)):
                # degenerate folds (nan/inf metric values) are a
                # recorded failure, not a fatal tuner error
                error = "NonFiniteScore: cross-validation produced {!r}".format(score)
                score = None
                raw_score = None

            record = EvaluationRecord(
                task_name=task.name,
                template_name=candidate.template_name,
                hyperparameters=candidate.hyperparameters,
                score=score,
                raw_score=raw_score,
                iteration=candidate.iteration,
                elapsed=outcome.elapsed,
                error=error,
                is_default=candidate.is_default,
                pruned=getattr(outcome, "pruned", False),
            )
            records.append(record)
            cache_totals["hits"] += getattr(outcome, "cache_hits", 0)
            cache_totals["misses"] += getattr(outcome, "cache_misses", 0)
            cache_totals["bytes_written"] += getattr(outcome, "cache_bytes", 0)
            next_report += 1
            if self.store is not None and candidate.iteration >= replay_count:
                # replayed records are already durable in the store; only
                # newly evaluated ones are appended (no duplicate lines)
                self.store.add(record)
            if sink is not None and candidate.iteration >= replay_count:
                # replayed iterations already have their events in the
                # stream from the original incarnation; re-emitting would
                # duplicate them (same guard as the store above)
                sink.emit(
                    "record_reported", tenant=tenant,
                    iteration=candidate.iteration, record=record.to_dict(),
                )

            tuner = tuners[candidate.template_name]
            if tuner is not None:
                tuner.resolve_pending(candidate.hyperparameters)
            selector.resolve_pending(candidate.template_name)

            if error is not None:
                # a failed evaluation consumed budget: count it as a spent
                # bandit trial and a known-bad tuner region so neither the
                # selector nor the tuner keeps re-drawing a crashing
                # configuration family.  Pruned candidates spend the trial
                # without the failure quarantine — they trailed the
                # incumbent, they did not crash.  Their configuration still
                # joins the tuner's failure set at the constant-liar score:
                # deliberately conservative (the partial evidence says
                # "behind", the lie says "worst seen"), which deflates
                # near-threshold regions harder than one fold strictly
                # proves — the cost of pruning aggressively; raise the
                # margin to soften it
                if getattr(outcome, "pruned", False) and hasattr(selector, "record_pruned"):
                    selector.record_pruned(candidate.template_name)
                else:
                    selector.record_failure(candidate.template_name)
                if tuner is not None:
                    tuner.record_failure(candidate.hyperparameters)
            else:
                template_scores[candidate.template_name].append(score)
                if tuner is not None:
                    fit_started = time.time()
                    tuner.record(candidate.hyperparameters, score)
                    if sink is not None:
                        sink.emit(
                            "tuner_fit", tenant=tenant, iteration=candidate.iteration,
                            template=candidate.template_name,
                            elapsed=time.time() - fit_started,
                        )
                if pruner is not None:
                    pruner.update_task_best(score)
                if best_score is None or score > best_score:
                    best_score = score
                    best_template = candidate.template_name
                    best_hyperparameters = dict(candidate.hyperparameters)

            if checkpoint is not None:
                # called after the record is fully filed and before the
                # next proposal, so a snapshot taken here captures a
                # consistent (report-boundary) view of the search state
                checkpoint.after_report({
                    "n_reported": next_report,
                    "proposed": proposed,
                    "budget": budget,
                    "max_seconds": max_seconds,
                    "elapsed": time.time() - start,
                    "records": records,
                    "replay_count": replay_count,
                    "defaults_pending": list(defaults_pending),
                    "task_name": task.name,
                    "selector": selector,
                    "tuners": tuners,
                    "template_scores": template_scores,
                })

        try:
            if self.schedule == "barrier":
                # historical round-barrier loop: propose a whole round, then
                # drain every outcome before proposing again — every worker
                # idles behind the round's slowest evaluation
                while proposed < budget and not deadline_passed():
                    round_end = min(budget, proposed + self.n_pending)
                    while proposed < round_end and not deadline_passed():
                        propose_and_submit()
                    flush_submissions()
                    completed = list(replayed_queue) + list(backend.as_completed())
                    replayed_queue.clear()
                    completed.sort(key=lambda future: future.candidate.iteration)
                    for future in completed:
                        report(future)
            else:
                # sliding window: keep n_pending evaluations in flight,
                # collect one completion at a time and propose its
                # replacement immediately.  Determinism bounds the slide:
                # proposal k may only use the reported results of
                # candidates 0..k-n_pending, so proposals stay at most
                # n_pending ahead of the reported prefix and a straggler
                # only stalls the window once it is the oldest outstanding
                # result and n_pending-1 newer evaluations sit buffered
                # behind it.
                def refill():
                    while (proposed < budget
                           and proposed - next_report < self.n_pending
                           and not deadline_passed()):
                        propose_and_submit()

                while True:
                    refill()
                    # flush strictly after the refill and before collecting:
                    # buffered proposals must reach the backend before the
                    # loop blocks on (or breaks for lack of) completions
                    flush_submissions()
                    if next_report == proposed:
                        break  # nothing in flight and no proposal allowed
                    if replayed_queue:
                        future = replayed_queue.popleft()
                    else:
                        future = backend.collect_one()
                        if future is None:
                            break  # backend lost outstanding work; keep records
                    reorder[future.candidate.iteration] = future
                    while next_report in reorder:
                        report(reorder.pop(next_report))
                        # propose the freed slot's replacement *before*
                        # reporting the next buffered record: a burst of
                        # out-of-order completions must not advance the
                        # reported prefix by more than one report per
                        # proposal, or proposal k would see a different
                        # prefix than the serial interleave (report k-n,
                        # propose k, report k-n+1, ...) and the
                        # cross-backend record streams would diverge
                        refill()
        finally:
            if owns_backend:
                backend.shutdown()
            if owned_cache_dir is not None:
                shutil.rmtree(owned_cache_dir, ignore_errors=True)

        # refit the best pipeline on the full training partition and score on
        # test (always a fresh, uncached fit: the full training partition is
        # not a cross-validation fold, so there is nothing to share anyway)
        best_pipeline = None
        test_score = None
        if best_template is not None:
            template = template_index[best_template]
            try:
                _, test_score, best_pipeline = evaluate_pipeline(
                    template, best_hyperparameters, task, test_task
                )
            except Exception:  # noqa: BLE001 - keep the search result even if refit fails
                best_pipeline = None

        cache_stats = None
        if cache_config is not None:
            cache_stats = {"mode": self.prefix_cache}
            cache_stats.update(cache_totals)

        # a fleet tenant backend reports its fair-share counters; the
        # caller-owned handle is still alive here even though the search
        # loop is done with it
        fleet_stats = None
        stats_source = getattr(backend, "tenant_stats", None)
        if callable(stats_source):
            fleet_stats = stats_source()

        plane_counts = getattr(backend, "plane_counts", None)
        if plane_counts is not None:
            plane_counts = dict(plane_counts)

        # supervision counters survive the pool's shutdown, so this works
        # whether the backend is owned (already shut down) or shared
        supervisor_stats = getattr(backend, "supervisor_stats", None)

        if sink is not None:
            sink.emit(
                "search_finished", tenant=tenant, task=task.name,
                n_records=len(records), best_score=best_score,
                elapsed=time.time() - start,
            )
            # the event stream is durable before the result is returned,
            # so a caller that exits right after search() leaves a
            # replayable run directory behind
            sink.flush()

        return SearchResult(
            task_name=task.name,
            best_template=best_template,
            best_hyperparameters=best_hyperparameters,
            best_score=best_score,
            best_pipeline=best_pipeline,
            records=records,
            test_score=test_score,
            elapsed=time.time() - start,
            cache_stats=cache_stats,
            fleet_stats=fleet_stats,
            plane_counts=plane_counts,
            supervisor_stats=supervisor_stats,
        )


class RandomSearch(AutoBazaarSearch):
    """AutoBazaar with uniform-random tuning (the random-search ablation baseline)."""

    def __init__(self, **kwargs):
        kwargs.setdefault("tuner_class", UniformTuner)
        super().__init__(**kwargs)
