"""Fused evaluation of same-template candidate batches.

Same-template candidates co-submitted to a backend differ only in their
hyperparameter configurations; evaluating them one at a time repeats the
shared work per candidate: materializing the fold, fitting (or looking
up) the identical preprocessing prefix, and — for the closed-form
pure-NumPy learners — recomputing estimator intermediates (Gram matrix,
pairwise distances, one-hot targets) that do not depend on the
hyperparameters being tuned.

:func:`evaluate_candidate_group` runs the whole batch through one fold in
a single fused pass:

* the fold's preprocessing prefix is executed **once** per distinct
  prefix configuration (candidates are subgrouped by prefix fingerprint),
* amenable estimators — classes exposing ``supports_batch_fit`` and a
  ``fit_batch(configs, **data)`` classmethod — fit the whole
  hyperparameter batch in one call that shares the configuration-
  independent intermediates; estimators additionally exposing
  ``supports_batch_predict``/``batch_predict`` share the produce phase,
* everything else — non-amenable estimators, per-candidate post-steps,
  scoring — transparently loops.

Determinism contract: batching MUST NOT change any candidate's score or
error string.  ``fit_batch`` implementations are required to be
bit-identical to the sequential ``fit`` (they share *inputs*, never
approximate the computation), any exception from a batch path falls back
to the per-candidate loop so failures surface with the exact per-candidate
error, and the prefix sharing rests on the same determinism assumption as
the fitted-prefix cache (equal configured prefixes on equal data produce
equal artifacts).  Per-candidate ``elapsed`` becomes the amortized share
of the fused pass, and prefix-cache counters count the group's single
shared lookup (attributed to the group's first candidate) instead of one
lookup per candidate — scores and record order stay bit-identical, the
timing/counter telemetry reflects the work actually done.
"""

import inspect
import time
from collections import OrderedDict

from repro.core.context import Context
from repro.core.pipeline import _chain_fingerprint
from repro.automl.prefix_cache import task_content_digest
from repro.telemetry.events import capture_event


def _format_error(failure):
    from repro.automl.backends import _format_error as format_error

    return format_error(failure)


def group_candidates(candidates):
    """Partition co-submitted candidates into fusable groups.

    Only candidates sharing the template object, the task object and the
    fold configuration may be evaluated as one batch.  Grouping never
    reorders: each group preserves submission order and groups appear in
    order of their first member.
    """
    groups = OrderedDict()
    for candidate in candidates:
        key = (
            id(candidate.task),
            id(candidate.template),
            candidate.n_splits,
            id(candidate.cache_config),
            id(candidate.pruner),
        )
        groups.setdefault(key, []).append(candidate)
    return list(groups.values())


def _error_payload(failure):
    return {
        "score": None,
        "raw_score": None,
        "error": _format_error(failure),
        "elapsed": None,
    }


def _supports_batch_fit(step):
    annotation = step.annotation
    primitive = annotation.primitive
    return (
        inspect.isclass(primitive)
        and getattr(primitive, "supports_batch_fit", False)
        and annotation.fit is not None
        and annotation.fit.get("method", "fit") == "fit"
    )


def _supports_batch_predict(step):
    primitive = step.annotation.primitive
    return (
        getattr(primitive, "supports_batch_predict", False)
        and step.annotation.produce.get("method") == "predict"
    )


def _estimator_config(step):
    """The constructor kwargs ``step`` would use — mirrors ``_build_instance``."""
    primitive = step.annotation.primitive
    accepted = set(inspect.signature(primitive.__init__).parameters)
    return {
        key: value for key, value in step.hyperparameters.items() if key in accepted
    }


def evaluate_candidate_group(template, hyperparameters_list, train_task, val_task,
                             prefix_cache=None, data_key=None):
    """Evaluate one fold for every configuration in ``hyperparameters_list``.

    Returns one fold payload dict (the :func:`evaluate_fold` format) per
    configuration, in input order.  Scores and error strings are identical
    to evaluating each configuration alone; shared work is done once.
    """
    started = time.time()
    n_candidates = len(hyperparameters_list)
    results = [None] * n_candidates

    pipelines = [None] * n_candidates
    built = []
    for index, hyperparameters in enumerate(hyperparameters_list):
        try:
            pipelines[index] = template.build_pipeline(hyperparameters)
        except Exception as failure:  # noqa: BLE001 - per-candidate build failures are data
            results[index] = _error_payload(failure)
            continue
        built.append(index)

    if built:
        if prefix_cache is not None and data_key is None:
            data_key = task_content_digest(train_task)
        boundary = pipelines[built[0]]._cacheable_prefix_length()
        subgroups = OrderedDict()
        for index in built:
            prefix_key = tuple(
                step.fingerprint_payload() for step in pipelines[index].steps[:boundary]
            )
            subgroups.setdefault(prefix_key, []).append(index)
        # worker-side view of the fused pass (one per fold); the backend
        # emits the per-group dispatch event, this one carries the actual
        # prefix-sharing structure the fold resolved to
        capture_event(
            "batch_group_formed", size=len(built),
            n_prefix_subgroups=len(subgroups),
            reason="shared-template candidates fused over a common prefix",
        )
        for indices in subgroups.values():
            _evaluate_subgroup(
                pipelines, indices, boundary, train_task, val_task,
                prefix_cache, data_key, results,
            )

    share = (time.time() - started) / max(n_candidates, 1)
    for payload in results:
        if payload is not None and payload.get("elapsed") is None:
            payload["elapsed"] = share
    return results


def _evaluate_subgroup(pipelines, indices, boundary, train_task, val_task,
                       prefix_cache, data_key, results):
    """Fused pass over candidates sharing one prefix configuration."""
    lead = pipelines[indices[0]]
    caching = prefix_cache is not None
    hits = misses = bytes_written = 0

    # 1. fit/produce the shared prefix once on the training fold, through
    # the prefix cache exactly like MLPipeline.fit would
    train_context = Context(train_task.pipeline_data())
    fingerprint = data_key
    try:
        for step in lead.steps[:boundary]:
            if caching:
                fingerprint = _chain_fingerprint(fingerprint, step)
                artifacts = prefix_cache.get(fingerprint)
                if artifacts is not None:
                    hits += 1
                    step.restore_fitted(artifacts["instance"])
                    outputs = artifacts["outputs"]
                    if outputs is not None:
                        train_context.record(step.name, outputs)
                    continue
            step.fit(train_context)
            outputs = step.produce(train_context, skip_if_missing=False)
            if caching:
                misses += 1
                bytes_written += prefix_cache.put(
                    fingerprint, {"instance": step._instance, "outputs": outputs}
                )
            if outputs is not None:
                train_context.record(step.name, outputs)
    except Exception as failure:  # noqa: BLE001 - a prefix failure fails every member
        for index in indices:
            results[index] = _error_payload(failure)
        return

    # 2. run the shared prefix over the validation fold (the prefix part
    # of what MLPipeline.predict would do)
    val_context = Context(val_task.pipeline_data(include_target=False))
    try:
        for step in lead.steps[:boundary]:
            outputs = step.produce(val_context, skip_if_missing=True)
            if outputs is not None:
                val_context.record(step.name, outputs)
    except Exception as failure:  # noqa: BLE001
        for index in indices:
            results[index] = _error_payload(failure)
        return

    # 3. batch-fit the estimator axis where the primitive supports it
    last = len(lead.steps) - 1
    estimator_steps = {index: pipelines[index].steps[boundary] for index in indices}
    batched_instances = {}
    lead_estimator = estimator_steps[indices[0]]
    if len(indices) > 1 and _supports_batch_fit(lead_estimator):
        primitive = lead_estimator.annotation.primitive
        fit_kwargs = None
        try:
            fit_kwargs = lead_estimator._gather(
                train_context, lead_estimator.annotation.fit_args
            )
        except Exception:  # noqa: BLE001 - missing inputs: the loop raises it per candidate
            fit_kwargs = None
        if fit_kwargs is not None:
            configs = [_estimator_config(estimator_steps[index]) for index in indices]
            try:
                instances = primitive.fit_batch(configs, **fit_kwargs)
            except Exception:  # noqa: BLE001 - decline the batch, loop for exact errors
                instances = None
            if instances is not None and len(instances) == len(indices):
                batched_instances = dict(zip(indices, instances))

    # 3b. share the produce phase too when the primitive can (e.g. the KNN
    # distance matrix); only for a final-step estimator, where the
    # training-side produce is dead work anyway
    batched_val_predictions = {}
    if batched_instances and boundary == last and _supports_batch_predict(lead_estimator):
        primitive = lead_estimator.annotation.primitive
        produce_kwargs = lead_estimator._gather(
            val_context, lead_estimator.annotation.produce_args, allow_missing=True
        )
        if produce_kwargs is not None:
            try:
                predictions = primitive.batch_predict(
                    [batched_instances[index] for index in indices], **produce_kwargs
                )
            except Exception:  # noqa: BLE001 - decline, per-candidate produce is exact
                predictions = None
            if predictions is not None and len(predictions) == len(indices):
                batched_val_predictions = dict(zip(indices, predictions))

    # 4. finish each candidate individually: estimator (unless batch-
    # fitted), post-steps, validation produce and scoring
    for index in indices:
        try:
            results[index] = _finish_candidate(
                pipelines[index], boundary, train_context, val_context, val_task,
                prefitted=batched_instances.get(index),
                val_prediction=batched_val_predictions.get(index),
                has_val_prediction=index in batched_val_predictions,
            )
        except Exception as failure:  # noqa: BLE001 - failed candidates are data
            results[index] = _error_payload(failure)

    if caching:
        counters = {
            "cache_hits": hits, "cache_misses": misses, "cache_bytes": bytes_written,
        }
        for index in indices:
            payload = results[index]
            if payload is not None and not payload.get("error"):
                payload.update(counters)
                break


def _finish_candidate(pipeline, boundary, train_context, val_context, val_task,
                      prefitted=None, val_prediction=None, has_val_prediction=False):
    """Per-candidate tail of the fused pass: estimator onward, then scoring.

    Mirrors the step sequence of ``MLPipeline.fit`` + ``predict`` from the
    prefix boundary on, over copy-on-write overlays of the shared
    contexts; a batch-fitted instance replaces the individual ``fit``
    call, and a batch-computed prediction replaces the individual
    validation ``produce``.
    """
    steps = pipeline.steps
    last = len(steps) - 1

    context = train_context.copy()
    for position in range(boundary, len(steps)):
        step = steps[position]
        if position == boundary and prefitted is not None:
            step.restore_fitted(prefitted)
            if position == last:
                # a batch-fitted final estimator's training-side produce
                # feeds no later step and cannot change the score
                break
        else:
            step.fit(context)
        outputs = step.produce(context, skip_if_missing=False)
        if outputs is not None:
            context.record(step.name, outputs)

    val_overlay = val_context.copy()
    for position in range(boundary, len(steps)):
        step = steps[position]
        if position == boundary and has_val_prediction:
            outputs = step._map_outputs(val_prediction)
        else:
            outputs = step.produce(val_overlay, skip_if_missing=True)
        if outputs is not None:
            val_overlay.record(step.name, outputs)

    output_key = pipeline.outputs
    if output_key not in val_overlay:
        # the exact message MLPipeline.predict raises in the looped path
        message = (
            "Pipeline did not produce the expected output {!r}; context keys: {}".format(
                output_key, sorted(val_overlay.keys())
            )
        )
        message += "; keys available at fit time: {}".format(sorted(context.keys()))
        raise RuntimeError(message)
    predictions = val_overlay[output_key]
    y_true = val_task.context["y"]
    raw = val_task.score(y_true, predictions)
    normalized = raw if val_task.higher_is_better else -raw
    return {"score": normalized, "raw_score": raw, "error": None, "elapsed": None}
