"""Search checkpointing: durable, resumable AutoBazaar runs.

A *checkpointed run* lives in one directory::

    <run_dir>/
        manifest.json     # immutable run configuration (written once)
        task/             # the task payload, saved at run creation
        store/            # JSONL segment log of every reported record
        warm/             # frozen warm-start history store (optional)
        checkpoint.json   # latest periodic state snapshot (atomic replace)

The **store is the source of truth**: every reported record is appended
to the crash-safe segment log before anything else observes it, so a
killed run can always be resumed from the durable record prefix.  Resume
does not restore mutable search state from the snapshot — it *replays*
the recorded prefix through the real proposal path (consuming the RNG and
updating tuner/selector state exactly as the original run did) and swaps
in the recorded outcomes instead of re-evaluating, which provably
reconstructs the exact state the uninterrupted run would have had and
therefore emits the identical remaining record stream.

The periodic ``checkpoint.json`` snapshot captures the resumable state
the paper-style coordinator would track — budget spent, per-template
selector/tuner trial history, the reorder-buffer cursor and every RNG
state — and doubles as an independent *integrity witness*: on resume,
when the replay crosses the snapshot's report boundary, the regenerated
stream digest and RNG states are compared against the snapshot and any
disagreement aborts the resume with :class:`CheckpointError` instead of
silently continuing a diverged search.
"""

import hashlib
import json
import os
import shutil
import time

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

import numpy as np

from repro.automl.search import AutoBazaarSearch
from repro.explorer.persistence import PersistentPipelineStore
from repro.telemetry.sink import EVENTS_DIRNAME
from repro.explorer.store import normalize_value
from repro.tasks.io import load_task, save_task, task_fingerprint
from repro.tuning.selectors import get_selector
from repro.tuning.tuners import get_tuner

MANIFEST_NAME = "manifest.json"
CHECKPOINT_NAME = "checkpoint.json"
TASK_DIRNAME = "task"
STORE_DIRNAME = "store"
WARM_DIRNAME = "warm"
RUN_LOCK_NAME = "run.lock"

MANIFEST_FORMAT = 1
CHECKPOINT_FORMAT = 1


class CheckpointError(RuntimeError):
    """A run directory is unusable: missing, already initialized, or diverged."""


def _atomic_write_json(path, payload):
    """Write JSON durably: temp file + fsync + atomic rename."""
    temporary = path + ".tmp"
    with open(temporary, "w") as stream:
        json.dump(payload, stream, indent=2)
        stream.flush()
        os.fsync(stream.fileno())
    os.replace(temporary, path)


def _load_json(path):
    with open(path) as stream:
        return json.load(stream)


def serialize_rng_state(rng):
    """JSON-serializable form of a ``numpy.random.RandomState`` state."""
    state = rng.get_state()
    return [state[0], np.asarray(state[1]).tolist(), int(state[2]),
            int(state[3]), float(state[4])]


def record_stream_digest(documents, hasher=None):
    """SHA-256 over the canonical form of an ordered record stream.

    The digest covers exactly what the determinism guarantee promises —
    iteration, template, hyperparameters, score, raw score, error and the
    default flag — in stream order, so two runs agree on the digest iff
    they emitted the same records in the same order.
    """
    hasher = hasher or hashlib.sha256()
    for document in documents:
        canonical = json.dumps(normalize_value([
            document.get("iteration"),
            document.get("template_name"),
            document.get("hyperparameters"),
            document.get("score"),
            document.get("raw_score"),
            document.get("error"),
            document.get("is_default"),
        ]), sort_keys=True, separators=(",", ":"))
        hasher.update(canonical.encode("utf-8"))
        hasher.update(b"\n")
    return hasher


class CheckpointManager:
    """Writes periodic search snapshots and verifies them on resume.

    Plugged into :meth:`AutoBazaarSearch.search` through the
    ``checkpoint`` parameter: ``after_report`` runs after every reported
    record, strictly before the next proposal, so each snapshot captures a
    consistent report-boundary view of the search.

    Parameters
    ----------
    run_dir:
        Directory holding ``checkpoint.json``.
    every:
        Snapshot cadence in reported records (1 = after every record).
    resume_snapshot:
        The previously written snapshot, when resuming.  While the replay
        crosses its report boundary the regenerated stream digest, RNG
        states and trial counts are checked against it.
    replay_count:
        Number of records being replayed from the durable store; no
        snapshots are rewritten below this boundary.
    on_report:
        Optional callable invoked with the state dict after bookkeeping —
        the hook used by the crash/resume smoke test to kill the process
        at a deterministic point, and available for progress reporting.
    """

    def __init__(self, run_dir, every=1, resume_snapshot=None, replay_count=0,
                 on_report=None):
        self.run_dir = str(run_dir)
        self.every = max(1, int(every))
        self.path = os.path.join(self.run_dir, CHECKPOINT_NAME)
        self.on_report = on_report
        self._snapshot = resume_snapshot
        self._verify_at = resume_snapshot["n_reported"] if resume_snapshot else None
        self._replay_count = int(replay_count)
        self._digest = hashlib.sha256()
        self._hashed = 0

    def after_report(self, state):
        records = state["records"]
        if self._hashed < len(records):
            record_stream_digest(
                (record.to_dict() for record in records[self._hashed:]), self._digest
            )
            self._hashed = len(records)
        n_reported = state["n_reported"]
        if self._verify_at is not None and n_reported == self._verify_at:
            self._verify(state)
            self._verify_at = None
        if n_reported > self._replay_count and (
                n_reported % self.every == 0 or n_reported >= state["budget"]):
            self.write(state)
        if self.on_report is not None:
            self.on_report(state)

    # -- snapshotting -------------------------------------------------------------

    def _capture(self, state):
        """The serializable snapshot of one report-boundary search state."""
        selector = state["selector"]
        tuners = state["tuners"]
        templates = {}
        for name, tuner in tuners.items():
            if tuner is None:
                templates[name] = {
                    "n_trials": len(state["template_scores"].get(name, [])),
                    "scores": list(state["template_scores"].get(name, [])),
                    "n_failed": selector.failure_count(name),
                    "n_pending": selector.pending_count(name),
                }
            else:
                templates[name] = {
                    "n_trials": len(tuner.trials),
                    "scores": list(tuner.scores),
                    "n_failed": len(tuner.failed_trials),
                    "n_pending": len(tuner.pending),
                }
        rng = {
            "selector": serialize_rng_state(selector._rng),
            "tuners": {
                name: serialize_rng_state(tuner._rng)
                for name, tuner in tuners.items() if tuner is not None
            },
        }
        return normalize_value({
            "format": CHECKPOINT_FORMAT,
            "written_at": time.time(),
            "task_name": state["task_name"],
            "n_reported": state["n_reported"],
            "proposed": state["proposed"],
            "budget": state["budget"],
            "elapsed": state["elapsed"],
            "defaults_pending": state["defaults_pending"],
            "stream_digest": self._digest.hexdigest(),
            "rng": rng,
            "templates": templates,
        })

    def write(self, state):
        """Atomically replace ``checkpoint.json`` with the current snapshot."""
        _atomic_write_json(self.path, self._capture(state))

    # -- resume verification ------------------------------------------------------

    def _verify(self, state):
        snapshot = self._snapshot
        problems = []
        if self._digest.hexdigest() != snapshot.get("stream_digest"):
            problems.append(
                "record stream digest mismatch at report {} (store records differ "
                "from the ones the checkpoint was written against)".format(
                    state["n_reported"])
            )
        # proposals and RNG consumption are only report-deterministic for
        # budget-bounded runs; a wall-clock budget legitimately shifts them
        if state.get("max_seconds") is None and not problems:
            current = self._capture(state)
            if current["proposed"] != snapshot.get("proposed"):
                problems.append("proposed {} != checkpointed {}".format(
                    current["proposed"], snapshot.get("proposed")))
            if current["rng"] != snapshot.get("rng"):
                problems.append("regenerated RNG states differ from the checkpoint")
            for name, entry in snapshot.get("templates", {}).items():
                regenerated = current["templates"].get(name)
                if regenerated != entry:
                    problems.append(
                        "template {!r} trial history differs from the checkpoint".format(name)
                    )
                    break
        if problems:
            raise CheckpointError(
                "Resume verification failed for {!r}: {}. The run directory was "
                "modified, or the search configuration no longer matches the one "
                "that produced it.".format(self.run_dir, "; ".join(problems))
            )


class ExperimentRun:
    """A durable, resumable AutoBazaar search bound to a run directory.

    ``create`` initializes the directory (manifest + task payload + empty
    store) and ``open`` attaches to an existing one; ``execute`` runs —
    or, if the store already holds records, *resumes* — the search.
    """

    def __init__(self, run_dir, manifest):
        self.run_dir = str(run_dir)
        self.manifest = manifest
        self.store = None
        self.result = None

    # -- lifecycle ----------------------------------------------------------------

    @classmethod
    def create(cls, run_dir, task=None, task_directory=None, budget=20, tuner="gp_ei",
               selector="ucb1", n_splits=3, random_state=0, holdout=0.25,
               schedule="window", n_pending=1, max_seconds=None, checkpoint_every=1,
               warm_start_source=None):
        """Initialize a new run directory; returns the run (not yet executed).

        ``warm_start_source`` is an optional :class:`PipelineStore` (or
        path to a persistent one) holding prior evaluations: its documents
        are *frozen* into the run directory, so the warm-start seed — and
        with it the record stream — stays identical on resume even if the
        shared source store keeps growing.
        """
        run_dir = str(run_dir)
        if random_state is None:
            raise ValueError(
                "Checkpointed runs require an explicit integer random_state: resume "
                "reconstructs the search by deterministic replay, which an unseeded "
                "run cannot guarantee"
            )
        manifest_path = os.path.join(run_dir, MANIFEST_NAME)
        if os.path.exists(manifest_path):
            raise CheckpointError(
                "{!r} is already an initialized run directory; use resume "
                "(ExperimentRun.open / `python -m repro.automl resume`) instead".format(run_dir)
            )
        # fail fast on unknown names before anything touches the disk
        get_tuner(tuner)
        get_selector(selector)
        if task is None:
            if task_directory is None:
                raise ValueError("Either task or task_directory is required")
            task = load_task(task_directory)
        os.makedirs(run_dir, exist_ok=True)
        # the manifest write below is the commit point of create(); any
        # task/store/warm leftovers without a manifest are the residue of
        # a create() that crashed before committing and were never
        # acknowledged -- wipe them, or re-running create() would append
        # the warm-start history into the surviving log a second time
        for leftover in (TASK_DIRNAME, STORE_DIRNAME, WARM_DIRNAME,
                         CHECKPOINT_NAME, RUN_LOCK_NAME):
            path = os.path.join(run_dir, leftover)
            if os.path.isdir(path):
                shutil.rmtree(path)
            elif os.path.exists(path):
                os.unlink(path)
        task_dir = os.path.join(run_dir, TASK_DIRNAME)
        save_task(task, task_dir)

        warm_start = warm_start_source is not None
        if warm_start:
            opened_here = isinstance(warm_start_source, (str, os.PathLike))
            if opened_here:
                warm_start_source = PersistentPipelineStore(warm_start_source)
            frozen = PersistentPipelineStore(os.path.join(run_dir, WARM_DIRNAME))
            for document in warm_start_source:
                frozen.add(document)
            frozen.close()
            if opened_here:
                warm_start_source.close()

        manifest = {
            "format": MANIFEST_FORMAT,
            "created_at": time.time(),
            "task_name": task.name,
            "task_fingerprint": task_fingerprint(task_dir),
            "budget": int(budget),
            "tuner": tuner,
            "selector": selector,
            "n_splits": int(n_splits),
            "random_state": int(random_state),
            "holdout": float(holdout),
            "schedule": schedule,
            "n_pending": int(n_pending),
            "max_seconds": max_seconds,
            "checkpoint_every": int(checkpoint_every),
            "warm_start": warm_start,
            # pipelines must be pure functions of their configuration for a
            # resumed run to reproduce the uninterrupted scores, so every
            # stochastic primitive is pinned to the run seed
            "estimator_seed": int(random_state),
        }
        _atomic_write_json(manifest_path, manifest)
        return cls(run_dir, manifest)

    @classmethod
    def open(cls, run_dir):
        """Attach to an existing run directory."""
        run_dir = str(run_dir)
        manifest_path = os.path.join(run_dir, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise CheckpointError(
                "{!r} is not a run directory (no {})".format(run_dir, MANIFEST_NAME)
            )
        return cls(run_dir, _load_json(manifest_path))

    # -- execution ----------------------------------------------------------------

    def _acquire_run_lock(self):
        """Exclusive per-run-directory lock held for the whole execution.

        Two processes executing (or resuming) the same run directory
        concurrently would both replay the durable prefix and then both
        append their live evaluations — duplicated iterations, a bricked
        run.  The ``flock`` is released by the kernel even on ``SIGKILL``,
        so a killed run never leaves the directory locked.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return None
        descriptor = os.open(
            os.path.join(self.run_dir, RUN_LOCK_NAME), os.O_RDWR | os.O_CREAT, 0o644
        )
        try:
            fcntl.flock(descriptor, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(descriptor)
            raise CheckpointError(
                "{!r} is already being executed by another process; a run "
                "directory has exactly one live executor".format(self.run_dir)
            ) from None
        return descriptor

    def execute(self, backend="serial", workers=None, task_cache_size=None,
                on_report=None, prefix_cache="off", cache_dir=None,
                data_plane=None, batch_eval=False, telemetry=None,
                fold_timeout=None, max_fold_retries=None):
        """Run — or resume — the search; returns the ``SearchResult``.

        ``telemetry`` enables structured event recording: ``"run-dir"``
        (or ``True``) records into the run directory's ``events/``
        stream — a resumed run reopens and appends to it, continuing the
        sequence numbers — while an explicit path or a
        :class:`~repro.telemetry.sink.TelemetrySink` records elsewhere.
        ``None``/``"off"`` disables it.  Like the execution knobs below,
        telemetry never shapes the record stream.

        Execution knobs (``backend``/``workers``/``task_cache_size``/
        ``data_plane``/``batch_eval``, the supervision knobs
        ``fold_timeout``/``max_fold_retries``, and the fitted-prefix cache
        ``prefix_cache``/``cache_dir``) may differ between run and resume:
        the determinism guarantee makes the record stream identical across
        backends — prefix caching preserves scores exactly (entries are
        content-addressed by fold data and configured prefix), and batched
        evaluation fuses work without changing any score or the record
        order — so they are not part of the manifest.  Everything that
        shapes the stream (budget, seed, tuner, selector, schedule,
        ``n_pending``) is fixed at creation.  Early-discard pruning, by
        contrast, *does* change the stream and is deliberately not
        available on checkpointed runs.
        """
        run_lock = self._acquire_run_lock()
        try:
            return self._execute(backend=backend, workers=workers,
                                 task_cache_size=task_cache_size, on_report=on_report,
                                 prefix_cache=prefix_cache, cache_dir=cache_dir,
                                 data_plane=data_plane, batch_eval=batch_eval,
                                 telemetry=telemetry, fold_timeout=fold_timeout,
                                 max_fold_retries=max_fold_retries)
        finally:
            if run_lock is not None:
                os.close(run_lock)

    def _execute(self, backend, workers, task_cache_size, on_report,
                 prefix_cache="off", cache_dir=None, data_plane=None, batch_eval=False,
                 telemetry=None, fold_timeout=None, max_fold_retries=None):
        manifest = self.manifest
        task_dir = os.path.join(self.run_dir, TASK_DIRNAME)
        fingerprint = task_fingerprint(task_dir)
        if fingerprint != manifest["task_fingerprint"]:
            raise CheckpointError(
                "Task payload in {!r} changed since the run was created "
                "(fingerprint {} != manifest {})".format(
                    self.run_dir, fingerprint, manifest["task_fingerprint"])
            )
        task = load_task(task_dir)

        store = PersistentPipelineStore(os.path.join(self.run_dir, STORE_DIRNAME))
        try:
            replay = list(store)
            if len(replay) > manifest["budget"]:
                raise CheckpointError(
                    "Run store holds {} records but the budget is {}: the store was "
                    "appended to outside this run".format(len(replay), manifest["budget"])
                )

            snapshot = None
            checkpoint_path = os.path.join(self.run_dir, CHECKPOINT_NAME)
            if os.path.exists(checkpoint_path):
                snapshot = _load_json(checkpoint_path)
                if snapshot.get("n_reported", 0) > len(replay):
                    raise CheckpointError(
                        "checkpoint.json claims {} reported records but the store "
                        "holds only {}: the store lost acknowledged data".format(
                            snapshot.get("n_reported"), len(replay))
                    )
        except Exception:
            # pre-flight failures must not leak the open store (its shared
            # lock would degrade every later open in this process)
            store.close()
            raise
        manager = CheckpointManager(
            self.run_dir, every=manifest["checkpoint_every"],
            resume_snapshot=snapshot, replay_count=len(replay), on_report=on_report,
        )

        warm_store = None
        if manifest.get("warm_start"):
            warm_store = PersistentPipelineStore(os.path.join(self.run_dir, WARM_DIRNAME))

        # "run-dir" (or True) puts the event stream next to the record
        # store; the search itself owns opening/closing the sink, and
        # reopening an existing stream on resume appends to it
        if telemetry in (None, False, "off"):
            telemetry = None
        elif telemetry in (True, "run-dir"):
            telemetry = os.path.join(self.run_dir, EVENTS_DIRNAME)

        searcher = AutoBazaarSearch(
            tuner_class=get_tuner(manifest["tuner"]),
            selector_class=get_selector(manifest["selector"]),
            n_splits=manifest["n_splits"],
            random_state=manifest["random_state"],
            store=store,
            warm_start_store=warm_store,
            backend=backend,
            workers=workers,
            n_pending=manifest["n_pending"],
            schedule=manifest["schedule"],
            task_cache_size=task_cache_size,
            estimator_seed=manifest.get("estimator_seed", manifest["random_state"]),
            prefix_cache=prefix_cache,
            cache_dir=cache_dir,
            data_plane=data_plane,
            batch_eval=batch_eval,
            telemetry=telemetry,
            fold_timeout=fold_timeout,
            max_fold_retries=max_fold_retries,
        )
        if snapshot is not None:
            elapsed_offset = float(snapshot.get("elapsed") or 0.0)
        else:
            # no snapshot survived (killed before the first checkpoint):
            # approximate spent wall-clock with the summed evaluation cost.
            # Exact for the serial backend; an upper bound for pool
            # backends (concurrent evaluations overlap), which at worst
            # stops a max_seconds-budgeted resume early -- replay itself is
            # never deadline-gated.  Keep checkpoint_every=1 (the default)
            # on wall-clock-budgeted parallel runs to avoid the gap.
            elapsed_offset = float(sum(doc.get("elapsed") or 0.0 for doc in replay))
        try:
            result = searcher.search(
                task,
                budget=manifest["budget"],
                holdout=manifest["holdout"],
                max_seconds=manifest["max_seconds"],
                checkpoint=manager,
                replay=replay,
                elapsed_offset=elapsed_offset,
            )
        except BaseException:
            # on failure (including KeyboardInterrupt) release the store
            # immediately so the directory can be resumed without a
            # degraded shared-mode open
            store.close()
            raise
        finally:
            if warm_store is not None:
                warm_store.close()
        # on success the store stays open (queryable and still durable for
        # the caller); release it with close() when done
        self.store = store
        self.result = result
        return result

    def close(self):
        """Release the run's open store handle (and its locks), if any."""
        if self.store is not None:
            self.store.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return "ExperimentRun(run_dir={!r}, task={!r})".format(
            self.run_dir, self.manifest.get("task_name")
        )


def resume_run(run_dir, backend="serial", workers=None, task_cache_size=None,
               prefix_cache="off", cache_dir=None, telemetry=None,
               fold_timeout=None, max_fold_retries=None):
    """Resume a killed (or completed) checkpointed run; returns the run.

    Replays the durable record prefix to reconstruct the exact search
    state, verifies it against the latest snapshot, then continues with
    live evaluations — the remaining record stream is identical to the one
    an uninterrupted run would have produced, and the store ends up with
    no duplicated or lost records.  The fitted-prefix cache may be enabled
    on resume even if the original run had it off (and vice versa): cached
    artifacts are content-addressed, so the scores are unchanged.
    """
    run = ExperimentRun.open(run_dir)
    run.execute(backend=backend, workers=workers, task_cache_size=task_cache_size,
                prefix_cache=prefix_cache, cache_dir=cache_dir, telemetry=telemetry,
                fold_timeout=fold_timeout, max_fold_retries=max_fold_retries)
    return run
