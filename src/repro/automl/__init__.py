"""AutoBazaar: the end-to-end, multi-task AutoML system (paper Section IV-C).

The system combines ML primitives (templates from the curated catalog) and
AutoML primitives (tuners and selectors from :mod:`repro.tuning`) in the
search-and-evaluation loop of paper Algorithm 2.
"""

from repro.automl.backends import (
    BACKENDS,
    EvaluationCandidate,
    ExecutionBackend,
    ProcessBackend,
    PruneController,
    PrunedEvaluation,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from repro.automl.catalog import TemplateCatalog, default_template_catalog, get_templates
from repro.automl.faultinject import FaultPlan
from repro.automl.checkpoint import (
    CheckpointError,
    CheckpointManager,
    ExperimentRun,
    resume_run,
)
from repro.automl.fleet import FleetCoordinator, TenantBackend
from repro.automl.prefix_cache import (
    FittedPrefixCache,
    fold_data_key,
    make_prefix_cache_config,
    task_content_digest,
)
from repro.automl.search import (
    AutoBazaarSearch,
    EvaluationRecord,
    ReplayMismatchError,
    SearchResult,
    evaluate_pipeline,
)
from repro.automl.session import (
    AutoBazaarSession,
    run_fleet_from_directories,
    run_from_directory,
)
from repro.automl.supervisor import (
    FoldTimeoutError,
    SupervisedWorkerPool,
    WorkerCrashError,
)

__all__ = [
    "TemplateCatalog",
    "default_template_catalog",
    "get_templates",
    "AutoBazaarSearch",
    "SearchResult",
    "EvaluationRecord",
    "evaluate_pipeline",
    "AutoBazaarSession",
    "run_from_directory",
    "run_fleet_from_directories",
    "FleetCoordinator",
    "TenantBackend",
    "CheckpointError",
    "CheckpointManager",
    "ExperimentRun",
    "resume_run",
    "ReplayMismatchError",
    "BACKENDS",
    "ExecutionBackend",
    "EvaluationCandidate",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "get_backend",
    "PruneController",
    "PrunedEvaluation",
    "FittedPrefixCache",
    "make_prefix_cache_config",
    "task_content_digest",
    "fold_data_key",
    "SupervisedWorkerPool",
    "WorkerCrashError",
    "FoldTimeoutError",
    "FaultPlan",
]
