"""Content-addressed cache of fitted pipeline prefixes.

The search loop spends nearly all of its wall clock fitting pipelines, yet
candidates drawn from the same template differ only in estimator
hyperparameters: their preprocessing prefixes (imputer -> encoder ->
scaler -> ...) are refit identically on every fold of every candidate.
This module memoizes those fitted prefixes (cf. sklearn's
``Pipeline(memory=...)`` and auto-sklearn's artifact cache).

A cache entry is addressed by a **prefix fingerprint**: the rolling hash
of a *data key* (content digest of the fold's training data) chained with
the canonical identity of every pipeline step up to and including the
cached one (primitive name, resolved hyperparameters, context renames —
see :meth:`repro.core.step.PipelineStep.fingerprint_payload`).  Two
candidates that share the same training fold and the same configured
prefix therefore share cache entries, no matter which template, tuner or
worker produced them.

Two tiers:

``mem``
    A per-process LRU of fitted step artifacts (the fitted primitive
    instance plus the step's transformed outputs on the training
    context).  Cheapest possible hit; entries are shared *by reference*
    within the process, which is safe because primitive ``produce``
    methods do not mutate fitted state.
``disk``
    The LRU backed by an on-disk content-addressed store (one pickle per
    fingerprint, written atomically), so that
    :class:`~repro.automl.backends.ProcessBackend` workers share fitted
    prefixes across candidates and across worker processes.  Every disk
    entry embeds its own fingerprint; a corrupt or aliased file is
    detected on load (fingerprint mismatch or unpickling failure) and
    treated as a miss — never as wrong data.

Workers resolve their cache instance lazily from a tiny picklable
*cache config* tuple shipped with each fold submission
(:func:`resolve_prefix_cache`), the same late-binding pattern as the
worker-resident task cache next to
:func:`repro.automl.backends._configure_worker_cache`.
"""

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict

import numpy as np

from repro.telemetry.events import capture_event

#: Recognized cache modes (the CLI ``--prefix-cache`` values).
PREFIX_CACHE_MODES = ("off", "mem", "disk")

#: Default number of fitted-prefix entries kept in the per-process LRU.
DEFAULT_MAX_ENTRIES = 64

#: Default cap on entries kept in the disk tier (swept oldest-first).
DEFAULT_MAX_DISK_ENTRIES = 4096

#: Disk writes between sweeps of the disk tier (amortizes the directory scan).
_DISK_SWEEP_INTERVAL = 64

#: Pickle protocol pinned for deterministic, version-stable disk entries.
_PICKLE_PROTOCOL = 4


def make_prefix_cache_config(mode, cache_dir=None, max_entries=DEFAULT_MAX_ENTRIES):
    """Build the picklable cache-config tuple shipped to workers.

    Returns ``None`` for mode ``"off"`` (or ``None``), which disables
    caching everywhere downstream.  Mode ``"disk"`` requires an explicit
    ``cache_dir`` — the search owns the decision of where the shared
    store lives (and whether it is a temporary directory).
    """
    if mode in (None, "off"):
        return None
    if mode not in PREFIX_CACHE_MODES:
        raise ValueError(
            "Unknown prefix-cache mode {!r}; expected one of {}".format(
                mode, PREFIX_CACHE_MODES
            )
        )
    max_entries = int(max_entries)
    if max_entries < 1:
        raise ValueError("max_entries must be at least 1")
    if mode == "disk":
        if not cache_dir:
            raise ValueError("prefix-cache mode 'disk' requires a cache directory")
        return ("disk", str(cache_dir), max_entries)
    return ("mem", None, max_entries)


class PrefixCacheStats:
    """Thread-safe hit/miss/byte counters of one cache instance."""

    def __init__(self):
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.bytes_written = 0
        self.invalid = 0

    def record_hit(self):
        with self._lock:
            self.hits += 1

    def record_miss(self):
        with self._lock:
            self.misses += 1

    def record_store(self, bytes_written):
        with self._lock:
            self.stores += 1
            self.bytes_written += int(bytes_written)

    def record_invalid(self):
        with self._lock:
            self.invalid += 1

    def snapshot(self):
        """A plain-dict copy of the counters (for reporting and deltas)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "bytes_written": self.bytes_written,
                "invalid": self.invalid,
            }

    def __repr__(self):
        return "PrefixCacheStats({})".format(self.snapshot())


class FittedPrefixCache:
    """Two-tier (memory LRU + optional disk CAS) fitted-prefix cache.

    Parameters
    ----------
    cache_dir:
        Directory of the shared on-disk content-addressed store, or
        ``None`` for a memory-only cache.  The directory is created on
        first use; concurrent writers are safe because entries are
        written to a temporary file and atomically renamed into place.
    max_entries:
        Fitted prefixes kept in the in-memory LRU.
    max_disk_entries:
        Cap on the entry files kept in the disk tier.  A search pointed
        at a temporary directory never approaches it, but an explicit
        shared ``cache_dir`` reused across searches and runs would
        otherwise grow without bound; every ``_DISK_SWEEP_INTERVAL``-th
        write sweeps the oldest entries (by modification time) back
        under the cap.  Concurrent sweepers are safe — a lost race is
        just an already-deleted file.
    """

    def __init__(self, cache_dir=None, max_entries=DEFAULT_MAX_ENTRIES,
                 max_disk_entries=DEFAULT_MAX_DISK_ENTRIES):
        self.cache_dir = cache_dir
        if cache_dir is not None:
            # reclaim temp files orphaned by writers that were SIGKILLed
            # mid-write (the supervised pool kills hung workers); live
            # writers are safe — their pid rides in the filename
            sweep_orphan_cache_tmp(cache_dir)
        self.max_entries = int(max_entries)
        if self.max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        self.max_disk_entries = int(max_disk_entries)
        if self.max_disk_entries < 1:
            raise ValueError("max_disk_entries must be at least 1")
        self._writes_since_sweep = 0
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PrefixCacheStats()

    # -- lookup ----------------------------------------------------------------

    def get(self, fingerprint):
        """The cached artifacts for ``fingerprint``, or ``None`` on a miss."""
        with self._lock:
            artifacts = self._entries.get(fingerprint)
            if artifacts is not None:
                self._entries.move_to_end(fingerprint)
        if artifacts is not None:
            self.stats.record_hit()
            capture_event("cache_hit", tier="mem", fingerprint=fingerprint)
            return artifacts
        if self.cache_dir is not None:
            artifacts = self._load_from_disk(fingerprint)
            if artifacts is not None:
                with self._lock:
                    self._remember(fingerprint, artifacts)
                self.stats.record_hit()
                capture_event("cache_hit", tier="disk", fingerprint=fingerprint)
                return artifacts
        self.stats.record_miss()
        capture_event("cache_miss", fingerprint=fingerprint)
        return None

    def put(self, fingerprint, artifacts):
        """File freshly fitted artifacts; returns the bytes written to disk."""
        with self._lock:
            self._remember(fingerprint, artifacts)
        bytes_written = 0
        if self.cache_dir is not None:
            bytes_written = self._write_to_disk(fingerprint, artifacts)
        self.stats.record_store(bytes_written)
        capture_event("cache_store", fingerprint=fingerprint, bytes=bytes_written)
        return bytes_written

    def _remember(self, fingerprint, artifacts):
        self._entries[fingerprint] = artifacts
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def __len__(self):
        with self._lock:
            return len(self._entries)

    # -- disk tier --------------------------------------------------------------

    def _entry_path(self, fingerprint):
        return os.path.join(self.cache_dir, "{}.pkl".format(fingerprint))

    def _load_from_disk(self, fingerprint):
        """Load one disk entry, verifying it is the entry it claims to be.

        The fingerprint is stored *inside* the pickle: a file that was
        truncated, corrupted, or swapped for a different entry fails the
        check and is treated as a miss (and unlinked) instead of ever
        returning wrong artifacts for the requested prefix.
        """
        path = self._entry_path(fingerprint)
        try:
            with open(path, "rb") as stream:
                payload = pickle.load(stream)
        except FileNotFoundError:
            return None
        except Exception:  # noqa: BLE001 - any unreadable entry is a miss, not a crash
            self.stats.record_invalid()
            _unlink_quietly(path)
            return None
        if not isinstance(payload, dict) or payload.get("fingerprint") != fingerprint:
            self.stats.record_invalid()
            _unlink_quietly(path)
            return None
        return payload.get("artifacts")

    def _write_to_disk(self, fingerprint, artifacts):
        path = self._entry_path(fingerprint)
        if os.path.exists(path):
            return 0  # another worker already published this prefix
        temp_path = None
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            payload = pickle.dumps(
                {"fingerprint": fingerprint, "artifacts": artifacts},
                protocol=_PICKLE_PROTOCOL,
            )
            # every disk failure — unpicklable artifacts, a full or
            # read-only filesystem — leaves the entry memory-only; a cache
            # write must never fail the evaluation it was accelerating
            # the writer's pid rides in the filename so the orphan sweep
            # can tell a dead writer's leftover from an in-flight write
            descriptor, temp_path = tempfile.mkstemp(
                prefix=_tmp_prefix(), suffix=".tmp", dir=self.cache_dir
            )
            with os.fdopen(descriptor, "wb") as stream:
                stream.write(payload)
            os.replace(temp_path, path)
        except Exception:  # noqa: BLE001 - disk-tier errors degrade to memory-only
            if temp_path is not None:
                _unlink_quietly(temp_path)
            return 0
        with self._lock:
            self._writes_since_sweep += 1
            sweep = self._writes_since_sweep >= _DISK_SWEEP_INTERVAL
            if sweep:
                self._writes_since_sweep = 0
        if sweep:
            self._sweep_disk()
        return len(payload)

    def _sweep_disk(self):
        """Evict the oldest disk entries once the tier exceeds its cap."""
        try:
            with os.scandir(self.cache_dir) as scan:
                entries = [
                    (entry.stat().st_mtime, entry.path)
                    for entry in scan
                    if entry.name.endswith(".pkl") and entry.is_file()
                ]
        except OSError:
            return
        excess = len(entries) - self.max_disk_entries
        if excess <= 0:
            return
        # drop a little below the cap so back-to-back writes do not
        # trigger a full scan per sweep interval at the boundary
        excess += max(1, self.max_disk_entries // 10)
        for _, path in sorted(entries)[:excess]:
            _unlink_quietly(path)

    def __repr__(self):
        return "FittedPrefixCache(cache_dir={!r}, max_entries={}, entries={})".format(
            self.cache_dir, self.max_entries, len(self)
        )


def _unlink_quietly(path):
    try:
        os.unlink(path)
    except OSError:
        pass


# -- orphaned temp-file sweep -----------------------------------------------------

_TMP_MARKER = ".prefix-"


def _tmp_prefix():
    """The mkstemp prefix for this process's in-flight cache writes."""
    return "{}{}-".format(_TMP_MARKER, os.getpid())


def _tmp_writer_pid(name):
    """The writer pid embedded in a temp filename, or ``None``."""
    if not (name.startswith(_TMP_MARKER) and name.endswith(".tmp")):
        return None
    pid_text = name[len(_TMP_MARKER):].split("-", 1)[0]
    try:
        return int(pid_text)
    except ValueError:
        return None


def sweep_orphan_cache_tmp(cache_dir):
    """Remove ``*.tmp`` cache files left behind by killed writers.

    Disk-tier writes go through ``mkstemp`` + atomic rename, so a writer
    SIGKILLed mid-write (a crashed worker, a fold past its deadline)
    leaks its temp file forever.  Each temp filename embeds its writer's
    pid; files whose writer is dead — or whose name predates the pid
    convention — are unlinked.  Runs at cache startup alongside the shm
    plane's ``sweep_stale_segments``.  Returns the number removed.
    """
    removed = 0
    from repro.automl.shm import _pid_alive

    try:
        with os.scandir(cache_dir) as scan:
            candidates = [
                entry.name for entry in scan
                if entry.name.startswith(_TMP_MARKER) and entry.name.endswith(".tmp")
            ]
    except OSError:
        return 0
    for name in candidates:
        pid = _tmp_writer_pid(name)
        if pid == os.getpid() or (pid is not None and _pid_alive(pid)):
            continue
        _unlink_quietly(os.path.join(cache_dir, name))
        removed += 1
    return removed


# -- per-process cache resolution ------------------------------------------------

_RESOLVE_LOCK = threading.Lock()

#: config tuple -> cache instance, LRU-bounded so long-lived processes
#: running many searches (each with its own temporary disk directory)
#: do not accumulate stale caches forever
_PROCESS_CACHES = OrderedDict()
_MAX_PROCESS_CACHES = 4


def resolve_prefix_cache(cache_config):
    """The process-global cache instance for ``cache_config``.

    Fold submissions ship the tiny config tuple instead of the cache
    itself; the first fold evaluated in a process (coordinator or pool
    worker alike) builds the instance, and every later fold with the
    same config reuses it — so the LRU genuinely persists across
    candidates.  A handful of configs are kept side by side, so
    concurrent searches with different cache settings in one process do
    not evict each other's entries on every fold.
    """
    if cache_config is None:
        return None
    cache_config = tuple(cache_config)
    with _RESOLVE_LOCK:
        cache = _PROCESS_CACHES.get(cache_config)
        if cache is None:
            _, cache_dir, max_entries = cache_config
            cache = FittedPrefixCache(cache_dir=cache_dir, max_entries=max_entries)
            _PROCESS_CACHES[cache_config] = cache
        _PROCESS_CACHES.move_to_end(cache_config)
        while len(_PROCESS_CACHES) > _MAX_PROCESS_CACHES:
            _PROCESS_CACHES.popitem(last=False)
        return cache


# -- data keys -------------------------------------------------------------------


def task_content_digest(task):
    """Stable content hash of an in-memory task's data context.

    The in-memory counterpart of :func:`repro.tasks.io.task_fingerprint`
    (which hashes a *saved* task folder): every context entry is hashed
    by key and content, so two tasks with identical data share a digest
    — and may validly share cached prefixes.  The digest is memoized on
    the task object; worker-resident tasks therefore pay the hash once
    per process, not once per fold.

    Arrays are hashed as a ``dtype.str``/shape header plus their raw
    bytes: contiguous arrays feed their buffer to the hasher with zero
    copies, non-contiguous ones pay a single ``tobytes`` flatten, and
    object arrays pickle the array directly instead of round-tripping
    through ``tolist()`` (which rebuilt every row as Python lists).  The
    version tag in the seed keys the digest format itself, so a format
    change can never alias an old digest.
    """
    cached = getattr(task, "_content_digest", None)
    if cached is not None:
        return cached
    hasher = hashlib.sha256(b"repro-task-digest-v2")
    for key in sorted(task.context):
        value = task.context[key]
        hasher.update(key.encode("utf-8"))
        hasher.update(b"\0")
        if isinstance(value, np.ndarray):
            hasher.update(value.dtype.str.encode("utf-8"))
            hasher.update(str(value.shape).encode("utf-8"))
            if value.dtype.hasobject:
                hasher.update(b"|obj|")
                hasher.update(pickle.dumps(value, protocol=_PICKLE_PROTOCOL))
            else:
                hasher.update(b"|raw|")
                if value.flags.c_contiguous:
                    hasher.update(value.data)
                else:
                    hasher.update(value.tobytes())
        else:
            hasher.update(pickle.dumps(value, protocol=_PICKLE_PROTOCOL))
        hasher.update(b"\0")
    digest = hasher.hexdigest()
    try:
        task._content_digest = digest
    except AttributeError:
        pass  # exotic task objects without a writable __dict__ just re-hash
    return digest


def fold_data_key(task, train_indices):
    """Data key of one cross-validation fold: parent digest + train indices.

    Hashing the (memoized) parent-task digest with the fold's train-index
    array is equivalent to — but much cheaper than — digesting the
    materialized fold subset, because the same parent digest serves every
    fold of every candidate on the task.
    """
    indices = np.ascontiguousarray(np.asarray(train_indices))
    hasher = hashlib.sha256()
    hasher.update(task_content_digest(task).encode("utf-8"))
    hasher.update(b"|")
    hasher.update(str(indices.dtype).encode("utf-8"))
    hasher.update(indices.tobytes())
    return hasher.hexdigest()
