"""Multi-tenant search coordination: N concurrent searches, one worker fleet.

The paper's AutoBazaar deployment is a *service*: many users submit tasks
and one cluster evaluates all of their pipelines.  Every previous layer of
this reproduction gave a single :class:`~repro.automl.search.AutoBazaarSearch`
a private backend, so concurrent searches either oversubscribed the cores
(N pools on one machine) or serialized.  This module adds the missing
coordinator: a long-running :class:`FleetCoordinator` owns ONE worker pool,
one shm/pickle task data plane and one disk prefix-cache directory, and
multiplexes any number of concurrent tenant searches over them.

Scheduling is two-level:

fair share (this module)
    Fold submissions from every tenant land in per-tenant queues and are
    admitted to the shared executor by **stride scheduling with deficit
    correction**: each tenant carries a *pass* value, the tenant with the
    lowest pass is admitted next, and its pass advances by the fold's cost
    divided by the tenant's weight.  Costs are not known up front — fold
    costs are exactly the skew the work-stealing layer exists for — so a
    fold is charged an EWMA *estimate* of the tenant's recent fold cost at
    admission and the difference to its measured cost is charged back when
    it completes (the deficit correction).  An expensive tenant therefore
    consumes its share in few large folds while cheap tenants stream many
    small ones through the same workers — skew-aware fairness in the sense
    of "Skew in Parallel Query Processing" — and because the lowest pass
    always advances, no backlogged tenant starves.  Weights are
    configurable per tenant; a newly registered tenant joins at the
    current minimum pass so it owes nothing for history it did not see.

work stealing (the existing backends)
    Admitted folds enter the shared executor's single queue, where any
    idle worker picks them up — the fold-level work-stealing dispatch of
    :mod:`repro.automl.backends`, unchanged.

Admission is bounded twice: globally (``workers + max_backlog`` folds
admitted at once, so the fair-share layer keeps control of the interleave
instead of dumping every queue into the executor) and per tenant
(``max_inflight``, replacing the private ``n_pending`` window as the
tenant's concurrency cap).  Fold cancellation — a failing fold cancelling
its later siblings, pruning discarding a candidate's queue — works
per-tenant exactly as on a private backend: queued folds are cancelled in
the fair-share queue before they ever reach the executor.

Determinism: the fleet changes *where and when* folds run, never what is
reported.  Each tenant search keeps its own tuners, selector, RNG and
reorder buffer, and the sliding-window loop reports strictly in proposal
order — so a tenant's record stream is bit-identical to the same search
run solo (for seeded pipelines, pruning off), no matter how the fleet
interleaves its folds with other tenants'.  Wall-clock interleaving is of
course shared; only the *stream content* is solo-identical.
"""

import shutil
import tempfile
import threading
from collections import deque
from itertools import count

from repro.automl import shm
from repro.automl.backends import (
    ProcessBackend,
    ThreadBackend,
    _PoolBackend,
    evaluate_fold_indices,
    evaluate_fold_indices_batch,
)
from repro.automl.prefix_cache import PREFIX_CACHE_MODES, sweep_orphan_cache_tmp
from repro.telemetry.sink import emit_active

#: Pass-value charge for a tenant's first folds, before any measured cost
#: seeds the EWMA (seconds; only the ratio across tenants matters).
_DEFAULT_FOLD_COST = 0.01

#: EWMA retention for the per-tenant fold-cost estimate.
_COST_EWMA_DECAY = 0.7

_PENDING, _ADMITTED, _CANCELLED, _DONE = range(4)


class _FleetFoldFuture:
    """The future a tenant backend holds for one queued-or-running fold.

    Implements exactly the slice of the :class:`concurrent.futures.Future`
    API the pool machinery consumes (``cancel``/``cancelled``/``exception``/
    ``result``/``add_done_callback``).  While the fold waits in the
    fair-share queue the future is its own state machine (a queued fold is
    cancellable for free); once admitted it mirrors the real executor
    future it was attached to.
    """

    __slots__ = ("_lock", "_state", "_real", "_result", "_exception",
                 "_callbacks", "_cancel_requested")

    def __init__(self):
        self._lock = threading.Lock()
        self._state = _PENDING
        self._real = None
        self._result = None
        self._exception = None
        self._callbacks = []
        self._cancel_requested = False

    def _mark_admitted(self):
        """Atomically move PENDING -> ADMITTED; False if already cancelled."""
        with self._lock:
            if self._state != _PENDING:
                return False
            self._state = _ADMITTED
            return True

    def _attach(self, real):
        """Mirror the executor future the admitted fold now runs as."""
        with self._lock:
            self._real = real
            cancel_requested = self._cancel_requested
        if cancel_requested:
            real.cancel()
        real.add_done_callback(self._real_done)

    def _real_done(self, real):
        with self._lock:
            if self._state in (_DONE, _CANCELLED):
                return
            if real.cancelled():
                self._state = _CANCELLED
            else:
                self._exception = real.exception()
                if self._exception is None:
                    self._result = real.result()
                self._state = _DONE
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _fail(self, exception):
        """Complete exceptionally without a real future (submit failure)."""
        with self._lock:
            if self._state in (_DONE, _CANCELLED):
                return
            self._exception = exception
            self._state = _DONE
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def cancel(self):
        with self._lock:
            if self._state == _PENDING:
                # still queued in the fair-share layer: cancelled for free,
                # the scheduler skips it at admission time
                self._state = _CANCELLED
                callbacks, self._callbacks = self._callbacks, []
                real = None
            elif self._state == _ADMITTED:
                real = self._real
                if real is None:
                    # admitted but not yet attached (mid-launch): record the
                    # request, _attach forwards it to the real future
                    self._cancel_requested = True
                    return False
                callbacks = None
            else:
                return self._state == _CANCELLED
        if callbacks is not None:
            for callback in callbacks:
                callback(self)
            return True
        return real.cancel()

    def cancelled(self):
        with self._lock:
            return self._state == _CANCELLED

    def done(self):
        with self._lock:
            return self._state in (_DONE, _CANCELLED)

    def exception(self):
        with self._lock:
            if self._state == _DONE:
                return self._exception
        raise RuntimeError("fold has not completed yet")

    def result(self):
        with self._lock:
            if self._state == _DONE:
                if self._exception is not None:
                    raise self._exception
                return self._result
        raise RuntimeError("fold has not completed yet")

    def add_done_callback(self, callback):
        with self._lock:
            if self._state not in (_DONE, _CANCELLED):
                self._callbacks.append(callback)
                return
        callback(self)


class _FoldJob:
    """One fold submission waiting in (or admitted from) a tenant queue."""

    __slots__ = ("future", "fn", "args", "kwargs", "tenant", "estimate")

    def __init__(self, future, fn, args, kwargs, tenant):
        self.future = future
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.tenant = tenant
        self.estimate = 0.0


class _TenantState:
    """Fair-share accounting for one registered tenant."""

    def __init__(self, name, weight, max_inflight):
        self.name = name
        self.weight = float(weight)
        self.max_inflight = int(max_inflight)
        self.queue = deque()
        self.inflight = 0
        self.pass_value = 0.0
        self.cost_ewma = None
        self.active = True
        # observability counters surfaced through tenant_stats()
        self.queue_hwm = 0
        self.folds_dispatched = 0
        self.fold_seconds = 0.0
        self.plane_counts = {}
        self.seen_tasks = set()


class _TenantExecutor:
    """Executor facade handed to a tenant's pool machinery.

    ``submit`` routes into the coordinator's fair-share queue instead of a
    private executor; ``shutdown`` (called by the backend's own
    ``shutdown``) releases the tenant's registration — the shared pool
    itself outlives every tenant.
    """

    def __init__(self, fleet, state):
        self._fleet = fleet
        self._state = state

    def submit(self, fn, *args, **kwargs):
        return self._fleet._enqueue(self._state, fn, args, kwargs)

    def shutdown(self, wait=True, cancel_futures=False):
        self._fleet._release_tenant(self._state)


class TenantBackend(_PoolBackend):
    """One tenant's execution backend on a shared :class:`FleetCoordinator`.

    Behaves exactly like a private pool backend from the search loop's
    perspective — fold-level submission, completion queue, cancellation,
    fused group dispatch — but every fold goes through the coordinator's
    fair-share scheduler and the shared data plane.  Obtained from
    :meth:`FleetCoordinator.register`; pass it as the search's ``backend``.
    ``shutdown()`` releases the tenant (cancelling its queued folds), never
    the shared pool.
    """

    name = "fleet"

    def __init__(self, fleet, state):
        self._fleet = fleet
        self._state = state
        super().__init__(workers=fleet.workers)

    def _make_executor(self):
        return _TenantExecutor(self._fleet, self._state)

    def _submit_fold(self, candidate, train_indices, val_indices):
        return self._executor.submit(
            evaluate_fold_indices, candidate.template, candidate.hyperparameters,
            self._fleet._tenant_task_ref(candidate.task, self._state),
            train_indices, val_indices, cache_config=candidate.cache_config,
            capture_events=getattr(candidate, "telemetry", None) is not None,
        )

    def _submit_fold_batch(self, candidate, hyperparameters_list, train_indices, val_indices):
        return self._executor.submit(
            evaluate_fold_indices_batch, candidate.template, hyperparameters_list,
            self._fleet._tenant_task_ref(candidate.task, self._state),
            train_indices, val_indices, cache_config=candidate.cache_config,
            capture_events=getattr(candidate, "telemetry", None) is not None,
        )

    @property
    def tenant_name(self):
        return self._state.name

    @property
    def plane_counts(self):
        """This tenant's tasks shipped per transport (shm/pickle/inline)."""
        with self._fleet._lock:
            return dict(self._state.plane_counts)

    def tenant_stats(self):
        """This tenant's fair-share and data-plane counters (a fresh dict)."""
        return self._fleet._tenant_stats(self._state)

    @property
    def supervisor_stats(self):
        """The shared pool's supervision counters (``None`` unsupervised)."""
        return self._fleet.supervisor_stats

    def __repr__(self):
        return "TenantBackend(tenant={!r}, fleet={!r})".format(
            self._state.name, self._fleet
        )


class FleetCoordinator:
    """One shared worker fleet multiplexing many concurrent searches.

    Owns a single pool backend (``"process"`` by default, ``"thread"`` for
    in-process fleets), its shm/pickle data plane, and — when
    ``prefix_cache="disk"`` — one shared cache directory every tenant's
    workers read and write (:attr:`cache_dir`; pass it as the searches'
    ``cache_dir``).  :meth:`register` returns a :class:`TenantBackend` to
    run a search on; tenants come and go while the pool keeps running.

    Parameters
    ----------
    backend:
        ``"process"`` (default) or ``"thread"``.
    workers:
        Shared worker count (default: the CPU count).
    task_cache_size:
        Worker-resident task cache of the process pool, must be >= 1: the
        ship-every-fold mode (``0``) has no coordinator-side task handle
        for concurrent tenants to share, and the fleet grows the
        coordinator-side transport LRU with the tenant count anyway.
    data_plane:
        Process-pool task transport (``"shm"``/``"pickle"``), default shm.
    prefix_cache, cache_dir:
        Fitted-prefix cache mode shared by the fleet.  With ``"disk"`` and
        no ``cache_dir`` the coordinator creates (and removes on close)
        one shared directory, so all tenants' workers reuse each other's
        fitted prefixes.
    max_backlog:
        Folds admitted to the executor beyond the worker count (default:
        the worker count) — enough queued work that workers never idle
        between admissions, small enough that fair share, cancellation and
        pruning keep their grip on the interleave.
    fold_timeout, max_fold_retries:
        Process-fleet supervision knobs (see
        :class:`~repro.automl.backends.ProcessBackend`).  Setting either
        runs the whole fleet on a supervised pool: a tenant whose fold
        SIGKILLs a worker costs the fleet one worker respawn and one
        retried fold, not a ``BrokenProcessPool`` for every tenant —
        folds already running on the surviving workers are untouched.
    """

    def __init__(self, backend="process", workers=None, task_cache_size=None,
                 data_plane=None, prefix_cache="off", cache_dir=None,
                 max_backlog=None, fold_timeout=None, max_fold_retries=None):
        if prefix_cache not in PREFIX_CACHE_MODES:
            raise ValueError(
                "Unknown prefix-cache mode {!r}; expected one of {}".format(
                    prefix_cache, PREFIX_CACHE_MODES
                )
            )
        # reclaim shm segments leaked by coordinators that died without
        # their atexit hook (SIGKILL, power loss) before publishing new
        # ones — regardless of this fleet's own data plane, a previous
        # shm-plane run's leak is reclaimed here at startup
        shm.sweep_stale_segments()
        if backend == "process":
            if task_cache_size is not None and int(task_cache_size) < 1:
                raise ValueError(
                    "a fleet requires task_cache_size >= 1: the ship-every-fold "
                    "mode (0) leaves concurrent tenants nothing to share"
                )
            kwargs = {"workers": workers}
            if task_cache_size is not None:
                kwargs["task_cache_size"] = int(task_cache_size)
            if data_plane is not None:
                kwargs["data_plane"] = data_plane
            if fold_timeout is not None:
                kwargs["fold_timeout"] = fold_timeout
            if max_fold_retries is not None:
                kwargs["max_fold_retries"] = max_fold_retries
            self._pool = ProcessBackend(**kwargs)
        elif backend == "thread":
            if task_cache_size is not None or data_plane is not None:
                raise ValueError(
                    "task_cache_size/data_plane only apply to the process fleet"
                )
            if fold_timeout is not None or max_fold_retries is not None:
                raise ValueError(
                    "fold_timeout/max_fold_retries only apply to the process fleet"
                )
            self._pool = ThreadBackend(workers=workers)
        else:
            raise ValueError(
                "Unknown fleet backend {!r}; expected 'process' or 'thread'".format(backend)
            )
        self.backend = backend
        self.workers = self._pool.workers
        self.prefix_cache = prefix_cache
        self._owned_cache_dir = None
        if prefix_cache == "disk" and cache_dir is None:
            cache_dir = tempfile.mkdtemp(prefix="repro-fleet-cache-")
            self._owned_cache_dir = cache_dir
        self.cache_dir = cache_dir
        if cache_dir is not None:
            # companion of the sweep_stale_segments call above: reclaim
            # cache temp files orphaned by killed writers of earlier runs
            sweep_orphan_cache_tmp(cache_dir)
        backlog = self.workers if max_backlog is None else int(max_backlog)
        if backlog < 0:
            raise ValueError("max_backlog must be non-negative")
        self._max_admitted = self.workers + backlog
        self._lock = threading.Lock()
        # ProcessBackend's transport caches are plain OrderedDicts built
        # for one submitting search thread; N tenant threads serialize here
        self._transport_lock = threading.Lock()
        self._tenants = {}
        self._admitted = 0
        self._closed = False
        self._tenant_ids = count()

    # -- tenant lifecycle ---------------------------------------------------------

    def register(self, name=None, weight=1.0, max_inflight=None):
        """Register a tenant; returns its :class:`TenantBackend`.

        ``weight`` scales the tenant's fair share (a weight-2 tenant gets
        twice the fold throughput of a weight-1 tenant under contention);
        ``max_inflight`` caps its concurrently admitted folds (default:
        the global admission cap — effectively uncapped).
        """
        weight = float(weight)
        if not weight > 0:
            raise ValueError("tenant weight must be positive")
        with self._lock:
            if self._closed:
                raise RuntimeError("the fleet coordinator is closed")
            if name is None:
                name = "tenant-{}".format(next(self._tenant_ids))
            if name in self._tenants:
                raise ValueError("tenant {!r} is already registered".format(name))
            if max_inflight is None:
                max_inflight = self._max_admitted
            max_inflight = int(max_inflight)
            if max_inflight < 1:
                raise ValueError("max_inflight must be at least 1")
            state = _TenantState(name, weight, max_inflight)
            active = [tenant.pass_value for tenant in self._tenants.values()]
            # join at the current minimum pass: a newcomer owes nothing for
            # throughput it never consumed, and cannot monopolize either
            state.pass_value = min(active) if active else 0.0
            self._tenants[name] = state
            # the coordinator-side transport LRUs (spill payloads, shm
            # segments) must span every registered tenant's task at once,
            # or registering many tenants would evict segments with folds
            # still in flight
            cache_size = getattr(self._pool, "task_cache_size", None)
            if cache_size is not None:
                self._pool.task_cache_size = max(cache_size, len(self._tenants) + 1)
        return TenantBackend(self, state)

    def _release_tenant(self, state):
        with self._lock:
            if not state.active:
                return
            state.active = False
            self._tenants.pop(state.name, None)
            stranded = list(state.queue)
            state.queue.clear()
            admissions = self._admit_locked()
        for job in stranded:
            # queued folds of a released tenant are cancelled, which
            # completes their candidate futures through the normal
            # cancellation path; already-admitted folds finish on the pool
            job.future.cancel()
        self._launch(admissions)

    def tenants(self):
        """Names of the currently registered tenants (sorted)."""
        with self._lock:
            return sorted(self._tenants)

    # -- fair-share scheduling ----------------------------------------------------

    def _enqueue(self, state, fn, args, kwargs):
        future = _FleetFoldFuture()
        with self._lock:
            if self._closed or not state.active:
                raise RuntimeError(
                    "tenant {!r} is no longer registered with the fleet".format(state.name)
                )
            state.queue.append(_FoldJob(future, fn, args, kwargs, state))
            depth = len(state.queue) + state.inflight
            if depth > state.queue_hwm:
                state.queue_hwm = depth
            admissions = self._admit_locked()
        emit_active("fleet_queue_depth", tenant=state.name, depth=depth)
        self._launch(admissions)
        return future

    def _admit_locked(self):
        """Pick queued folds to admit (stride order); call under the lock.

        Returns the admitted jobs for :meth:`_launch` to submit *after*
        the lock is released — executor submission and done-callback
        attachment must never run under the fleet lock (a future that is
        already done runs its callbacks synchronously).
        """
        admissions = []
        while self._admitted < self._max_admitted:
            best = None
            for state in self._tenants.values():
                if not state.queue or state.inflight >= state.max_inflight:
                    continue
                if best is None or (state.pass_value, state.name) < (best.pass_value, best.name):
                    best = state
            if best is None:
                break
            job = best.queue.popleft()
            if not job.future._mark_admitted():
                continue  # cancelled while queued; costs nothing
            job.estimate = (
                best.cost_ewma if best.cost_ewma is not None else _DEFAULT_FOLD_COST
            )
            best.pass_value += job.estimate / best.weight
            best.inflight += 1
            best.folds_dispatched += 1
            self._admitted += 1
            admissions.append(job)
        return admissions

    def _launch(self, admissions):
        for job in admissions:
            emit_active(
                "fleet_admission", tenant=job.tenant.name,
                estimate=job.estimate, pass_value=job.tenant.pass_value,
            )
            try:
                real = self._pool._executor.submit(job.fn, *job.args, **job.kwargs)
            except Exception as failure:  # noqa: BLE001 - submit failures are data
                with self._lock:
                    self._retire_locked(job, None)
                job.future._fail(failure)
                continue
            # accounting first, then mirroring: by the time the tenant's
            # fold-done callback fires, the freed slot has been re-admitted
            real.add_done_callback(lambda fold, job=job: self._job_done(job, fold))
            job.future._attach(real)

    def _retire_locked(self, job, actual):
        state = job.tenant
        state.inflight -= 1
        self._admitted -= 1
        if actual is not None:
            state.fold_seconds += actual
            # deficit correction: re-charge the fold at its measured cost
            # instead of the estimate it was admitted at, so systematic
            # under/over-estimates never distort the shares
            state.pass_value += (actual - job.estimate) / state.weight
            state.cost_ewma = (
                actual if state.cost_ewma is None
                else _COST_EWMA_DECAY * state.cost_ewma + (1.0 - _COST_EWMA_DECAY) * actual
            )

    def _job_done(self, job, real):
        actual = _measured_cost(real)
        with self._lock:
            self._retire_locked(job, actual)
            admissions = self._admit_locked()
        emit_active(
            "fleet_pass_value", tenant=job.tenant.name, cost=actual,
            pass_value=job.tenant.pass_value, cost_ewma=job.tenant.cost_ewma,
        )
        self._launch(admissions)

    # -- shared data plane --------------------------------------------------------

    def _tenant_task_ref(self, task, state):
        """The transport handle for a tenant's task, with per-tenant tallies."""
        if isinstance(self._pool, ProcessBackend):
            with self._transport_lock:
                ref = self._pool._task_ref(task)
            plane = "shm" if isinstance(ref, shm.SharedTaskHandle) else "pickle"
        else:
            ref = task
            plane = "inline"
        with self._lock:
            if id(task) not in state.seen_tasks:
                state.seen_tasks.add(id(task))
                state.plane_counts[plane] = state.plane_counts.get(plane, 0) + 1
        return ref

    # -- observability ------------------------------------------------------------

    def _tenant_stats(self, state):
        with self._lock:
            return {
                "tenant": state.name,
                "weight": state.weight,
                "max_inflight": state.max_inflight,
                "folds_dispatched": state.folds_dispatched,
                "fold_seconds": state.fold_seconds,
                "queue_depth_hwm": state.queue_hwm,
                "plane_counts": dict(state.plane_counts),
            }

    def stats(self):
        """Per-tenant counters for every currently registered tenant."""
        with self._lock:
            states = list(self._tenants.values())
        return {state.name: self._tenant_stats(state) for state in states}

    @property
    def supervisor_stats(self):
        """The shared pool's supervision counters (``None`` unsupervised)."""
        return getattr(self._pool, "supervisor_stats", None)

    # -- lifecycle ----------------------------------------------------------------

    def close(self):
        """Release every tenant, the shared pool and the owned cache dir."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            states = list(self._tenants.values())
        for state in states:
            self._release_tenant(state)
        self._pool.shutdown()
        if self._owned_cache_dir is not None:
            shutil.rmtree(self._owned_cache_dir, ignore_errors=True)

    shutdown = close

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        with self._lock:
            n_tenants = len(self._tenants)
        return "FleetCoordinator(backend={!r}, workers={}, tenants={})".format(
            self.backend, self.workers, n_tenants
        )


def _measured_cost(real):
    """The completed fold's measured compute seconds, or ``None``.

    Fold payloads carry their own ``elapsed`` (worker-side compute time,
    not queue wait); batched group folds carry one payload per member and
    cost their sum.  Cancelled or crashed submissions contribute no
    measurement — their estimate stands.
    """
    if real.cancelled():
        return None
    try:
        if real.exception() is not None:
            return None
        payload = real.result()
    except Exception:  # noqa: BLE001 - an unreadable result is simply unmeasured
        return None
    if isinstance(payload, dict):
        return float(payload.get("elapsed") or 0.0)
    if isinstance(payload, list):
        return float(sum(
            member.get("elapsed") or 0.0
            for member in payload if isinstance(member, dict)
        ))
    return None
