"""AutoBazaar sessions: configuration, suite runs and reporting.

The paper describes AutoBazaar as more than the search loop: "user
interfaces for administration and configuration, loaders and configuration
for ML tasks and primitives, data stores for metadata and pipeline
evaluation results, a pipeline execution engine, and an AutoML
coordinator" (Section IV-C).  :class:`AutoBazaarSession` is that outer
layer — it resolves tuner/selector names from configuration, runs whole
suites or on-disk task folders, accumulates every evaluation in a piex
store, and renders reports.
"""

import os
import threading

from repro.automl.search import AutoBazaarSearch
from repro.explorer import PersistentPipelineStore, PipelineStore, report, summarize_store
from repro.telemetry.sink import TelemetrySink
from repro.tasks.io import load_task
from repro.tuning.selectors import get_selector
from repro.tuning.tuners import get_tuner


class AutoBazaarSession:
    """A configured AutoBazaar instance that can solve many tasks.

    Parameters
    ----------
    budget:
        Pipeline evaluations per task.
    tuner, selector:
        Short names resolved through the BTB registries (for example
        ``"gp_ei"``, ``"uniform"``, ``"ucb1"``, ``"thompson"``).
    n_splits:
        Cross-validation folds for candidate scoring.
    warm_start:
        If True, each new task's tuners are warm-started from the session's
        accumulated history (the meta-learning extension).  The default
        ``"auto"`` enables warm-starting exactly when ``store_path`` opened
        a store that already holds prior evaluations — a session pointed at
        yesterday's store automatically seeds its tuners from it, while
        fresh in-memory sessions keep the historical cold-start behaviour.
    store_path:
        Optional directory of a :class:`~repro.explorer.persistence.PersistentPipelineStore`.
        When given, every evaluation record is durably appended to the
        crash-safe JSONL segment log at that path as it is reported (a
        killed run keeps everything already evaluated), and re-opening the
        same path in a later session makes its history available for
        automatic cross-run warm-starting.
    max_seconds_per_task:
        Optional wall-clock cap per task.
    backend:
        Execution backend evaluating the proposed pipelines: ``"serial"``
        (default, reproduces the historical single-threaded loop
        record-for-record), ``"thread"`` or ``"process"``.  The pool
        backends dispatch individual cross-validation folds to workers —
        work-stealing over folds, so heterogeneous pipeline costs do not
        serialize behind stragglers.
    workers:
        Worker count for the pool backends (default: the CPU count).
    n_pending:
        Candidates kept in flight at once (default 1).  With
        ``n_pending > 1`` the sliding-window scheduler proposes a
        replacement for every completed evaluation, using the
        constant-liar strategy: pending configurations are scored with
        the worst observed score so the tuner spreads the window out, and
        the selector counts in-flight evaluations toward each template's
        trial count.  Results are reported in proposal order, so for a
        fixed ``n_pending`` the record stream is identical across
        backends for deterministic (explicitly seeded) pipelines; catalog
        default templates leave estimator ``random_state`` unseeded and
        vary run-to-run.
    schedule:
        ``"window"`` (default) for the sliding-window scheduler,
        ``"barrier"`` for the historical round-based loop (see
        :class:`~repro.automl.search.AutoBazaarSearch`).
    task_cache_size:
        Worker-resident dataset cache knob of the process backend:
        tasks kept resident per worker; ``0`` ships every fold's data,
        ``None`` keeps the backend default.
    data_plane:
        Process-backend task transport: ``"shm"`` (zero-copy shared
        memory with automatic per-task pickle fallback) or ``"pickle"``
        (the historical on-disk hand-off); ``None`` keeps the backend
        default.  See :mod:`repro.automl.shm`.
    batch_eval:
        When True, same-template candidates proposed in one scheduler
        burst are evaluated as fused batches (shared preprocessing
        prefix, batched estimator fits where the learner supports it)
        without changing scores or record order.  See
        :mod:`repro.automl.batch_eval`.
    prefix_cache:
        Fitted-prefix cache mode (``"off"``/``"mem"``/``"disk"``, see
        :mod:`repro.automl.prefix_cache`): memoize fitted preprocessing
        prefixes so candidates sharing a prefix and a fold do not refit
        it.  ``"disk"`` shares fitted prefixes across process-backend
        workers through a content-addressed store in ``cache_dir``.
    cache_dir:
        Directory of the shared disk tier; a temporary per-search
        directory when omitted.
    prune_margin:
        Fold-level early-discard margin (non-negative float), or
        ``None`` (default) for exhaustive evaluation.  See
        :class:`~repro.automl.backends.PruneController`; enabling it
        trades the bit-identical record stream for throughput.
    telemetry:
        Structured-event recording (see :mod:`repro.telemetry`): a
        directory path opens one :class:`~repro.telemetry.sink.TelemetrySink`
        owned by the session (closed with it) and shared by every task it
        solves — including all tenants of :meth:`solve_fleet`, which
        interleave into one totally ordered stream.  A ``TelemetrySink``
        instance is used as-is (caller-owned); ``None`` (default) is off.
    fold_timeout, max_fold_retries:
        Fault-tolerance knobs of the process backend (supervised worker
        pool, see :class:`~repro.automl.backends.ProcessBackend`):
        deadline per fold in seconds, and crash/timeout retries per fold
        before the fold is recorded as a failed evaluation.  ``None``
        (default) runs unsupervised.
    """

    def __init__(self, budget=20, tuner="gp_ei", selector="ucb1", n_splits=3,
                 random_state=None, warm_start="auto", max_seconds_per_task=None,
                 backend="serial", workers=None, n_pending=1, schedule="window",
                 task_cache_size=None, store_path=None, prefix_cache="off",
                 cache_dir=None, prune_margin=None, data_plane=None, batch_eval=False,
                 telemetry=None, fold_timeout=None, max_fold_retries=None):
        self.budget = budget
        self.tuner_class = get_tuner(tuner)
        self.selector_class = get_selector(selector)
        self.n_splits = n_splits
        self.random_state = random_state
        self.max_seconds_per_task = max_seconds_per_task
        self.backend = backend
        self.workers = workers
        self.n_pending = n_pending
        self.schedule = schedule
        self.task_cache_size = task_cache_size
        self.store_path = store_path
        self.prefix_cache = prefix_cache
        self.cache_dir = cache_dir
        self.prune_margin = prune_margin
        self.data_plane = data_plane
        self.batch_eval = bool(batch_eval)
        self.fold_timeout = fold_timeout
        self.max_fold_retries = max_fold_retries
        self._owned_sink = None
        if telemetry is not None and not isinstance(telemetry, TelemetrySink):
            telemetry = self._owned_sink = TelemetrySink(str(telemetry))
        self.telemetry = telemetry
        if store_path is not None:
            self.store = PersistentPipelineStore(store_path)
        else:
            self.store = PipelineStore()
        if warm_start == "auto":
            # harvest automatically when an opened persistent store already
            # holds history from previous runs; an in-memory session keeps
            # the historical (cold-start) default
            warm_start = store_path is not None and len(self.store) > 0
        self.warm_start = bool(warm_start)
        self.results = []

    # -- solving ------------------------------------------------------------------

    def solve(self, task, test_task=None):
        """Run the AutoBazaar search on one task and record the results."""
        searcher = AutoBazaarSearch(
            tuner_class=self.tuner_class,
            selector_class=self.selector_class,
            n_splits=self.n_splits,
            random_state=self.random_state,
            store=self.store,
            warm_start_store=self.store if self.warm_start else None,
            backend=self.backend,
            workers=self.workers,
            n_pending=self.n_pending,
            schedule=self.schedule,
            task_cache_size=self.task_cache_size,
            prefix_cache=self.prefix_cache,
            cache_dir=self.cache_dir,
            prune_margin=self.prune_margin,
            data_plane=self.data_plane,
            batch_eval=self.batch_eval,
            telemetry=self.telemetry,
            fold_timeout=self.fold_timeout,
            max_fold_retries=self.max_fold_retries,
        )
        result = searcher.search(
            task, budget=self.budget, test_task=test_task,
            max_seconds=self.max_seconds_per_task,
        )
        self.results.append(result)
        return result

    def solve_suite(self, suite):
        """Solve every task of a suite; returns the list of search results."""
        return [self.solve(task) for task in suite]

    def solve_fleet(self, tasks, weights=None):
        """Solve several tasks *concurrently* on one shared worker fleet.

        Builds a :class:`~repro.automl.fleet.FleetCoordinator` from the
        session's backend configuration (``"serial"`` is promoted to
        ``"process"`` — a fleet needs a pool), registers one tenant per
        task with the given fair-share ``weights`` (default: equal), and
        runs every search in its own thread over the shared pool, data
        plane and prefix cache.  All records land in the session's (thread
        -safe) store.  Results are returned in task order, each carrying
        its tenant's ``fleet_stats``; every tenant's record stream is
        bit-identical to the same search run solo (for deterministic,
        seeded pipelines), only wall-clock interleaving is shared.
        """
        from repro.automl.fleet import FleetCoordinator

        tasks = list(tasks)
        if not tasks:
            return []
        if weights is None:
            weights = [1.0] * len(tasks)
        weights = [float(weight) for weight in weights]
        if len(weights) != len(tasks):
            raise ValueError(
                "expected one weight per task, got {} weights for {} tasks".format(
                    len(weights), len(tasks)
                )
            )
        backend = self.backend
        if backend in (None, "serial"):
            backend = "process"
        if backend not in ("process", "thread"):
            raise ValueError(
                "solve_fleet requires a 'process' or 'thread' backend name, "
                "not {!r}".format(backend)
            )
        fleet = FleetCoordinator(
            backend=backend,
            workers=self.workers,
            task_cache_size=self.task_cache_size,
            data_plane=self.data_plane,
            prefix_cache=self.prefix_cache,
            cache_dir=self.cache_dir,
            fold_timeout=self.fold_timeout,
            max_fold_retries=self.max_fold_retries,
        )
        results = [None] * len(tasks)
        failures = []
        try:
            handles = [
                fleet.register(
                    name="t{}-{}".format(index, task.name), weight=weight
                )
                for index, (task, weight) in enumerate(zip(tasks, weights))
            ]

            def run(index, task, handle):
                searcher = AutoBazaarSearch(
                    tuner_class=self.tuner_class,
                    selector_class=self.selector_class,
                    n_splits=self.n_splits,
                    random_state=self.random_state,
                    store=self.store,
                    warm_start_store=self.store if self.warm_start else None,
                    backend=handle,
                    n_pending=self.n_pending,
                    schedule=self.schedule,
                    prefix_cache=self.prefix_cache,
                    cache_dir=fleet.cache_dir,
                    prune_margin=self.prune_margin,
                    batch_eval=self.batch_eval,
                    telemetry=self.telemetry,
                )
                try:
                    results[index] = searcher.search(
                        task, budget=self.budget,
                        max_seconds=self.max_seconds_per_task,
                    )
                except BaseException as failure:  # noqa: BLE001 - re-raised below
                    failures.append(failure)

            threads = [
                threading.Thread(
                    target=run, args=(index, task, handle),
                    name="fleet-{}".format(handle.tenant_name), daemon=True,
                )
                for index, (task, handle) in enumerate(zip(tasks, handles))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            fleet.close()
        if failures:
            raise failures[0]
        self.results.extend(results)
        return results

    def solve_directory(self, directory):
        """Load a task folder produced by :func:`repro.tasks.io.save_task` and solve it."""
        task = load_task(directory)
        return self.solve(task)

    # -- reporting ----------------------------------------------------------------

    def summary(self):
        """Structured summary of everything evaluated in this session."""
        summary = summarize_store(self.store)
        summary["n_solved_tasks"] = len(self.results)
        summary["test_scores"] = {
            result.task_name: result.test_score for result in self.results
        }
        summary["best_templates"] = {
            result.task_name: result.best_template for result in self.results
        }
        return summary

    def report(self, title="AutoBazaar session"):
        """Human-readable text report of the session."""
        return report(self.store, title=title)

    def save_store(self, path):
        """Persist every evaluation document to a JSON file."""
        self.store.dump_json(path)
        return path

    def close(self):
        """Release the session's store handle (and its cross-process locks).

        Long-lived processes creating many persistent sessions should
        close (or ``with``-manage) each one: an open handle holds file
        descriptors and a shared lock that keeps later opens of the same
        store in the conservative shared mode (no repair/compaction).
        No-op for in-memory sessions.
        """
        self.store.close()
        if self._owned_sink is not None:
            self._owned_sink.close()
            self._owned_sink = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return "AutoBazaarSession(budget={}, solved={}, evaluated={})".format(
            self.budget, len(self.results), len(self.store)
        )


def run_from_directory(task_directory, budget=20, tuner="gp_ei", selector="ucb1",
                       n_splits=3, random_state=0, output=None, backend="serial",
                       workers=None, n_pending=1, schedule="window", task_cache_size=None,
                       store_path=None, warm_start="auto", run_dir=None, checkpoint_every=1,
                       prefix_cache="off", cache_dir=None, prune_margin=None,
                       data_plane=None, batch_eval=False, telemetry=None,
                       fold_timeout=None, max_fold_retries=None):
    """One-shot helper behind the command-line interface.

    Loads the task stored in ``task_directory``, runs a search, optionally
    writes the evaluation store to ``output``, and returns the session.

    With ``store_path`` the records are durably appended to a persistent
    store (and automatically warm-start from any history already in it);
    with ``run_dir`` the search runs as a resumable checkpointed
    :class:`~repro.automl.checkpoint.ExperimentRun` whose record log and
    snapshots live inside ``run_dir`` — a killed run is continued with
    ``python -m repro.automl resume <run_dir>``.  When both are given, the
    store at ``store_path`` serves as the (frozen) warm-start history and
    the run's own records land in ``run_dir``.
    """
    if not os.path.isdir(task_directory):
        raise FileNotFoundError("Task directory {!r} does not exist".format(task_directory))
    if telemetry in (None, "off"):
        telemetry = None
    elif telemetry == "run-dir" and run_dir is None:
        raise ValueError(
            "--telemetry run-dir requires --run-dir: there is no run directory "
            "to put the event stream in; pass an explicit path instead"
        )
    if run_dir is not None:
        from repro.automl.checkpoint import ExperimentRun

        if prune_margin is not None:
            raise ValueError(
                "--prune-margin cannot be combined with --run-dir: pruning "
                "decisions depend on fold-completion timing, so a pruned record "
                "stream is not exactly replayable and the run would be "
                "unresumable"
            )
        warm_source = None
        if warm_start is True and store_path is None:
            raise ValueError(
                "warm_start=True with run_dir requires store_path: a checkpointed "
                "run freezes its warm-start history from the shared store, and "
                "there is no store to harvest from"
            )
        if warm_start is not False and store_path is not None:
            candidate = PersistentPipelineStore(store_path)
            if len(candidate) > 0 or warm_start is True:
                warm_source = candidate
            else:
                # empty store under "auto": cold start -- release the
                # handle (and its shared lock) instead of holding it for
                # the whole search
                candidate.close()
        try:
            run = ExperimentRun.create(
                run_dir, task_directory=task_directory, budget=budget, tuner=tuner,
                selector=selector, n_splits=n_splits, random_state=random_state,
                schedule=schedule, n_pending=n_pending,
                checkpoint_every=checkpoint_every, warm_start_source=warm_source,
            )
        finally:
            # on success the history is frozen inside the run directory; on
            # failure the handle must not outlive the call either
            if warm_source is not None:
                warm_source.close()
        result = run.execute(backend=backend, workers=workers,
                             task_cache_size=task_cache_size,
                             prefix_cache=prefix_cache, cache_dir=cache_dir,
                             data_plane=data_plane, batch_eval=batch_eval,
                             telemetry=telemetry, fold_timeout=fold_timeout,
                             max_fold_retries=max_fold_retries)
        # hand back the familiar session surface (report/summary/save_store)
        # wrapped around the run's durable store and result.  The store is
        # the run's own record log: query and close() it, but solving more
        # tasks into it would push the log past the run's budget and make
        # the run unresumable.
        session = AutoBazaarSession(
            budget=budget, tuner=tuner, selector=selector, n_splits=n_splits,
            random_state=random_state, warm_start=False, backend=backend,
            workers=workers, n_pending=n_pending, schedule=schedule,
            task_cache_size=task_cache_size,
        )
        session.store = run.store
        session.results.append(result)
    else:
        session = AutoBazaarSession(
            budget=budget, tuner=tuner, selector=selector, n_splits=n_splits,
            random_state=random_state, backend=backend, workers=workers,
            n_pending=n_pending, schedule=schedule, task_cache_size=task_cache_size,
            store_path=store_path, warm_start=warm_start, prefix_cache=prefix_cache,
            cache_dir=cache_dir, prune_margin=prune_margin, data_plane=data_plane,
            batch_eval=batch_eval, telemetry=telemetry, fold_timeout=fold_timeout,
            max_fold_retries=max_fold_retries,
        )
        session.solve_directory(task_directory)
    if output:
        session.save_store(output)
    return session


def run_fleet_from_directories(task_directories, budget=20, tuner="gp_ei", selector="ucb1",
                               n_splits=3, random_state=0, output=None, backend="process",
                               workers=None, n_pending=1, schedule="window",
                               task_cache_size=None, store_path=None, warm_start="auto",
                               prefix_cache="off", cache_dir=None, prune_margin=None,
                               data_plane=None, batch_eval=False, weights=None,
                               telemetry=None, fold_timeout=None, max_fold_retries=None):
    """Fleet-mode twin of :func:`run_from_directory` behind ``--fleet``.

    Loads every task folder, solves them *concurrently* as tenants of one
    shared :class:`~repro.automl.fleet.FleetCoordinator`, optionally dumps
    the combined store to ``output``, and returns the session (results in
    task-directory order).  ``weights`` sets the tenants' fair shares
    (default: equal).  The serial backend name is promoted to ``process``.
    """
    for task_directory in task_directories:
        if not os.path.isdir(task_directory):
            raise FileNotFoundError(
                "Task directory {!r} does not exist".format(task_directory)
            )
    if backend in (None, "serial"):
        backend = "process"
    if telemetry in (None, "off"):
        telemetry = None
    elif telemetry == "run-dir":
        raise ValueError(
            "--telemetry run-dir requires --run-dir, which fleet mode does not "
            "use; pass an explicit path instead"
        )
    session = AutoBazaarSession(
        budget=budget, tuner=tuner, selector=selector, n_splits=n_splits,
        random_state=random_state, backend=backend, workers=workers,
        n_pending=n_pending, schedule=schedule, task_cache_size=task_cache_size,
        store_path=store_path, warm_start=warm_start, prefix_cache=prefix_cache,
        cache_dir=cache_dir, prune_margin=prune_margin, data_plane=data_plane,
        batch_eval=batch_eval, telemetry=telemetry, fold_timeout=fold_timeout,
        max_fold_retries=max_fold_retries,
    )
    tasks = [load_task(task_directory) for task_directory in task_directories]
    session.solve_fleet(tasks, weights=weights)
    if output:
        session.save_store(output)
    return session
