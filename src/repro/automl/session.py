"""AutoBazaar sessions: configuration, suite runs and reporting.

The paper describes AutoBazaar as more than the search loop: "user
interfaces for administration and configuration, loaders and configuration
for ML tasks and primitives, data stores for metadata and pipeline
evaluation results, a pipeline execution engine, and an AutoML
coordinator" (Section IV-C).  :class:`AutoBazaarSession` is that outer
layer — it resolves tuner/selector names from configuration, runs whole
suites or on-disk task folders, accumulates every evaluation in a piex
store, and renders reports.
"""

import os

from repro.automl.search import AutoBazaarSearch
from repro.explorer import PipelineStore, report, summarize_store
from repro.tasks.io import load_task
from repro.tuning.selectors import get_selector
from repro.tuning.tuners import get_tuner


class AutoBazaarSession:
    """A configured AutoBazaar instance that can solve many tasks.

    Parameters
    ----------
    budget:
        Pipeline evaluations per task.
    tuner, selector:
        Short names resolved through the BTB registries (for example
        ``"gp_ei"``, ``"uniform"``, ``"ucb1"``, ``"thompson"``).
    n_splits:
        Cross-validation folds for candidate scoring.
    warm_start:
        If True, each new task's tuners are warm-started from the session's
        own accumulated history (the meta-learning extension).
    max_seconds_per_task:
        Optional wall-clock cap per task.
    backend:
        Execution backend evaluating the proposed pipelines: ``"serial"``
        (default, reproduces the historical single-threaded loop
        record-for-record), ``"thread"`` or ``"process"``.  The pool
        backends dispatch individual cross-validation folds to workers —
        work-stealing over folds, so heterogeneous pipeline costs do not
        serialize behind stragglers.
    workers:
        Worker count for the pool backends (default: the CPU count).
    n_pending:
        Candidates kept in flight at once (default 1).  With
        ``n_pending > 1`` the sliding-window scheduler proposes a
        replacement for every completed evaluation, using the
        constant-liar strategy: pending configurations are scored with
        the worst observed score so the tuner spreads the window out, and
        the selector counts in-flight evaluations toward each template's
        trial count.  Results are reported in proposal order, so for a
        fixed ``n_pending`` the record stream is identical across
        backends for deterministic (explicitly seeded) pipelines; catalog
        default templates leave estimator ``random_state`` unseeded and
        vary run-to-run.
    schedule:
        ``"window"`` (default) for the sliding-window scheduler,
        ``"barrier"`` for the historical round-based loop (see
        :class:`~repro.automl.search.AutoBazaarSearch`).
    task_cache_size:
        Worker-resident dataset cache knob of the process backend:
        tasks kept resident per worker; ``0`` ships every fold's data,
        ``None`` keeps the backend default.
    """

    def __init__(self, budget=20, tuner="gp_ei", selector="ucb1", n_splits=3,
                 random_state=None, warm_start=False, max_seconds_per_task=None,
                 backend="serial", workers=None, n_pending=1, schedule="window",
                 task_cache_size=None):
        self.budget = budget
        self.tuner_class = get_tuner(tuner)
        self.selector_class = get_selector(selector)
        self.n_splits = n_splits
        self.random_state = random_state
        self.warm_start = warm_start
        self.max_seconds_per_task = max_seconds_per_task
        self.backend = backend
        self.workers = workers
        self.n_pending = n_pending
        self.schedule = schedule
        self.task_cache_size = task_cache_size
        self.store = PipelineStore()
        self.results = []

    # -- solving ------------------------------------------------------------------

    def solve(self, task, test_task=None):
        """Run the AutoBazaar search on one task and record the results."""
        searcher = AutoBazaarSearch(
            tuner_class=self.tuner_class,
            selector_class=self.selector_class,
            n_splits=self.n_splits,
            random_state=self.random_state,
            store=self.store,
            warm_start_store=self.store if self.warm_start else None,
            backend=self.backend,
            workers=self.workers,
            n_pending=self.n_pending,
            schedule=self.schedule,
            task_cache_size=self.task_cache_size,
        )
        result = searcher.search(
            task, budget=self.budget, test_task=test_task,
            max_seconds=self.max_seconds_per_task,
        )
        self.results.append(result)
        return result

    def solve_suite(self, suite):
        """Solve every task of a suite; returns the list of search results."""
        return [self.solve(task) for task in suite]

    def solve_directory(self, directory):
        """Load a task folder produced by :func:`repro.tasks.io.save_task` and solve it."""
        task = load_task(directory)
        return self.solve(task)

    # -- reporting ----------------------------------------------------------------

    def summary(self):
        """Structured summary of everything evaluated in this session."""
        summary = summarize_store(self.store)
        summary["n_solved_tasks"] = len(self.results)
        summary["test_scores"] = {
            result.task_name: result.test_score for result in self.results
        }
        summary["best_templates"] = {
            result.task_name: result.best_template for result in self.results
        }
        return summary

    def report(self, title="AutoBazaar session"):
        """Human-readable text report of the session."""
        return report(self.store, title=title)

    def save_store(self, path):
        """Persist every evaluation document to a JSON file."""
        self.store.dump_json(path)
        return path

    def __repr__(self):
        return "AutoBazaarSession(budget={}, solved={}, evaluated={})".format(
            self.budget, len(self.results), len(self.store)
        )


def run_from_directory(task_directory, budget=20, tuner="gp_ei", selector="ucb1",
                       n_splits=3, random_state=0, output=None, backend="serial",
                       workers=None, n_pending=1, schedule="window", task_cache_size=None):
    """One-shot helper behind the command-line interface.

    Loads the task stored in ``task_directory``, runs a search, optionally
    writes the evaluation store to ``output``, and returns the session.
    """
    if not os.path.isdir(task_directory):
        raise FileNotFoundError("Task directory {!r} does not exist".format(task_directory))
    session = AutoBazaarSession(
        budget=budget, tuner=tuner, selector=selector, n_splits=n_splits,
        random_state=random_state, backend=backend, workers=workers,
        n_pending=n_pending, schedule=schedule, task_cache_size=task_cache_size,
    )
    session.solve_directory(task_directory)
    if output:
        session.save_store(output)
    return session
