"""Supervised worker pool: fold deadlines, worker respawn, retry + quarantine.

The plain :class:`~concurrent.futures.ProcessPoolExecutor` behind the
process backend has a brittle failure mode for a long-running AutoML
service: one SIGKILLed worker breaks the *whole pool* (every pending
future fails with ``BrokenProcessPool`` and the executor refuses new
work), and a hung fold — a native-code deadlock, a runaway fit — stalls
the sliding-window search forever because nothing enforces a deadline.

:class:`SupervisedWorkerPool` is a drop-in executor (``submit`` /
``shutdown`` with real :class:`concurrent.futures.Future` objects) that
owns its worker processes directly, one task pipe and one result pipe
per worker, so a killed worker corrupts only its own channels:

* **liveness over the existing result channel** — each worker runs a
  heartbeat thread that periodically sends a liveness message on its
  result pipe (no second IPC mechanism), plus an explicit ``started``
  message when it picks up a fold;
* **fold deadlines** — a supervisor thread tracks how long each
  dispatched fold has been running; past ``fold_timeout`` the offending
  worker is SIGKILLed and the fold handled like any worker death;
* **pool rebuild** — a dead worker (crash, kill, deadline) is detected
  through its process sentinel and replaced with a freshly spawned
  worker immediately; the in-flight fold of the dead worker is requeued
  while folds on the surviving workers keep running — the rebuild is a
  per-worker respawn, never an executor-wide collapse;
* **retry with exponential backoff + poison-fold quarantine** — a
  requeued fold waits ``retry_backoff * 2**(attempt-1)`` seconds, and a
  fold that crashes its worker more than ``max_fold_retries`` times is
  completed with a :class:`WorkerCrashError` (or
  :class:`FoldTimeoutError`), which the pool machinery records as a
  failed evaluation through the existing ``record_failure`` path.

Determinism: folds are pure functions of their submission, so a retried
fold returns the identical payload the first attempt would have — only
the *final* outcome ever reaches the candidate future, intermediate
crashed attempts are invisible to the record stream (and to the
selector's crash quarantine).  Fold payloads flagged ``retriable`` (a
worker that could not materialize its task because a shared-memory
segment vanished) are also retried here, after giving the backend's
fault listener a chance to re-publish the segment.
"""

import heapq
import os
import signal
import threading
import time
import traceback
from collections import deque
from concurrent.futures import Future
from itertools import count
from multiprocessing import connection as _mp_connection
from multiprocessing import get_context

from repro.telemetry.sink import emit_active

#: Crash retries per fold before quarantine (one retry for transients).
DEFAULT_MAX_FOLD_RETRIES = 1

#: Base of the exponential retry backoff (seconds).
DEFAULT_RETRY_BACKOFF = 0.05

#: Worker heartbeat period on the result channel (seconds).
DEFAULT_HEARTBEAT_SECONDS = 1.0

#: Supervisor poll tick when nothing else bounds the wait (seconds).
_TICK_SECONDS = 0.5

#: Consecutive worker-initializer failures before the pool gives up.
_MAX_INIT_FAILURES = 3

#: Seconds granted to workers to exit cleanly at shutdown before SIGKILL.
_JOIN_SECONDS = 5.0


class WorkerCrashError(RuntimeError):
    """The worker process died while evaluating this fold (post-retry)."""


class FoldTimeoutError(RuntimeError):
    """The fold exceeded the configured deadline (post-retry)."""


def _worker_main(task_conn, result_conn, initializer, initargs, heartbeat_seconds):
    """Worker process main loop: recv a fold job, run it, send the payload.

    All sends (results, the ``started`` marker and the heartbeat thread's
    liveness messages) share one lock over the worker's result pipe.  A
    send failure means the coordinator is gone, so the worker exits hard
    rather than computing for nobody.
    """
    from repro.automl import faultinject

    send_lock = threading.Lock()

    def send(message):
        try:
            with send_lock:
                result_conn.send(message)
        except Exception:  # noqa: BLE001 - the coordinator vanished
            os._exit(1)

    try:
        if initializer is not None:
            initializer(*initargs)
        else:
            # the initializer normally arms the fault plan; without one
            # the env-configured hook still has to reach this worker
            faultinject.install_from_env()
    except BaseException:  # noqa: BLE001 - init failures are reported, not raised
        send(("init_failed", traceback.format_exc()))
        return

    current = {"job": None}
    stop = threading.Event()

    def beat():
        while not stop.wait(heartbeat_seconds):
            send(("heartbeat", current["job"]))

    if heartbeat_seconds and heartbeat_seconds > 0:
        threading.Thread(target=beat, name="worker-heartbeat", daemon=True).start()
    send(("ready",))

    while True:
        try:
            message = task_conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        job_id, fn, args, kwargs = message
        current["job"] = job_id
        send(("started", job_id))
        try:
            result = fn(*args, **kwargs)
        except BaseException as failure:  # noqa: BLE001 - shipped back, never fatal here
            try:
                import pickle

                pickle.dumps(failure)
            except Exception:  # noqa: BLE001 - unpicklable exceptions degrade
                failure = RuntimeError(repr(failure))
            current["job"] = None
            send(("error", job_id, failure))
        else:
            current["job"] = None
            send(("done", job_id, result))
    stop.set()


class _Worker:
    """Coordinator-side bookkeeping for one worker process."""

    __slots__ = ("process", "task_conn", "result_conn", "job", "deadline",
                 "ready", "killing", "last_heartbeat")

    def __init__(self, process, task_conn, result_conn):
        self.process = process
        self.task_conn = task_conn
        self.result_conn = result_conn
        self.job = None
        self.deadline = None
        self.ready = False
        self.killing = None  # why this worker was deliberately killed
        self.last_heartbeat = time.monotonic()


class _Job:
    """One submitted fold: the callable, its future and its retry state."""

    __slots__ = ("id", "fn", "args", "kwargs", "future", "attempts",
                 "started", "timed_out")

    def __init__(self, job_id, fn, args, kwargs, future):
        self.id = job_id
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.future = future
        self.attempts = 0
        self.started = False  # future moved to RUNNING (first dispatch)
        self.timed_out = False


def _payload_retriable(result):
    """Whether a fold payload reports a retriable infrastructure failure."""
    if isinstance(result, dict):
        return bool(result.get("retriable")) and bool(result.get("error"))
    if isinstance(result, list) and result:
        return _payload_retriable(result[0])
    return False


class SupervisedWorkerPool:
    """A process pool with per-fold deadlines, respawn and fold retry.

    Parameters
    ----------
    max_workers:
        Worker process count.
    initializer, initargs:
        Run once in every (re)spawned worker, exactly like the
        ``ProcessPoolExecutor`` initializer.
    fold_timeout:
        Seconds a dispatched fold may run before its worker is killed
        and the fold retried; ``None`` disables deadline enforcement.
    max_fold_retries:
        Crash/timeout retries per fold before it is quarantined as a
        failed evaluation.
    retry_backoff:
        Base of the exponential backoff between retries (seconds).
    heartbeat_seconds:
        Worker liveness period on the result channel; ``0`` disables the
        heartbeat thread (death detection still works via sentinels).
    """

    def __init__(self, max_workers, initializer=None, initargs=(),
                 fold_timeout=None, max_fold_retries=DEFAULT_MAX_FOLD_RETRIES,
                 retry_backoff=DEFAULT_RETRY_BACKOFF,
                 heartbeat_seconds=DEFAULT_HEARTBEAT_SECONDS):
        self.max_workers = int(max_workers)
        if self.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.fold_timeout = None if fold_timeout is None else float(fold_timeout)
        if self.fold_timeout is not None and not self.fold_timeout > 0:
            raise ValueError("fold_timeout must be positive")
        self.max_fold_retries = int(max_fold_retries)
        if self.max_fold_retries < 0:
            raise ValueError("max_fold_retries must be non-negative")
        self.retry_backoff = float(retry_backoff)
        self.heartbeat_seconds = heartbeat_seconds
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._context = get_context()
        self._lock = threading.RLock()
        self._queue = deque()
        self._delayed = []  # heap of (ready_time, tiebreak, job)
        self._jobs = {}  # job_id -> _Job, queued/delayed/running
        self._workers = {}  # sentinel -> _Worker
        self._ids = count()
        self._delay_seq = count()
        self._closed = False
        self._broken = None  # message once the pool gave up (init failures)
        self._init_failures = 0
        self._fault_listener = None
        #: Supervision counters: worker deaths, retries, rebuilds, timeouts.
        self.stats = {"workers_died": 0, "folds_retried": 0,
                      "folds_timed_out": 0, "pools_rebuilt": 0,
                      "folds_quarantined": 0}
        self._wake_r, self._wake_w = os.pipe()
        for _ in range(self.max_workers):
            self._spawn_worker()
        self._thread = threading.Thread(
            target=self._supervise, name="pool-supervisor", daemon=True
        )
        self._thread.start()

    # -- public executor API ------------------------------------------------------

    def submit(self, fn, *args, **kwargs):
        """Schedule ``fn(*args, **kwargs)`` on the pool; returns a Future."""
        future = Future()
        with self._lock:
            if self._closed:
                raise RuntimeError("cannot schedule new futures after shutdown")
            if self._broken is not None:
                raise RuntimeError(self._broken)
            job = _Job(next(self._ids), fn, args, kwargs, future)
            self._jobs[job.id] = job
            self._queue.append(job)
        self._wake()
        return future

    def set_fault_listener(self, listener):
        """Install a callback invoked before every fold retry.

        The backend uses it to repair the data plane (re-publish shm
        segments yanked out from under the workers) so the retried fold
        can actually succeed.  Exceptions are swallowed — a failed repair
        just means the retry fails like the original attempt.
        """
        self._fault_listener = listener

    def shutdown(self, wait=True, cancel_futures=False):
        """Stop accepting work; optionally cancel queued folds and wait."""
        with self._lock:
            if self._closed:
                if wait:
                    self._join(block=True)
                return
            self._closed = True
            cancelled = []
            if cancel_futures:
                cancelled = [job for job in self._jobs.values()
                             if job.future.cancel()]
                for job in cancelled:
                    self._jobs.pop(job.id, None)
                self._queue = deque(
                    job for job in self._queue if job.id in self._jobs
                )
                self._delayed = [
                    entry for entry in self._delayed if entry[2].id in self._jobs
                ]
                heapq.heapify(self._delayed)
        self._wake()
        if wait:
            self._join(block=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown(wait=True)
        return False

    def __repr__(self):
        return "SupervisedWorkerPool(max_workers={}, fold_timeout={})".format(
            self.max_workers, self.fold_timeout
        )

    # -- worker lifecycle ---------------------------------------------------------

    def _spawn_worker(self):
        task_r, task_w = self._context.Pipe(duplex=False)
        result_r, result_w = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=_worker_main,
            args=(task_r, result_w, self._initializer, self._initargs,
                  self.heartbeat_seconds),
            name="supervised-worker",
            daemon=True,
        )
        process.start()
        # the parent keeps only its own ends, so a dead worker's result
        # pipe reads EOF instead of blocking forever
        task_r.close()
        result_w.close()
        worker = _Worker(process, task_w, result_r)
        self._workers[process.sentinel] = worker
        return worker

    def _on_worker_death(self, worker, reason=None):
        """Remove a dead worker, requeue its fold, respawn a replacement."""
        with self._lock:
            live = self._workers.pop(worker.process.sentinel, None)
            if live is None:
                return  # already handled (sentinel + EOF both fired)
            job, worker.job = worker.job, None
            reason = reason or worker.killing or "crash"
            self.stats["workers_died"] += 1
            pid = worker.process.pid
        for conn in (worker.task_conn, worker.result_conn):
            try:
                conn.close()
            except OSError:
                pass
        worker.process.join(timeout=0.1)
        emit_active("worker_died", worker=pid, reason=reason,
                    fold_job=job.id if job is not None else None)
        if job is not None:
            self._retry_or_quarantine(job, reason)
        with self._lock:
            rebuild = not self._closed and self._broken is None
        if rebuild:
            replacement = self._spawn_worker()
            self.stats["pools_rebuilt"] += 1
            emit_active("pool_rebuilt", dead_worker=pid,
                        new_worker=replacement.process.pid,
                        workers=self.max_workers)

    # -- retry / quarantine -------------------------------------------------------

    def _retry_or_quarantine(self, job, reason):
        if job.attempts >= self.max_fold_retries:
            self.stats["folds_quarantined"] += 1
            attempts = job.attempts + 1
            if job.timed_out or reason == "timeout":
                error = FoldTimeoutError(
                    "fold exceeded the {:g}s fold deadline "
                    "({} attempts)".format(self.fold_timeout, attempts)
                )
            else:
                error = WorkerCrashError(
                    "worker process died while evaluating this fold "
                    "({} attempts)".format(attempts)
                )
            with self._lock:
                self._jobs.pop(job.id, None)
            job.future.set_exception(error)
            return
        job.attempts += 1
        self.stats["folds_retried"] += 1
        delay = self.retry_backoff * (2 ** (job.attempts - 1))
        emit_active("fold_retried", fold_job=job.id, attempt=job.attempts,
                    reason=reason, backoff_seconds=delay)
        listener = self._fault_listener
        if listener is not None:
            try:
                listener()
            except Exception:  # noqa: BLE001 - a failed repair fails the retry, not us
                pass
        with self._lock:
            heapq.heappush(
                self._delayed,
                (time.monotonic() + delay, next(self._delay_seq), job),
            )

    def _mark_broken(self, message):
        """Init failures exhausted the respawn budget: fail everything."""
        with self._lock:
            self._broken = message
            jobs = list(self._jobs.values())
            self._jobs.clear()
            self._queue.clear()
            self._delayed = []
        for job in jobs:
            if not job.future.cancelled():
                try:
                    job.future.set_exception(RuntimeError(message))
                except Exception:  # noqa: BLE001 - already resolved
                    pass

    # -- supervisor thread --------------------------------------------------------

    def _wake(self):
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _idle_worker_locked(self):
        for worker in self._workers.values():
            if worker.ready and worker.job is None and worker.killing is None:
                return worker
        return None

    def _dispatch_locked(self):
        while self._queue:
            worker = self._idle_worker_locked()
            if worker is None:
                # still drain cancelled folds so shutdown never waits on them
                while self._queue and self._queue[0].future.cancelled():
                    job = self._queue.popleft()
                    self._jobs.pop(job.id, None)
                return
            job = self._queue.popleft()
            if not job.started:
                if not job.future.set_running_or_notify_cancel():
                    self._jobs.pop(job.id, None)
                    continue
                job.started = True
            try:
                worker.task_conn.send((job.id, job.fn, job.args, job.kwargs))
            except Exception:  # noqa: BLE001 - the worker died between jobs
                self._queue.appendleft(job)
                dead = worker
                self._lock.release()
                try:
                    self._on_worker_death(dead, reason="crash")
                finally:
                    self._lock.acquire()
                continue
            worker.job = job
            if self.fold_timeout is not None:
                worker.deadline = time.monotonic() + self.fold_timeout

    def _promote_delayed_locked(self, now):
        while self._delayed and self._delayed[0][0] <= now:
            _, _, job = heapq.heappop(self._delayed)
            self._queue.append(job)

    def _check_deadlines(self):
        if self.fold_timeout is None:
            return
        now = time.monotonic()
        expired = []
        with self._lock:
            for worker in self._workers.values():
                if (worker.job is not None and worker.killing is None
                        and worker.deadline is not None and now >= worker.deadline):
                    worker.killing = "timeout"
                    worker.job.timed_out = True
                    expired.append(worker)
        for worker in expired:
            self.stats["folds_timed_out"] += 1
            emit_active("fold_timed_out", worker=worker.process.pid,
                        fold_job=worker.job.id if worker.job else None,
                        timeout_seconds=self.fold_timeout)
            try:
                os.kill(worker.process.pid, signal.SIGKILL)
            except OSError:
                pass  # already gone; the sentinel fires either way

    def _handle_message(self, worker, message):
        kind = message[0]
        if kind == "ready":
            worker.ready = True
        elif kind == "heartbeat":
            worker.last_heartbeat = time.monotonic()
        elif kind == "started":
            if self.fold_timeout is not None and worker.job is not None:
                worker.deadline = time.monotonic() + self.fold_timeout
        elif kind == "init_failed":
            with self._lock:
                self._init_failures += 1
                exhausted = self._init_failures >= _MAX_INIT_FAILURES
            if exhausted:
                self._mark_broken(
                    "worker initializer failed repeatedly:\n{}".format(message[1])
                )
        elif kind in ("done", "error"):
            job_id, result = message[1], message[2]
            with self._lock:
                job = self._jobs.get(job_id)
                worker.job = None
                worker.deadline = None
            if job is None:
                return  # stale result of a job already failed elsewhere
            if kind == "error":
                with self._lock:
                    self._jobs.pop(job.id, None)
                job.future.set_exception(result)
                return
            if (_payload_retriable(result)
                    and job.attempts < self.max_fold_retries):
                self._retry_or_quarantine(job, "retriable-payload")
                return
            with self._lock:
                self._jobs.pop(job.id, None)
            job.future.set_result(result)

    def _drain_conn(self, worker):
        while True:
            try:
                if not worker.result_conn.poll():
                    return True
                message = worker.result_conn.recv()
            except (EOFError, OSError):
                return False  # channel is dead; the sentinel path cleans up
            self._handle_message(worker, message)

    def _supervise(self):
        while True:
            with self._lock:
                now = time.monotonic()
                self._promote_delayed_locked(now)
                self._dispatch_locked()
                if self._closed and not self._jobs:
                    break
                if self._broken is not None and self._closed:
                    break
                timeout = _TICK_SECONDS
                wait_for = [self._wake_r]
                for worker in self._workers.values():
                    wait_for.append(worker.result_conn)
                    wait_for.append(worker.process.sentinel)
                    if worker.job is not None and worker.deadline is not None:
                        timeout = min(timeout, max(worker.deadline - now, 0.0))
                if self._delayed:
                    timeout = min(timeout, max(self._delayed[0][0] - now, 0.0))
            try:
                ready = _mp_connection.wait(wait_for, timeout)
            except OSError:
                ready = []
            dead = []
            for item in ready:
                if item == self._wake_r:
                    try:
                        os.read(self._wake_r, 4096)
                    except OSError:
                        pass
                    continue
                with self._lock:
                    by_sentinel = self._workers.get(item)
                if by_sentinel is not None:
                    dead.append(by_sentinel)
                    continue
                with self._lock:
                    owner = next(
                        (worker for worker in self._workers.values()
                         if worker.result_conn is item), None,
                    )
                if owner is not None and not self._drain_conn(owner):
                    dead.append(owner)
            for worker in dead:
                # give the dying worker's final messages a chance to land
                # (a clean result beats a spurious retry)
                self._drain_conn(worker)
                self._on_worker_death(worker)
            self._check_deadlines()
        self._stop_workers()

    def _stop_workers(self):
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for worker in workers:
            try:
                worker.task_conn.send(None)
            except Exception:  # noqa: BLE001 - already dead is fine at shutdown
                pass
        deadline = time.monotonic() + _JOIN_SECONDS
        for worker in workers:
            worker.process.join(timeout=max(deadline - time.monotonic(), 0.1))
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join(timeout=1.0)
            for conn in (worker.task_conn, worker.result_conn):
                try:
                    conn.close()
                except OSError:
                    pass

    def _join(self, block):
        self._thread.join(timeout=None if block else 0.0)
        try:
            os.close(self._wake_r)
            os.close(self._wake_w)
        except OSError:
            pass
