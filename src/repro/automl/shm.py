"""Zero-copy shared-memory data plane for process-backend fold dispatch.

The process backend historically shipped each task to its workers through
an on-disk pickle (:class:`~repro.automl.backends.TaskPayload`): one
serialize on the coordinator, one deserialize per worker — a full copy of
the dataset through the filesystem for every worker (and for every fold
once the worker LRU starts evicting).  This module removes that copy for
the common case of pure-ndarray tasks:

* :func:`publish_task` lays the task's context arrays out once into a
  single ``multiprocessing.shared_memory`` segment and returns a
  coordinator-owned :class:`SharedTaskSegment` whose picklable
  :class:`SharedTaskHandle` (segment name + dtype/shape/offset manifest +
  task metadata) is what actually travels with each fold submission.
* :func:`attach_task` rebuilds the task inside a worker as **read-only**
  ``np.ndarray`` views over the mapped segment — no bytes are copied; fold
  materialization (fancy indexing in ``MLTask.subset``) produces ordinary
  writable arrays from the views.

Ownership and cleanup
---------------------
The coordinator that published a segment owns it.  Segments are
refcounted (:meth:`SharedTaskSegment.acquire` / ``release``): the
backend's payload registry holds the publication reference and the last
``release`` unlinks the segment.  Three safety nets cover abnormal exits:

* a module-level ``atexit`` hook unlinks every still-live segment on
  normal interpreter shutdown (including unhandled exceptions),
* segment names embed the publishing PID
  (``repro-shm-<pid>-<seq>-<token>``), and :func:`sweep_stale_segments`
  — run whenever a new process backend starts — unlinks segments whose
  publisher is no longer alive (covers SIGKILL, where ``atexit`` never
  runs),
* workers only ever ``close`` their mapping, never ``unlink``.

Python's ``resource_tracker`` is deliberately kept out of the loop
(segments are opened with the tracker's registration suppressed, see
:func:`_open_shm`): a tracker-registered attachment would unlink the
segment as soon as the attaching process exits (bpo-39959), yanking it
out from under the coordinator and its sibling workers — and under the
fork start method all workers share one tracker daemon, so even
unregister-after-attach races between siblings.  The PID sweep replaces
the tracker's leak protection without either failure mode.
"""

import atexit
import os
import pickle
import threading
import weakref
from itertools import count

import numpy as np

from repro.telemetry.events import capture_event

try:
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - always present on CPython >= 3.8
    _shared_memory = None

#: Prefix of every segment name published by this module.
SEGMENT_PREFIX = "repro-shm"

#: Byte alignment of each array inside a segment (cache-line friendly).
_ALIGNMENT = 64

#: Where POSIX shared memory surfaces as files (Linux); the stale-segment
#: sweep scans this directory and is a no-op elsewhere.
_SHM_DIR = "/dev/shm"

_SEGMENT_SEQ = count()
_LIVE_LOCK = threading.Lock()
#: name -> SharedMemory of segments published (and not yet unlinked) by
#: this process; drained by the atexit hook.
_LIVE_SEGMENTS = {}
_ATEXIT_REGISTERED = False

#: Per-process cache of worker-side attachments.  Values are kept alive by
#: the tasks that reference them (``task._shm_attachment``), so entries
#: vanish exactly when the worker task LRU drops the task — re-attaching
#: after an eviction is a cheap mmap, not a data copy.
_ATTACHMENTS = weakref.WeakValueDictionary()
_ATTACH_LOCK = threading.Lock()

_AVAILABLE = None


class TaskNotShareableError(ValueError):
    """The task's context cannot be published as raw shared-memory arrays."""


def shm_available():
    """Whether shared-memory segments can be created on this platform."""
    global _AVAILABLE
    if _AVAILABLE is None:
        if _shared_memory is None:
            _AVAILABLE = False
        else:
            try:
                probe = _open_shm(create=True, size=1)
                probe.close()
                _unlink_silently(probe)
                _AVAILABLE = True
            except Exception:  # noqa: BLE001 - any failure means "no shm here"
                _AVAILABLE = False
    return _AVAILABLE


def task_is_shareable(task):
    """Whether every context value is a raw-byte-shareable ndarray.

    Object-dtype arrays (ragged data, strings) and non-array context
    values (lists of texts, graphs, entity sets) pickle fine but cannot
    be expressed as a flat byte buffer, so tasks carrying them fall back
    to the pickle data plane.
    """
    for value in task.context.values():
        if not isinstance(value, np.ndarray) or value.dtype.hasobject:
            return False
    return True


_TRACKER_LOCK = threading.Lock()


def _open_shm(*args, **kwargs):
    """Open a ``SharedMemory`` without registering it with the tracker.

    ``SharedMemory.__init__`` registers the segment on *both* create and
    attach; suppressing the registration at the source (instead of
    unregistering afterwards) keeps the shared fork-mode tracker daemon
    free of register/unregister races between sibling workers attaching
    the same segment (see module docs).
    """
    try:
        from multiprocessing import resource_tracker
    except Exception:  # pragma: no cover - tracker always importable on CPython
        return _shared_memory.SharedMemory(*args, **kwargs)
    with _TRACKER_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return _shared_memory.SharedMemory(*args, **kwargs)
        finally:
            resource_tracker.register = original


def _unlink_silently(segment):
    """Unlink ``segment`` without resource-tracker stderr noise.

    ``SharedMemory.unlink`` unconditionally sends an UNREGISTER message,
    but :func:`_open_shm` never registered the segment, so the tracker
    daemon would log a spurious ``KeyError`` traceback.  Registering
    immediately before the unlink keeps the daemon's books balanced.
    """
    with _TRACKER_LOCK:
        try:
            from multiprocessing import resource_tracker

            resource_tracker.register(segment._name, "shared_memory")
        except Exception:  # noqa: BLE001 - tracker absent; unlink regardless
            pass
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):
            pass


def _close_quietly(segment):
    try:
        segment.close()
    except BufferError:
        # ndarray views over the mapping are still alive; the mapping is
        # released when they are garbage collected
        pass
    except OSError:
        pass


def _register_atexit():
    global _ATEXIT_REGISTERED
    if not _ATEXIT_REGISTERED:
        atexit.register(_unlink_live_segments)
        _ATEXIT_REGISTERED = True


def _unlink_live_segments():
    """atexit hook: unlink every segment this process still owns."""
    with _LIVE_LOCK:
        segments = list(_LIVE_SEGMENTS.values())
        _LIVE_SEGMENTS.clear()
    for segment in segments:
        _close_quietly(segment)
        _unlink_silently(segment)


class SharedTaskHandle:
    """Picklable reference to a task published in shared memory.

    The worker-side twin of :class:`~repro.automl.backends.TaskPayload`:
    ``key`` feeds the worker-resident LRU, ``load`` materializes the task
    (here: attaches read-only views instead of unpickling).
    """

    def __init__(self, segment, manifest, meta):
        self.segment = segment  # segment name
        self.manifest = manifest  # [(key, dtype_str, shape, offset), ...]
        self.meta = meta  # task metadata (name, metric, static_keys, ...)

    @property
    def key(self):
        return self.segment

    def load(self):
        return attach_task(self)

    def __repr__(self):
        return "SharedTaskHandle(segment={!r}, arrays={})".format(
            self.segment, len(self.manifest)
        )


class SharedTaskSegment:
    """A coordinator-owned published segment with unlink-on-last-release.

    The publisher starts with one reference (held by whoever keeps the
    segment in a registry); in-flight users may ``acquire``/``release``
    around their use, and the release that drops the count to zero closes
    and unlinks the segment.
    """

    def __init__(self, shm, handle):
        self._shm = shm
        self.handle = handle
        self._refs = 1
        self._lock = threading.Lock()

    @property
    def name(self):
        return self.handle.segment

    def acquire(self):
        with self._lock:
            if self._refs <= 0:
                raise RuntimeError("Segment {!r} is already unlinked".format(self.name))
            self._refs += 1
        return self

    def release(self):
        with self._lock:
            self._refs -= 1
            if self._refs > 0:
                return
        with _LIVE_LOCK:
            _LIVE_SEGMENTS.pop(self.name, None)
        _close_quietly(self._shm)
        _unlink_silently(self._shm)

    def ensure_published(self):
        """Recreate the backing file if it was unlinked under us.

        The publisher's mapping stays valid after an unlink (the kernel
        keeps the pages while any mapping lives), so a segment yanked out
        of ``/dev/shm`` by a crashed writer or a fault injection can be
        restored byte-for-byte under the *same name* — workers re-attach
        on the fold retry without any handle changing.  Returns whether a
        republication happened.
        """
        with self._lock:
            if self._refs <= 0:
                return False
            if not os.path.isdir(_SHM_DIR):
                return False  # no shm filesystem to check against
            if os.path.exists(os.path.join(_SHM_DIR, self.name)):
                return False
            fresh = _open_shm(name=self.name, create=True, size=self._shm.size)
            fresh.buf[:] = self._shm.buf[:]
            stale = self._shm
            self._shm = fresh
            with _LIVE_LOCK:
                _LIVE_SEGMENTS[self.name] = fresh
            _close_quietly(stale)
            return True

    def __repr__(self):
        return "SharedTaskSegment(name={!r})".format(self.name)


def _aligned(offset):
    return (offset + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT


def _task_meta(task):
    meta = {
        "name": task.name,
        "data_modality": task.data_modality,
        "problem_type": task.problem_type,
        "static_keys": sorted(task.static_keys),
        "metric": task.metric,
        "ordered": task.ordered,
        "metadata": pickle.dumps(task.metadata, protocol=pickle.HIGHEST_PROTOCOL),
        # ship the memoized content digest when the coordinator already
        # paid for it, so workers with a prefix cache never re-hash the
        # arrays they attached
        "content_digest": getattr(task, "_content_digest", None),
    }
    return meta


def publish_task(task):
    """Copy ``task``'s arrays into one shared segment; returns the owner object.

    Raises :class:`TaskNotShareableError` for tasks whose context cannot
    be expressed as raw array bytes, and whatever the platform raises when
    shared memory itself is unavailable — callers are expected to fall
    back to the pickle data plane on any failure.
    """
    if _shared_memory is None:
        raise TaskNotShareableError("multiprocessing.shared_memory is unavailable")
    arrays = {}
    for key, value in task.context.items():
        if not isinstance(value, np.ndarray) or value.dtype.hasobject:
            raise TaskNotShareableError(
                "Context key {!r} is not a shareable ndarray".format(key)
            )
        arrays[key] = np.ascontiguousarray(value)

    manifest = []
    offset = 0
    for key in sorted(arrays):
        array = arrays[key]
        offset = _aligned(offset)
        manifest.append((key, array.dtype.str, array.shape, offset))
        offset += array.nbytes

    name = "{}-{}-{}-{}".format(
        SEGMENT_PREFIX, os.getpid(), next(_SEGMENT_SEQ), os.urandom(4).hex()
    )
    shm = _open_shm(create=True, name=name, size=max(offset, 1))
    try:
        for (key, dtype_str, shape, array_offset) in manifest:
            destination = np.ndarray(
                shape, dtype=np.dtype(dtype_str), buffer=shm.buf, offset=array_offset
            )
            destination[...] = arrays[key]
    except Exception:
        _close_quietly(shm)
        _unlink_silently(shm)
        raise
    handle = SharedTaskHandle(name, manifest, _task_meta(task))
    _register_atexit()
    with _LIVE_LOCK:
        _LIVE_SEGMENTS[name] = shm
    return SharedTaskSegment(shm, handle)


class _TaskAttachment:
    """A worker-side mapping of one published segment.

    Holds the ``SharedMemory`` object alive for as long as any task built
    from it exists; closing happens on garbage collection, after the
    ndarray views (which the task's context holds) are gone.
    """

    def __init__(self, handle):
        self.shm = _open_shm(name=handle.segment)
        self.name = handle.segment

    def views(self, manifest):
        views = {}
        for key, dtype_str, shape, offset in manifest:
            view = np.ndarray(
                tuple(shape), dtype=np.dtype(dtype_str), buffer=self.shm.buf, offset=offset
            )
            view.flags.writeable = False
            views[key] = view
        return views

    def __del__(self):
        shm = getattr(self, "shm", None)
        if shm is not None:
            _close_quietly(shm)


def attach_task(handle):
    """Rebuild the published task from read-only views over the segment.

    Raises ``FileNotFoundError`` when the segment was already unlinked
    (the coordinator evicted or shut down mid-flight); the caller treats
    that like any other fold failure.
    """
    from repro.tasks.task import MLTask

    with _ATTACH_LOCK:
        attachment = _ATTACHMENTS.get(handle.segment)
        if attachment is None:
            attachment = _TaskAttachment(handle)
            _ATTACHMENTS[handle.segment] = attachment
            capture_event("shm_attach", segment=handle.segment,
                          task=handle.meta.get("name"))
    meta = handle.meta
    task = MLTask(
        name=meta["name"],
        data_modality=meta["data_modality"],
        problem_type=meta["problem_type"],
        context=attachment.views(handle.manifest),
        static_keys=meta["static_keys"],
        metric=meta["metric"],
        ordered=meta["ordered"],
        metadata=pickle.loads(meta["metadata"]),
    )
    if meta.get("content_digest"):
        task._content_digest = meta["content_digest"]
    # the attachment must outlive every view in the task's context
    task._shm_attachment = attachment
    return task


def _pid_alive(pid):
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def sweep_stale_segments(directory=_SHM_DIR):
    """Unlink segments whose publishing process is gone (crash cleanup).

    Scans the shared-memory filesystem for this module's segment names,
    parses the embedded publisher PID and removes every segment whose
    publisher no longer exists — the ``atexit`` hook never ran because the
    coordinator was SIGKILLed.  Returns the removed segment names.
    """
    removed = []
    try:
        names = os.listdir(directory)
    except OSError:
        return removed
    own_pid = os.getpid()
    for name in names:
        if not name.startswith(SEGMENT_PREFIX + "-"):
            continue
        parts = name.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if pid == own_pid or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(directory, name))
            removed.append(name)
        except OSError:
            pass
    return removed
