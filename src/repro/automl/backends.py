"""Pluggable pipeline-execution backends (paper Section IV-C).

The paper describes AutoBazaar as a distributed system with "a pipeline
execution engine and an AutoML coordinator" that scored 2.5 million
pipelines on a cluster.  This module is the seam between the two: the
coordinator (:class:`~repro.automl.search.AutoBazaarSearch`) decides *what*
to evaluate and an :class:`ExecutionBackend` decides *where and how* it
runs.

Three backends are provided:

``serial``
    Evaluates each candidate synchronously in the calling process —
    bit-identical to the historical single-threaded search loop.
``thread``
    Evaluates cross-validation folds on a :class:`ThreadPoolExecutor`.
``process``
    Evaluates cross-validation folds on a :class:`ProcessPoolExecutor`.

The parallel backends dispatch individual cross-validation *folds*, not
whole candidates, into one shared executor queue.  Pipeline costs are
heavily skewed (a linear model fold finishes orders of magnitude before a
gradient-boosting fold), so fixed per-candidate chunking would leave
workers idle behind stragglers; with fold-level dispatch every idle worker
steals the next fold regardless of which candidate it belongs to — the
work-stealing answer to the skew problem in parallel query processing.

All backends aggregate fold results in fold order, so a candidate's score
(the mean over folds) and its error message (the first failing fold) are
identical across backends.

Fold submissions ship *index arrays*, not materialized task subsets: the
coordinator computes the cross-validation fold indices once per candidate
and each worker rebuilds its fold locally from a **worker-resident task
cache**.  The process backend parks the pickled task on disk once per
task (a :class:`TaskPayload` handle), and every worker that first touches
the task loads it into a per-process LRU keyed by the payload's task id —
so the dataset crosses the process boundary once per worker instead of
once per fold (``budget * n_splits`` transfers before).  The thread
backend shares the coordinator's memory and passes the task by reference.
Setting ``task_cache_size=0`` on the process backend restores the
ship-every-fold behaviour.

On top of the worker cache the process backend defaults to a **zero-copy
shared-memory data plane** (``data_plane="shm"``): pure-ndarray tasks are
published once into ``multiprocessing.shared_memory`` segments (see
:mod:`repro.automl.shm`) and workers attach read-only views instead of
unpickling a copy, so a cache miss costs an ``mmap`` rather than a full
deserialization of the dataset.  Tasks that cannot be expressed as raw
byte buffers (object-dtype columns, non-array context values) and
platforms without shared-memory support fall back to the pickle plane
automatically, per task; ``data_plane="pickle"`` forces the historical
path.

Backends also accept batched submission (:meth:`ExecutionBackend.submit_many`):
same-template candidates co-submitted by the scheduler are fused into one
evaluation pass per fold (see :mod:`repro.automl.batch_eval`), sharing the
preprocessing prefix and — for amenable learners — the estimator fit
across the hyperparameter batch, without changing any score, error string
or record order.
"""

import atexit
import os
import pickle
import queue
import tempfile
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from itertools import count

import numpy as np

from repro.automl import batch_eval, faultinject, shm
from repro.automl.prefix_cache import (
    fold_data_key,
    resolve_prefix_cache,
    task_content_digest,
)
from repro.tasks.task import materialize_cv_fold, task_cv_indices
from repro.telemetry.events import begin_capture, capture_event, end_capture
from repro.telemetry.sink import emit_active

#: Valid process-backend task transports.
DATA_PLANES = ("shm", "pickle")


def _format_error(failure):
    """The one canonical error string for a failed evaluation.

    Every backend must produce byte-identical error strings for the same
    failure (the cross-backend record-equivalence contract), so all error
    formatting funnels through here.
    """
    return "{}: {}".format(type(failure).__name__, failure)


class EvaluationCandidate:
    """One proposed pipeline configuration awaiting evaluation.

    This is the unit of work submitted to an :class:`ExecutionBackend`:
    a template plus a concrete hyperparameter configuration, the task to
    cross-validate on, and the bookkeeping the coordinator needs to file
    the result (proposal iteration, default flag).

    ``cache_config`` is the fitted-prefix cache configuration shipped
    with every fold (see :mod:`repro.automl.prefix_cache`); ``pruner``
    is the search's shared :class:`PruneController` enabling fold-level
    early discard, or ``None`` for exhaustive evaluation; ``telemetry``
    is the search's ``(sink, tenant)`` emit context (see
    :mod:`repro.telemetry`) or ``None`` when telemetry is off.
    """

    def __init__(self, iteration, template, hyperparameters, task, n_splits=3,
                 random_state=None, template_name=None, is_default=False,
                 cache_config=None, pruner=None, telemetry=None):
        self.iteration = iteration
        self.template = template
        self.hyperparameters = dict(hyperparameters)
        self.task = task
        self.n_splits = n_splits
        self.random_state = random_state
        self.template_name = template_name or template.name
        self.is_default = is_default
        self.cache_config = cache_config
        self.pruner = pruner
        self.telemetry = telemetry

    def __repr__(self):
        return "EvaluationCandidate(iteration={}, template={!r})".format(
            self.iteration, self.template_name
        )


class EvaluationOutcome:
    """The result of evaluating one candidate: scores or an error, plus timing.

    ``pruned`` marks a candidate stopped by fold-level early discard (its
    ``error`` carries the pruning reason); the ``cache_*`` counters are
    the candidate's summed fitted-prefix cache activity across folds.
    """

    def __init__(self, score, raw_score, error, elapsed, pruned=False,
                 cache_hits=0, cache_misses=0, cache_bytes=0):
        self.score = score
        self.raw_score = raw_score
        self.error = error
        self.elapsed = elapsed
        self.pruned = bool(pruned)
        self.cache_hits = int(cache_hits)
        self.cache_misses = int(cache_misses)
        self.cache_bytes = int(cache_bytes)

    @property
    def failed(self):
        return self.error is not None

    def __repr__(self):
        return "EvaluationOutcome(score={}, error={!r})".format(self.score, self.error)


class PrunedEvaluation(RuntimeError):
    """A candidate was discarded mid-evaluation by the early-discard bound."""


class PruneController:
    """Shared early-discard state for one search on one task.

    After each completed fold of a candidate, the optimistic estimate of
    its aggregate is computed: completed fold scores plus the highest
    single-fold score observed anywhere in the search standing in for
    every remaining fold.  When even that estimate falls short of the
    best candidate aggregate seen so far minus ``margin``, the
    candidate's remaining folds are treated as wasted compute and
    cancelled.

    The per-fold cap is *empirical* (the best fold score seen so far),
    so this is a successive-halving-style heuristic, not a sound upper
    bound: a candidate whose remaining folds would have outscored
    everything observed can still be discarded — the margin is the guard
    against exactly that, and ``margin=0`` prunes most aggressively.

    The controller is shared by every candidate of a search (and consulted
    from worker callbacks), so all state is lock-protected.  Pruning
    decisions depend on completion *timing*, which is why the search's
    bit-identical cross-backend record guarantee only holds with pruning
    off.
    """

    def __init__(self, margin):
        self.margin = float(margin)
        if not np.isfinite(self.margin) or self.margin < 0:
            raise ValueError("prune margin must be a non-negative finite number")
        self._lock = threading.Lock()
        self._task_best = None
        self._fold_cap = None

    def update_task_best(self, score):
        """Raise the pruning threshold to a newly reported candidate aggregate."""
        score = float(score)
        with self._lock:
            if self._task_best is None or score > self._task_best:
                self._task_best = score

    def observe_fold(self, score):
        """Track the highest single-fold score (the optimistic per-fold cap)."""
        score = float(score)
        with self._lock:
            if self._fold_cap is None or score > self._fold_cap:
                self._fold_cap = score

    @property
    def task_best(self):
        with self._lock:
            return self._task_best

    def assess(self, fold_scores, n_folds):
        """The reason to discard a partially evaluated candidate, or ``None``.

        ``fold_scores`` are the candidate's completed fold scores so far;
        with no task best or no observed fold cap yet there is nothing to
        compare against and the candidate always continues.
        """
        with self._lock:
            task_best = self._task_best
            fold_cap = self._fold_cap
        if task_best is None or fold_cap is None:
            return None
        completed = [float(score) for score in fold_scores if score is not None]
        remaining = int(n_folds) - len(completed)
        if remaining <= 0 or not completed:
            return None
        cap = max([fold_cap] + completed)
        bound = (sum(completed) + remaining * cap) / float(n_folds)
        threshold = task_best - self.margin
        if bound < threshold:
            return (
                "optimistic estimate {:.6g} after {} of {} folds falls short of "
                "task best {:.6g} - margin {:.6g}".format(
                    bound, len(completed), n_folds, task_best, self.margin
                )
            )
        return None

    def __repr__(self):
        return "PruneController(margin={}, task_best={})".format(self.margin, self.task_best)


def _cache_info_fields(pipeline):
    """Per-fold cache counters for the fold payload (zeroes when uncached)."""
    info = getattr(pipeline, "prefix_cache_info", None) or {}
    return {
        "cache_hits": info.get("hits", 0),
        "cache_misses": info.get("misses", 0),
        "cache_bytes": info.get("bytes_written", 0),
    }


def evaluate_fold(template, hyperparameters, train_task, val_task, cache_config=None,
                  data_key=None, capture_events=False):
    """Evaluate one cross-validation fold; the unit of work-stealing dispatch.

    Top-level (picklable) so it can be shipped to worker processes.  The
    result is a plain dict rather than a raised exception so that worker
    failures survive the trip back through pickling.

    ``data_key`` is the fold's cache key, computed by the coordinator
    (``fold_data_key`` over the parent task) so the ship-every-fold path
    shares cache entries with the index path and the serial backend
    instead of re-hashing the materialized subset per submission; it
    falls back to digesting ``train_task`` when omitted.

    With ``capture_events`` the fold's telemetry (fold start, cache
    hits/misses, shm attaches) is captured thread-locally and returned
    under the payload's ``"events"`` key — telemetry rides the existing
    result channel back to the coordinator instead of a second IPC
    mechanism.
    """
    from repro.automl import search

    faultinject.maybe_inject()
    if capture_events:
        begin_capture()
        capture_event("fold_started")
    started = time.time()
    try:
        prefix_cache = resolve_prefix_cache(cache_config)
        extra = {}
        if prefix_cache is not None:
            if data_key is None:
                data_key = task_content_digest(train_task)
            extra.update(prefix_cache=prefix_cache, data_key=data_key)
        normalized, raw, pipeline = search.evaluate_pipeline(
            template, hyperparameters, train_task, val_task, **extra
        )
        payload = {
            "score": normalized,
            "raw_score": raw,
            "error": None,
            "elapsed": time.time() - started,
        }
        payload.update(_cache_info_fields(pipeline))
    except Exception as failure:  # noqa: BLE001 - failed folds are data, not fatal
        payload = {
            "score": None,
            "raw_score": None,
            "error": _format_error(failure),
            "elapsed": time.time() - started,
        }
    if capture_events:
        payload["events"] = end_capture()
    return payload


# -- worker-resident task cache -----------------------------------------------------

#: Per-worker-process LRU of tasks rebuilt from :class:`TaskPayload` handles.
_WORKER_TASK_CACHE = OrderedDict()

#: Maximum tasks kept resident per worker (set by the pool initializer).
_WORKER_TASK_CACHE_SIZE = 8


def _configure_worker_cache(cache_size):
    """Process-pool initializer: size (and reset) the worker-resident cache.

    Also arms the env-configured fault-injection plan (a no-op outside the
    chaos suite) — the initializer runs in every worker the pool ever
    spawns, including the replacements of crashed ones, so the plan
    reaches the whole fleet.
    """
    global _WORKER_TASK_CACHE_SIZE
    _WORKER_TASK_CACHE_SIZE = int(cache_size)
    _WORKER_TASK_CACHE.clear()
    faultinject.install_from_env()


class TaskPayload:
    """Picklable handle to a task parked on disk for the worker cache.

    Shipping this handle instead of the task itself costs a few bytes per
    fold; a worker seeing the ``key`` for the first time loads the pickled
    task from ``path`` into its resident LRU and serves every later fold
    of the same task from memory.
    """

    __slots__ = ("key", "path")

    def __init__(self, key, path):
        self.key = key
        self.path = path

    def load(self):
        """Unpickle the parked task (the worker-side materialization)."""
        with open(self.path, "rb") as stream:
            return pickle.load(stream)

    def __repr__(self):
        return "TaskPayload(key={!r}, path={!r})".format(self.key, self.path)


def _resolve_task(task_ref):
    """Materialize a submitted task reference inside the worker.

    Accepts the task object itself (serial/thread backends, which share
    the coordinator's memory) or either process-backend transport handle:
    a :class:`TaskPayload` pointing at the on-disk pickle, or a
    :class:`~repro.automl.shm.SharedTaskHandle` naming a shared-memory
    segment to attach read-only views over.  Both handles expose ``key``
    and ``load()``, so the resident LRU logic is transport-agnostic.
    """
    if not isinstance(task_ref, (TaskPayload, shm.SharedTaskHandle)):
        return task_ref
    task = _WORKER_TASK_CACHE.get(task_ref.key)
    if task is None:
        task = task_ref.load()
        _WORKER_TASK_CACHE[task_ref.key] = task
        while len(_WORKER_TASK_CACHE) > _WORKER_TASK_CACHE_SIZE > 0:
            _WORKER_TASK_CACHE.popitem(last=False)
    else:
        _WORKER_TASK_CACHE.move_to_end(task_ref.key)
    return task


def evaluate_fold_indices(template, hyperparameters, task_ref, train_indices, val_indices,
                          cache_config=None, capture_events=False):
    """Evaluate one cross-validation fold specified by its sample indices.

    The index-level twin of :func:`evaluate_fold`: the fold's train/val
    subsets are rebuilt inside the worker from the resident task, so only
    the index arrays travel per submission.  With a ``cache_config`` the
    fold's data key is derived from the resident task's memoized content
    digest plus the train-index array, so every candidate sharing the
    fold shares the key without re-hashing the dataset.

    A failure *resolving* the task reference — a shared-memory segment
    that vanished under the worker — is infrastructure, not pipeline
    code, so its payload is flagged ``"retriable"``: the supervised pool
    repairs the data plane and retries instead of recording it.
    """
    from repro.automl import search

    faultinject.maybe_inject(task_ref)
    if capture_events:
        begin_capture()
        capture_event("fold_started")
    started = time.time()
    try:
        task = _resolve_task(task_ref)
    except Exception as failure:  # noqa: BLE001 - transport faults are retriable data
        payload = {
            "score": None,
            "raw_score": None,
            "error": _format_error(failure),
            "elapsed": time.time() - started,
            "retriable": True,
        }
        if capture_events:
            payload["events"] = end_capture()
        return payload
    try:
        train_task, val_task = materialize_cv_fold(task, train_indices, val_indices)
        prefix_cache = resolve_prefix_cache(cache_config)
        extra = {}
        if prefix_cache is not None:
            extra.update(prefix_cache=prefix_cache,
                         data_key=fold_data_key(task, train_indices))
        normalized, raw, pipeline = search.evaluate_pipeline(
            template, hyperparameters, train_task, val_task, **extra
        )
        payload = {
            "score": normalized,
            "raw_score": raw,
            "error": None,
            "elapsed": time.time() - started,
        }
        payload.update(_cache_info_fields(pipeline))
    except Exception as failure:  # noqa: BLE001 - failed folds are data, not fatal
        payload = {
            "score": None,
            "raw_score": None,
            "error": _format_error(failure),
            "elapsed": time.time() - started,
        }
    if capture_events:
        payload["events"] = end_capture()
    return payload


def evaluate_fold_indices_batch(template, hyperparameters_list, task_ref, train_indices,
                                val_indices, cache_config=None, capture_events=False):
    """Evaluate one fold for a same-template hyperparameter batch.

    The batched twin of :func:`evaluate_fold_indices`: one submission
    carries every configuration of a fused candidate group and returns one
    fold payload per configuration, in input order (see
    :func:`repro.automl.batch_eval.evaluate_candidate_group` for the
    determinism contract).  A failure *before* per-candidate evaluation
    starts (unresolvable task, broken fold indices) fails every member
    with the same error, exactly as it would have failed each individual
    submission.

    Captured telemetry for the shared pass (fold start, cache activity,
    shm attach, the batch-group event) is attached to the *first*
    member's payload, which is where the coordinator attributes the
    group's shared work.

    As in :func:`evaluate_fold_indices`, a task-resolution failure marks
    every member's payload ``"retriable"`` so the supervised pool can
    repair the data plane and retry the whole batched fold.
    """
    faultinject.maybe_inject(task_ref)
    if capture_events:
        begin_capture()
        capture_event("fold_started", batch_size=len(hyperparameters_list))
    started = time.time()
    try:
        task = _resolve_task(task_ref)
    except Exception as failure:  # noqa: BLE001 - transport faults are retriable data
        share = (time.time() - started) / max(len(hyperparameters_list), 1)
        error = _format_error(failure)
        payloads = [
            {"score": None, "raw_score": None, "error": error, "elapsed": share,
             "retriable": True}
            for _ in hyperparameters_list
        ]
        if capture_events and payloads:
            payloads[0]["events"] = end_capture()
        return payloads
    try:
        train_task, val_task = materialize_cv_fold(task, train_indices, val_indices)
        prefix_cache = resolve_prefix_cache(cache_config)
        data_key = None
        if prefix_cache is not None:
            data_key = fold_data_key(task, train_indices)
        payloads = batch_eval.evaluate_candidate_group(
            template, hyperparameters_list, train_task, val_task,
            prefix_cache=prefix_cache, data_key=data_key,
        )
    except Exception as failure:  # noqa: BLE001 - failed folds are data, not fatal
        share = (time.time() - started) / max(len(hyperparameters_list), 1)
        error = _format_error(failure)
        payloads = [
            {"score": None, "raw_score": None, "error": error, "elapsed": share}
            for _ in hyperparameters_list
        ]
    if capture_events and payloads:
        payloads[0]["events"] = end_capture()
    return payloads


def _aggregate_folds(fold_results, pruned_reason=None):
    """Combine per-fold payloads into one outcome, in fold order.

    Matches the serial ``cross_validate_template`` semantics exactly: the
    first failing fold (in fold order) determines the error, otherwise the
    score is the mean over folds.  ``elapsed`` is the summed compute time
    of the folds — the candidate's evaluation *cost*, comparable to the
    serial backend's sequential measurement — not the wall-clock wait
    since submission, which would include queue time behind other
    candidates in the batch.

    A ``pruned_reason`` overrides the per-fold errors: the candidate was
    deliberately discarded mid-evaluation, so its outcome is the pruning
    reason regardless of what its cancelled folds report.
    """
    elapsed = float(sum(payload.get("elapsed") or 0.0 for payload in fold_results))
    cache = {
        field: int(sum(payload.get(field) or 0 for payload in fold_results))
        for field in ("cache_hits", "cache_misses", "cache_bytes")
    }
    if pruned_reason is not None:
        return EvaluationOutcome(
            None, None, "PrunedEvaluation: {}".format(pruned_reason), elapsed,
            pruned=True, **cache,
        )
    for payload in fold_results:
        if payload.get("error"):
            return EvaluationOutcome(None, None, payload["error"], elapsed, **cache)
    score = float(np.mean([payload["score"] for payload in fold_results]))
    raw_score = float(np.mean([payload["raw_score"] for payload in fold_results]))
    return EvaluationOutcome(score, raw_score, None, elapsed, **cache)


class CandidateFuture:
    """An already-completed future (used by the serial backend)."""

    def __init__(self, candidate, outcome):
        self.candidate = candidate
        self._outcome = outcome

    def done(self):
        return True

    def result(self):
        return self._outcome


class _PooledCandidateFuture:
    """Aggregates the fold futures of one candidate on a worker pool.

    Each fold future's done-callback files its payload here; when the last
    fold lands the outcome is assembled and the future enqueues itself on
    the backend's completion queue.
    """

    def __init__(self, candidate, n_folds, completion_queue):
        self.candidate = candidate
        self._fold_results = [None] * n_folds
        self._fold_futures = []
        self._remaining = n_folds
        self._completion_queue = completion_queue
        self._lock = threading.Lock()
        self._outcome = None
        self._pruned_reason = None

    def _fold_done(self, index, fold_future):
        if fold_future.cancelled():
            # cancelled because an earlier fold already failed; the real
            # error sits earlier in fold order, so this never wins the
            # first-failing-fold aggregation
            payload = {
                "score": None,
                "raw_score": None,
                "error": "CancelledError: an earlier fold of this candidate failed",
                "elapsed": 0.0,
            }
        else:
            exception = fold_future.exception()
            if exception is not None:
                # infrastructure failure (pickling error, broken pool, ...):
                # recorded like any pipeline failure instead of killing the search
                payload = {
                    "score": None,
                    "raw_score": None,
                    "error": _format_error(exception),
                }
            else:
                payload = fold_future.result()
        self._record(index, payload)

    def _fold_failed(self, index, message):
        """File a fold that could not even be submitted (e.g. broken pool)."""
        self._record(index, {
            "score": None, "raw_score": None, "error": message, "elapsed": 0.0,
        })

    def _ingest_fold(self, index, payload, telemetry):
        """Forward worker-captured events; synthesize the terminal fold event.

        The coordinator sees every fold payload (that is how outcomes
        aggregate), so the terminal ``fold_finished``/``fold_cancelled``
        event is synthesized here from the payload — uniformly across
        backends, guaranteeing the replayer can re-derive the candidate's
        record from fold events alone.  Worker-captured events (fold
        start, cache, shm) ride in under the payload's ``"events"`` key
        and are ingested with the candidate context the worker lacked.
        """
        sink, tenant = telemetry
        candidate = self.candidate
        context = {
            "tenant": tenant,
            "iteration": candidate.iteration,
            "fold": index,
            "template": candidate.template_name,
        }
        events = payload.pop("events", None)
        if events:
            sink.ingest(events, **context)
        error = payload.get("error")
        cancelled = isinstance(error, str) and error.startswith("CancelledError")
        sink.emit(
            "fold_cancelled" if cancelled else "fold_finished",
            score=payload.get("score"), raw_score=payload.get("raw_score"),
            error=error, elapsed=payload.get("elapsed"),
            cache_hits=payload.get("cache_hits", 0),
            cache_misses=payload.get("cache_misses", 0),
            **context,
        )

    def _record(self, index, payload):
        telemetry = getattr(self.candidate, "telemetry", None)
        if telemetry is not None:
            self._ingest_fold(index, payload, telemetry)
        if payload.get("error"):
            # a doomed candidate's queued work is wasted compute; cancel
            # only *later* folds so the first failing fold in fold order —
            # the error the serial backend would report — is never a
            # cancellation
            for later in self._fold_futures[index + 1:]:
                if later is not None:
                    later.cancel()
        with self._lock:
            self._fold_results[index] = payload
            self._remaining -= 1
            finished = self._remaining == 0
        pruner = getattr(self.candidate, "pruner", None)
        if pruner is not None and not payload.get("error"):
            # every successful fold — including a candidate's last one —
            # feeds the shared optimistic per-fold cap, exactly like the
            # serial path; only the discard *decision* needs folds left
            pruner.observe_fold(payload["score"])
            if not finished:
                self._maybe_prune(pruner)
        if finished:
            self._outcome = _aggregate_folds(self._fold_results, self._pruned_reason)
            self._completion_queue.put(self)

    def _maybe_prune(self, pruner):
        """Early-discard check after one successful fold.

        Consults the search's shared :class:`PruneController`: when even
        the optimistic bound over the remaining folds cannot beat the
        task best minus the margin, every not-yet-running fold of this
        candidate is cancelled (the running ones finish and are simply
        ignored by the pruned aggregation).  Reuses the same
        fold-cancellation machinery as fold failures.
        """
        with self._lock:
            if self._pruned_reason is not None:
                return
            scores = [
                fold["score"] for fold in self._fold_results
                if fold is not None and not fold.get("error")
            ]
            n_folds = len(self._fold_results)
        reason = pruner.assess(scores, n_folds)
        if reason is None:
            return
        with self._lock:
            if self._pruned_reason is not None:
                return
            self._pruned_reason = reason
        telemetry = getattr(self.candidate, "telemetry", None)
        if telemetry is not None:
            sink, tenant = telemetry
            sink.emit(
                "prune_decision", tenant=tenant,
                iteration=self.candidate.iteration,
                template=self.candidate.template_name,
                reason=reason, n_completed=len(scores), n_folds=n_folds,
            )
        for fold_future in self._fold_futures:
            if fold_future is not None:
                fold_future.cancel()

    def done(self):
        return self._outcome is not None

    def result(self):
        if self._outcome is None:
            raise RuntimeError("Candidate evaluation has not completed yet")
        return self._outcome


def _dispatch_group_fold(index, job, futures):
    """Fan one fused group-fold job's payload list out to the member futures.

    Runs as the job's done-callback: the job result is one fold payload
    per group member (in member order); infrastructure failures are
    replicated to every member, exactly as they would have hit each
    individual fold submission.
    """
    n_members = len(futures)
    if job.cancelled():
        payloads = [
            {
                "score": None,
                "raw_score": None,
                "error": "CancelledError: the backend was shut down before this fold ran",
                "elapsed": 0.0,
            }
            for _ in range(n_members)
        ]
    else:
        exception = job.exception()
        if exception is not None:
            error = _format_error(exception)
            payloads = [
                {"score": None, "raw_score": None, "error": error, "elapsed": 0.0}
                for _ in range(n_members)
            ]
        else:
            payloads = job.result()
            if not isinstance(payloads, list) or len(payloads) != n_members:
                error = "RuntimeError: batched fold returned {} payloads for {} candidates".format(
                    len(payloads) if isinstance(payloads, list) else type(payloads).__name__,
                    n_members,
                )
                payloads = [
                    {"score": None, "raw_score": None, "error": error, "elapsed": 0.0}
                    for _ in range(n_members)
                ]
    for future, payload in zip(futures, payloads):
        future._record(index, payload)


class ExecutionBackend:
    """Where and how proposed pipelines are evaluated.

    The coordinator interacts with a backend through three calls:
    :meth:`submit` hands over an :class:`EvaluationCandidate` and returns a
    future, :meth:`collect_one` blocks for the next completed future (the
    primitive behind the sliding-window search loop; :meth:`as_completed`
    is the drain-everything convenience built on it), and :meth:`shutdown`
    releases any workers.
    """

    name = None

    def submit(self, candidate):
        """Start evaluating ``candidate``; returns a candidate future."""
        raise NotImplementedError

    def submit_many(self, candidates):
        """Submit a batch of candidates at once; returns their futures.

        Backends that can fuse same-template candidates into batched
        evaluation passes override this; the base implementation simply
        loops :meth:`submit`.  Futures are returned in submission order,
        and the evaluation semantics (scores, error strings) are
        identical either way.
        """
        return [self.submit(candidate) for candidate in candidates]

    def collect_one(self):
        """Block until one submitted-but-uncollected future completes.

        Returns the completed future, or ``None`` when nothing is
        outstanding — the signal that lets the sliding-window loop keep
        exactly ``n_pending`` evaluations in flight, collecting a single
        completion and immediately proposing its replacement instead of
        draining a whole round.
        """
        raise NotImplementedError

    def as_completed(self):
        """Yield submitted-but-uncollected futures as they complete."""
        while True:
            future = self.collect_one()
            if future is None:
                return
            yield future

    def drain(self):
        """Discard any uncollected futures left over from a previous use.

        A search that aborted mid-collection (exception, interrupt) can
        leave completed futures behind on a caller-owned backend; the next
        search drains them so stale candidates never leak into its
        records.  Blocks until in-flight work finishes.
        """
        for _ in self.as_completed():
            pass

    def shutdown(self):
        """Release every worker resource held by the backend."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
        return False

    def __repr__(self):
        return "{}()".format(type(self).__name__)


class SerialBackend(ExecutionBackend):
    """Evaluate candidates synchronously in the calling process.

    ``submit`` blocks until the evaluation finishes, so the search behaves
    bit-identically to the historical serial loop: same evaluation calls,
    same error strings, same random-number consumption.
    """

    name = "serial"

    def __init__(self):
        self._completed = []

    def submit(self, candidate):
        from repro.automl import search

        telemetry = getattr(candidate, "telemetry", None)
        started = time.time()
        error = None
        pruned = False
        score = raw_score = None
        collect = {}
        # the new knobs are only passed when enabled, so the historical
        # call signature — which tests and instrumentation rely on — is
        # preserved for the default configuration
        extra = {}
        prefix_cache = resolve_prefix_cache(candidate.cache_config)
        if prefix_cache is not None:
            extra.update(prefix_cache=prefix_cache, collect=collect)
        if candidate.pruner is not None:
            extra["pruner"] = candidate.pruner
        if telemetry is not None:
            # the coordinator *is* the worker here: cross_validate_template
            # captures its own per-fold terminal events (and the cache/prune
            # events inside them), ingested below with the candidate context
            begin_capture()
        try:
            score, raw_score = search.cross_validate_template(
                candidate.template, candidate.hyperparameters, candidate.task,
                n_splits=candidate.n_splits, random_state=candidate.random_state,
                **extra,
            )
        except PrunedEvaluation as discarded:
            error = _format_error(discarded)
            pruned = True
        except Exception as failure:  # noqa: BLE001 - failed pipelines are recorded, not fatal
            error = _format_error(failure)
        if telemetry is not None:
            sink, tenant = telemetry
            sink.ingest(
                end_capture(), tenant=tenant, iteration=candidate.iteration,
                template=candidate.template_name,
            )
        outcome = EvaluationOutcome(
            score, raw_score, error, time.time() - started, pruned=pruned,
            cache_hits=collect.get("cache_hits", 0),
            cache_misses=collect.get("cache_misses", 0),
            cache_bytes=collect.get("cache_bytes", 0),
        )
        future = CandidateFuture(candidate, outcome)
        self._completed.append(future)
        return future

    def submit_many(self, candidates):
        futures = []
        for group in batch_eval.group_candidates(candidates):
            if len(group) == 1:
                futures.append(self.submit(group[0]))
            else:
                futures.extend(self._submit_group(group))
        return futures

    def _submit_group(self, candidates):
        """Evaluate a fused same-template group synchronously, fold-major.

        Each fold runs once for the whole group through
        :func:`~repro.automl.batch_eval.evaluate_candidate_group`; fold
        payloads are aggregated per candidate with the exact
        :func:`_aggregate_folds` semantics the pool backends use, which
        match the looped serial path bit for bit.  Early-discard pruning
        still works fold-major: a candidate pruned (or failed) after fold
        *k* is simply excluded from the group's later fold batches.
        """
        lead = candidates[0]
        telemetry = getattr(lead, "telemetry", None)
        started = time.time()
        try:
            folds = task_cv_indices(
                lead.task, n_splits=lead.n_splits, random_state=lead.random_state,
            )
        except Exception as failure:  # noqa: BLE001 - split failures are recorded
            error = _format_error(failure)
            elapsed = time.time() - started
            futures = [
                CandidateFuture(candidate, EvaluationOutcome(None, None, error, elapsed))
                for candidate in candidates
            ]
            self._completed.extend(futures)
            return futures

        prefix_cache = resolve_prefix_cache(lead.cache_config)
        pruner = lead.pruner
        n_candidates = len(candidates)
        n_folds = len(folds)
        if telemetry is not None:
            sink, tenant = telemetry
            sink.emit(
                "batch_group_formed", tenant=tenant, size=n_candidates,
                template=lead.template_name, n_folds=n_folds,
                iterations=[candidate.iteration for candidate in candidates],
                reason="same-template candidates fused into one fold-major group",
            )
            for candidate in candidates:
                for fold_index in range(n_folds):
                    sink.emit(
                        "fold_dispatched", tenant=tenant,
                        iteration=candidate.iteration, fold=fold_index,
                        template=candidate.template_name,
                    )
        fold_results = [[] for _ in range(n_candidates)]
        pruned_reason = [None] * n_candidates
        failed = [False] * n_candidates
        for fold_index, (train_indices, val_indices) in enumerate(folds):
            live = [
                index for index in range(n_candidates)
                if pruned_reason[index] is None and not failed[index]
            ]
            if not live:
                break
            train_task, val_task = materialize_cv_fold(lead.task, train_indices, val_indices)
            data_key = None
            if prefix_cache is not None:
                data_key = fold_data_key(lead.task, train_indices)
            if telemetry is not None:
                begin_capture()
                capture_event("fold_started", batch_size=len(live))
            payloads = batch_eval.evaluate_candidate_group(
                lead.template, [candidates[index].hyperparameters for index in live],
                train_task, val_task, prefix_cache=prefix_cache, data_key=data_key,
            )
            if telemetry is not None:
                sink, tenant = telemetry
                sink.ingest(
                    end_capture(), tenant=tenant,
                    iteration=candidates[live[0]].iteration, fold=fold_index,
                    template=lead.template_name,
                )
            for index, payload in zip(live, payloads):
                fold_results[index].append(payload)
                if telemetry is not None:
                    sink.emit(
                        "fold_finished", tenant=tenant,
                        iteration=candidates[index].iteration, fold=fold_index,
                        template=candidates[index].template_name,
                        score=payload.get("score"),
                        raw_score=payload.get("raw_score"),
                        error=payload.get("error"),
                        elapsed=payload.get("elapsed"),
                        cache_hits=payload.get("cache_hits", 0),
                        cache_misses=payload.get("cache_misses", 0),
                    )
                if payload.get("error"):
                    failed[index] = True
                elif pruner is not None:
                    pruner.observe_fold(payload["score"])
                    scores = [
                        fold["score"] for fold in fold_results[index]
                        if not fold.get("error")
                    ]
                    reason = pruner.assess(scores, n_folds)
                    if reason is not None:
                        pruned_reason[index] = reason
                        if telemetry is not None:
                            sink.emit(
                                "prune_decision", tenant=tenant,
                                iteration=candidates[index].iteration,
                                template=candidates[index].template_name,
                                reason=reason, n_completed=len(scores),
                                n_folds=n_folds,
                            )
        futures = []
        for index, candidate in enumerate(candidates):
            outcome = _aggregate_folds(fold_results[index], pruned_reason[index])
            futures.append(CandidateFuture(candidate, outcome))
        self._completed.extend(futures)
        return futures

    def collect_one(self):
        if not self._completed:
            return None
        return self._completed.pop(0)


class _PoolBackend(ExecutionBackend):
    """Shared machinery for the executor-pool backends.

    ``submit`` splits the candidate into its cross-validation folds and
    pushes each fold into the shared executor queue (work-stealing
    dispatch); ``as_completed`` drains the completion queue fed by the
    fold-done callbacks.
    """

    def __init__(self, workers=None):
        import os

        self.workers = (os.cpu_count() or 1) if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self._executor = self._make_executor()
        self._completion_queue = queue.Queue()
        self._outstanding = 0

    def _make_executor(self):
        raise NotImplementedError

    def submit(self, candidate):
        started = time.time()
        try:
            folds = task_cv_indices(
                candidate.task, n_splits=candidate.n_splits,
                random_state=candidate.random_state,
            )
        except Exception as failure:  # noqa: BLE001 - split failures are recorded like
            # any pipeline failure, matching the serial backend's behaviour
            outcome = EvaluationOutcome(
                None, None,
                _format_error(failure),
                time.time() - started,
            )
            future = CandidateFuture(candidate, outcome)
            self._outstanding += 1
            self._completion_queue.put(future)
            return future
        future = _PooledCandidateFuture(candidate, len(folds), self._completion_queue)
        self._outstanding += 1
        telemetry = getattr(candidate, "telemetry", None)
        if telemetry is not None:
            sink, tenant = telemetry
            for fold_index in range(len(folds)):
                sink.emit(
                    "fold_dispatched", tenant=tenant, iteration=candidate.iteration,
                    fold=fold_index, template=candidate.template_name,
                )
        # submit every fold before attaching callbacks: a fast-failing fold's
        # callback cancels later siblings, which must all exist by then.  A
        # fold that cannot even be submitted (broken/shut-down pool) becomes
        # a failed payload, so the candidate future still completes and
        # as_completed()/drain() never hang on it.
        submit_error = None
        for train_indices, val_indices in folds:
            if submit_error is None:
                try:
                    future._fold_futures.append(
                        self._submit_fold(candidate, train_indices, val_indices)
                    )
                    continue
                except Exception as failure:  # noqa: BLE001 - executor failures are data
                    submit_error = _format_error(failure)
            future._fold_futures.append(None)
        for index, fold_future in enumerate(future._fold_futures):
            if fold_future is None:
                future._fold_failed(index, submit_error)
            else:
                fold_future.add_done_callback(
                    lambda fold, index=index, future=future: future._fold_done(index, fold)
                )
        return future

    def _submit_fold(self, candidate, train_indices, val_indices):
        """Push one fold into the executor; the task travels by reference."""
        return self._executor.submit(
            evaluate_fold_indices, candidate.template, candidate.hyperparameters,
            candidate.task, train_indices, val_indices,
            cache_config=candidate.cache_config,
            capture_events=getattr(candidate, "telemetry", None) is not None,
        )

    def _supports_group_dispatch(self):
        """Whether fused group submissions can run on this backend."""
        return True

    def submit_many(self, candidates):
        futures = []
        for group in batch_eval.group_candidates(candidates):
            if len(group) == 1 or not self._supports_group_dispatch():
                futures.extend(self.submit(candidate) for candidate in group)
            else:
                futures.extend(self._submit_group(group))
        return futures

    def _submit_group(self, candidates):
        """Dispatch a fused same-template group, one batched job per fold.

        Work-stealing granularity stays at the fold level: each fold of
        the group is one executor job evaluating every member's
        configuration in a fused pass.  Every member still gets its own
        :class:`_PooledCandidateFuture`; the fold job's done-callback fans
        the per-candidate payloads out to them, so aggregation, error
        semantics and completion-queue behaviour are unchanged.  Fold
        cancellation on a member's failure is intentionally disabled for
        group jobs (the other members still need the fold), which also
        means fold-level pruning cannot cancel a group's queued folds —
        batching trades some pruning reactivity for fused throughput.
        """
        lead = candidates[0]
        started = time.time()
        try:
            folds = task_cv_indices(
                lead.task, n_splits=lead.n_splits, random_state=lead.random_state,
            )
        except Exception as failure:  # noqa: BLE001 - split failures are recorded
            error = _format_error(failure)
            elapsed = time.time() - started
            futures = []
            for candidate in candidates:
                future = CandidateFuture(candidate, EvaluationOutcome(None, None, error, elapsed))
                self._outstanding += 1
                self._completion_queue.put(future)
                futures.append(future)
            return futures
        futures = [
            _PooledCandidateFuture(candidate, len(folds), self._completion_queue)
            for candidate in candidates
        ]
        self._outstanding += len(futures)
        telemetry = getattr(lead, "telemetry", None)
        if telemetry is not None:
            sink, tenant = telemetry
            sink.emit(
                "batch_group_formed", tenant=tenant, size=len(candidates),
                template=lead.template_name, n_folds=len(folds),
                iterations=[candidate.iteration for candidate in candidates],
                reason="same-template candidates co-submitted in one scheduler burst",
            )
            for candidate in candidates:
                for fold_index in range(len(folds)):
                    sink.emit(
                        "fold_dispatched", tenant=tenant,
                        iteration=candidate.iteration, fold=fold_index,
                        template=candidate.template_name,
                    )
        hyperparameters_list = [candidate.hyperparameters for candidate in candidates]
        jobs = []
        submit_error = None
        for train_indices, val_indices in folds:
            if submit_error is None:
                try:
                    jobs.append(
                        self._submit_fold_batch(
                            lead, hyperparameters_list, train_indices, val_indices
                        )
                    )
                    continue
                except Exception as failure:  # noqa: BLE001 - executor failures are data
                    submit_error = _format_error(failure)
            jobs.append(None)
        for index, job in enumerate(jobs):
            if job is None:
                for future in futures:
                    future._fold_failed(index, submit_error)
            else:
                job.add_done_callback(
                    lambda fold, index=index, futures=futures: _dispatch_group_fold(
                        index, fold, futures
                    )
                )
        return futures

    def _submit_fold_batch(self, candidate, hyperparameters_list, train_indices, val_indices):
        """Push one fused group fold into the executor (task by reference)."""
        return self._executor.submit(
            evaluate_fold_indices_batch, candidate.template, hyperparameters_list,
            candidate.task, train_indices, val_indices,
            cache_config=candidate.cache_config,
            capture_events=getattr(candidate, "telemetry", None) is not None,
        )

    def collect_one(self):
        if not self._outstanding:
            return None
        future = self._completion_queue.get()
        self._outstanding -= 1
        return future

    def shutdown(self):
        # cancel_futures: on a normal exit nothing is queued; on an aborted
        # search it stops queued folds from burning workers before release
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __repr__(self):
        return "{}(workers={})".format(type(self).__name__, self.workers)


class ThreadBackend(_PoolBackend):
    """Evaluate folds on a thread pool (shared memory, no pickling)."""

    name = "thread"

    def _make_executor(self):
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessBackend(_PoolBackend):
    """Evaluate folds on a process pool (true multi-core parallelism).

    Everything crossing the process boundary — the worker function, the
    template, the hyperparameters and the fold indices — is picklable;
    fold payloads come back as plain dicts so even exotic worker
    exceptions survive the return trip.

    Parameters
    ----------
    workers:
        Worker process count (default: the CPU count).
    task_cache_size:
        Tasks kept resident per worker (default 8).  The first fold of a
        task ships it once to each worker through an on-disk pickle (a
        :class:`TaskPayload`); later folds reuse the worker's cached copy,
        so the dataset is not re-pickled into every fold submission.
        ``0`` disables the cache and restores the historical behaviour of
        materializing and shipping the train/val subsets of every fold.
        Keep the size at or above the number of distinct tasks with folds
        in flight at once (a search evaluates one task at a time, so the
        default has ample headroom for suite runs).
    data_plane:
        How task data reaches the workers.  ``"shm"`` (the default)
        publishes pure-ndarray tasks once into shared-memory segments
        (:mod:`repro.automl.shm`) that workers map read-only — zero
        copies after publication; tasks that cannot be shared (object
        dtypes, non-array context values, no shared-memory support) fall
        back to the pickle hand-off per task.  ``"pickle"`` forces the
        historical on-disk pickle for everything.  The per-task plane
        actually used is tallied in :attr:`plane_counts`.
    fold_timeout:
        Seconds a dispatched fold may run before the supervised pool
        kills its worker and retries the fold.  Setting this (or
        ``max_fold_retries``) swaps the plain ``ProcessPoolExecutor``
        for a :class:`~repro.automl.supervisor.SupervisedWorkerPool`:
        worker deaths no longer surface as ``BrokenProcessPool`` but as
        a per-worker respawn plus a retried fold, and a fold that keeps
        killing its worker is quarantined as a recorded failure.
    max_fold_retries:
        Crash/timeout retries per fold before quarantine (default 1
        when supervision is enabled).
    """

    name = "process"

    def __init__(self, workers=None, task_cache_size=8, data_plane="shm",
                 fold_timeout=None, max_fold_retries=None):
        self.task_cache_size = int(task_cache_size)
        if self.task_cache_size < 0:
            raise ValueError("task_cache_size must be non-negative")
        if data_plane not in DATA_PLANES:
            raise ValueError(
                "Unknown data_plane {!r}; available planes: {}".format(
                    data_plane, list(DATA_PLANES)
                )
            )
        self.data_plane = data_plane
        self.fold_timeout = None if fold_timeout is None else float(fold_timeout)
        self.max_fold_retries = (
            None if max_fold_retries is None else int(max_fold_retries)
        )
        if self.max_fold_retries is not None and self.max_fold_retries < 0:
            raise ValueError("max_fold_retries must be non-negative")
        self._payloads = OrderedDict()  # id(task) -> (task, TaskPayload)
        self._segments = OrderedDict()  # id(task) -> (task, SharedTaskSegment)
        self._payload_ids = count()
        #: Tasks shipped per transport: ``{"shm": n, "pickle": n}``.
        self.plane_counts = {"shm": 0, "pickle": 0}
        # reclaim segments leaked by coordinators that died without running
        # their atexit hook (SIGKILL, power loss) — on every startup, not
        # only shm-plane ones: a pickle-plane run should still clean up
        # after a crashed shm-plane predecessor
        shm.sweep_stale_segments()
        super().__init__(workers=workers)

    @property
    def supervised(self):
        """Whether folds run under the supervised (fault-tolerant) pool."""
        return self.fold_timeout is not None or self.max_fold_retries is not None

    def _make_executor(self):
        initializer, initargs = None, ()
        if self.task_cache_size:
            initializer = _configure_worker_cache
            initargs = (self.task_cache_size,)
        if self.supervised:
            from repro.automl.supervisor import (
                DEFAULT_MAX_FOLD_RETRIES,
                SupervisedWorkerPool,
            )

            retries = self.max_fold_retries
            if retries is None:
                retries = DEFAULT_MAX_FOLD_RETRIES
            pool = SupervisedWorkerPool(
                max_workers=self.workers,
                initializer=initializer,
                initargs=initargs,
                fold_timeout=self.fold_timeout,
                max_fold_retries=retries,
            )
            pool.set_fault_listener(self._repair_data_plane)
            return pool
        if initializer is None:
            return ProcessPoolExecutor(max_workers=self.workers)
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=initializer,
            initargs=initargs,
        )

    @property
    def supervisor_stats(self):
        """Supervision counters, or ``None`` when running unsupervised."""
        stats = getattr(self._executor, "stats", None)
        return dict(stats) if stats is not None else None

    def _repair_data_plane(self):
        """Re-publish any shm segment whose backing file went missing.

        The supervised pool calls this before retrying a fold, so a
        segment unlinked out from under the workers (a crashed writer, a
        fault-injection unlink) is restored from the coordinator's
        still-live mapping and the retried fold can attach again.
        """
        for _, segment in list(self._segments.values()):
            try:
                segment.ensure_published()
            except Exception:  # noqa: BLE001 - a failed repair fails the retry, not us
                pass

    def _task_payload(self, task):
        """The on-disk payload handle for ``task``, written on first use.

        Holding a reference to the task itself keeps its ``id`` stable for
        the lifetime of the cache entry; the payload key carries a
        monotonic counter so a recycled ``id`` after eviction can never
        alias a stale entry in a worker's cache.
        """
        entry = self._payloads.get(id(task))
        if entry is not None:
            self._payloads.move_to_end(id(task))
            return entry[1]
        descriptor, path = tempfile.mkstemp(prefix="repro-task-", suffix=".pkl")
        try:
            with os.fdopen(descriptor, "wb") as stream:
                pickle.dump(task, stream, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            os.unlink(path)
            raise
        _register_spill_file(path)
        payload = TaskPayload("task-{}".format(next(self._payload_ids)), path)
        self._payloads[id(task)] = (task, payload)
        self.plane_counts["pickle"] += 1
        while len(self._payloads) > self.task_cache_size:
            _, (_, stale) = self._payloads.popitem(last=False)
            _discard_spill_file(stale.path)
        return payload

    def _task_ref(self, task):
        """The transport handle shipped with every fold of ``task``.

        On the shm plane the task is published once into a shared-memory
        segment and its picklable :class:`~repro.automl.shm.SharedTaskHandle`
        travels instead of a :class:`TaskPayload`; non-shareable tasks
        (and any publication failure) fall back to the pickle plane for
        that task.  A task that already went down one plane stays there —
        workers key their resident cache by the handle, so switching
        transports mid-task would just duplicate the resident copy.
        """
        entry = self._segments.get(id(task))
        if entry is not None:
            self._segments.move_to_end(id(task))
            return entry[1].handle
        if (
            self.data_plane == "shm"
            and id(task) not in self._payloads
        ):
            if shm.shm_available() and shm.task_is_shareable(task):
                try:
                    segment = shm.publish_task(task)
                except Exception:  # noqa: BLE001 - publication failure falls back to pickle
                    segment = None
                if segment is not None:
                    self._segments[id(task)] = (task, segment)
                    self.plane_counts["shm"] += 1
                    emit_active(
                        "shm_publish", task=getattr(task, "name", None),
                        plane_counts=dict(self.plane_counts),
                    )
                    while len(self._segments) > max(self.task_cache_size, 1):
                        _, (_, stale) = self._segments.popitem(last=False)
                        stale.release()
                    return segment.handle
                emit_active(
                    "shm_fallback", task=getattr(task, "name", None),
                    reason="shared-memory publication failed",
                    plane_counts=dict(self.plane_counts),
                )
            else:
                emit_active(
                    "shm_fallback", task=getattr(task, "name", None),
                    reason="shared memory unavailable or task not shareable",
                    plane_counts=dict(self.plane_counts),
                )
        return self._task_payload(task)

    def _submit_fold(self, candidate, train_indices, val_indices):
        if not self.task_cache_size:
            # cache disabled: ship the materialized fold subsets (historical
            # path).  The prefix-cache key is still derived from the parent
            # task + indices here in the coordinator (one memoized parent
            # digest), so this path shares cache entries with the index
            # path instead of re-hashing the shipped subset per fold.
            train_task, val_task = materialize_cv_fold(
                candidate.task, train_indices, val_indices
            )
            data_key = None
            if candidate.cache_config is not None:
                data_key = fold_data_key(candidate.task, train_indices)
            return self._executor.submit(
                evaluate_fold, candidate.template, candidate.hyperparameters,
                train_task, val_task, cache_config=candidate.cache_config,
                data_key=data_key,
                capture_events=getattr(candidate, "telemetry", None) is not None,
            )
        return self._executor.submit(
            evaluate_fold_indices, candidate.template, candidate.hyperparameters,
            self._task_ref(candidate.task), train_indices, val_indices,
            cache_config=candidate.cache_config,
            capture_events=getattr(candidate, "telemetry", None) is not None,
        )

    def _supports_group_dispatch(self):
        # the ship-every-fold path has no task handle to batch against
        return self.task_cache_size > 0

    def _submit_fold_batch(self, candidate, hyperparameters_list, train_indices, val_indices):
        return self._executor.submit(
            evaluate_fold_indices_batch, candidate.template, hyperparameters_list,
            self._task_ref(candidate.task), train_indices, val_indices,
            cache_config=candidate.cache_config,
            capture_events=getattr(candidate, "telemetry", None) is not None,
        )

    def shutdown(self):
        super().shutdown()
        while self._payloads:
            _, (_, payload) = self._payloads.popitem(last=False)
            _discard_spill_file(payload.path)
        while self._segments:
            _, (_, segment) = self._segments.popitem(last=False)
            segment.release()

    def __repr__(self):
        return "{}(workers={}, task_cache_size={}, data_plane={!r})".format(
            type(self).__name__, self.workers, self.task_cache_size, self.data_plane
        )


def _unlink_quietly(path):
    try:
        os.unlink(path)
    except OSError:
        pass


# -- spill-file safety net ----------------------------------------------------------

_SPILL_LOCK = threading.Lock()
#: Task pickle spill files written by live process backends; swept at
#: interpreter exit so crashed searches don't leak task-sized files in
#: ``$TMPDIR``.  Entries are removed again on the backend's own eviction
#: and shutdown unlinks (the normal path).
_SPILL_FILES = set()
_SPILL_ATEXIT_REGISTERED = False


def _register_spill_file(path):
    global _SPILL_ATEXIT_REGISTERED
    with _SPILL_LOCK:
        if not _SPILL_ATEXIT_REGISTERED:
            atexit.register(_sweep_spill_files)
            _SPILL_ATEXIT_REGISTERED = True
        _SPILL_FILES.add(path)


def _discard_spill_file(path):
    """Unlink a spill file and drop it from the exit sweep."""
    with _SPILL_LOCK:
        _SPILL_FILES.discard(path)
    _unlink_quietly(path)


def _sweep_spill_files():
    with _SPILL_LOCK:
        paths = list(_SPILL_FILES)
        _SPILL_FILES.clear()
    for path in paths:
        _unlink_quietly(path)


BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def get_backend(backend, workers=None, task_cache_size=None, data_plane=None,
                fold_timeout=None, max_fold_retries=None):
    """Resolve a backend instance from a name, class or instance.

    ``workers`` is forwarded to the pool backends and ignored by the
    serial backend; ``task_cache_size`` (the worker-resident dataset cache
    knob), ``data_plane`` (the task transport, ``"shm"``/``"pickle"``)
    and the supervision knobs ``fold_timeout``/``max_fold_retries`` apply
    only to the process backend and keep the backend's own defaults when
    ``None``.  Setting any of them for something that cannot honor it —
    an already-constructed instance, or a backend without worker
    processes — is rejected rather than silently ignored.
    """
    process_knobs = (
        ("task_cache_size", task_cache_size),
        ("data_plane", data_plane),
        ("fold_timeout", fold_timeout),
        ("max_fold_retries", max_fold_retries),
    )
    if isinstance(backend, ExecutionBackend):
        for knob, value in process_knobs:
            if value is not None:
                raise ValueError(
                    "{} cannot be applied to an existing backend "
                    "instance; configure it on the backend directly".format(knob)
                )
        return backend
    if isinstance(backend, type) and issubclass(backend, ExecutionBackend):
        # instantiate the class itself so user subclasses are honored
        backend_class = backend
    else:
        if backend is None:
            backend = "serial"
        try:
            backend_class = BACKENDS[backend]
        except (KeyError, TypeError):
            raise ValueError(
                "Unknown backend {!r}; available backends: {}".format(backend, sorted(BACKENDS))
            ) from None
    if issubclass(backend_class, ProcessBackend):
        kwargs = {"workers": workers}
        for knob, value in process_knobs:
            if value is not None:
                kwargs[knob] = value
        return backend_class(**kwargs)
    for knob, value in process_knobs:
        if value is not None:
            raise ValueError(
                "{} only applies to the process backend, not {!r}".format(
                    knob, getattr(backend_class, "name", backend_class.__name__)
                )
            )
    if issubclass(backend_class, _PoolBackend):
        return backend_class(workers=workers)
    return backend_class()
