"""Pluggable pipeline-execution backends (paper Section IV-C).

The paper describes AutoBazaar as a distributed system with "a pipeline
execution engine and an AutoML coordinator" that scored 2.5 million
pipelines on a cluster.  This module is the seam between the two: the
coordinator (:class:`~repro.automl.search.AutoBazaarSearch`) decides *what*
to evaluate and an :class:`ExecutionBackend` decides *where and how* it
runs.

Three backends are provided:

``serial``
    Evaluates each candidate synchronously in the calling process —
    bit-identical to the historical single-threaded search loop.
``thread``
    Evaluates cross-validation folds on a :class:`ThreadPoolExecutor`.
``process``
    Evaluates cross-validation folds on a :class:`ProcessPoolExecutor`.

The parallel backends dispatch individual cross-validation *folds*, not
whole candidates, into one shared executor queue.  Pipeline costs are
heavily skewed (a linear model fold finishes orders of magnitude before a
gradient-boosting fold), so fixed per-candidate chunking would leave
workers idle behind stragglers; with fold-level dispatch every idle worker
steals the next fold regardless of which candidate it belongs to — the
work-stealing answer to the skew problem in parallel query processing.

All backends aggregate fold results in fold order, so a candidate's score
(the mean over folds) and its error message (the first failing fold) are
identical across backends.

Known trade-off: fold-level dispatch ships each fold's train/val subset
to the worker (``budget * n_splits`` transfers per search for the process
backend).  ``concurrent.futures`` offers no worker-resident state, so
caching the task on the workers needs worker affinity — that belongs to
the future distributed-worker backend, where data locality is the point.
For in-memory tasks at the scale of this reproduction the pickling cost
is small next to a model fit.
"""

import queue
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np

from repro.tasks.task import task_cv_splits


def _format_error(failure):
    """The one canonical error string for a failed evaluation.

    Every backend must produce byte-identical error strings for the same
    failure (the cross-backend record-equivalence contract), so all error
    formatting funnels through here.
    """
    return "{}: {}".format(type(failure).__name__, failure)


class EvaluationCandidate:
    """One proposed pipeline configuration awaiting evaluation.

    This is the unit of work submitted to an :class:`ExecutionBackend`:
    a template plus a concrete hyperparameter configuration, the task to
    cross-validate on, and the bookkeeping the coordinator needs to file
    the result (proposal iteration, default flag).
    """

    def __init__(self, iteration, template, hyperparameters, task, n_splits=3,
                 random_state=None, template_name=None, is_default=False):
        self.iteration = iteration
        self.template = template
        self.hyperparameters = dict(hyperparameters)
        self.task = task
        self.n_splits = n_splits
        self.random_state = random_state
        self.template_name = template_name or template.name
        self.is_default = is_default

    def __repr__(self):
        return "EvaluationCandidate(iteration={}, template={!r})".format(
            self.iteration, self.template_name
        )


class EvaluationOutcome:
    """The result of evaluating one candidate: scores or an error, plus timing."""

    def __init__(self, score, raw_score, error, elapsed):
        self.score = score
        self.raw_score = raw_score
        self.error = error
        self.elapsed = elapsed

    @property
    def failed(self):
        return self.error is not None

    def __repr__(self):
        return "EvaluationOutcome(score={}, error={!r})".format(self.score, self.error)


def evaluate_fold(template, hyperparameters, train_task, val_task):
    """Evaluate one cross-validation fold; the unit of work-stealing dispatch.

    Top-level (picklable) so it can be shipped to worker processes.  The
    result is a plain dict rather than a raised exception so that worker
    failures survive the trip back through pickling.
    """
    from repro.automl import search

    started = time.time()
    try:
        normalized, raw, _ = search.evaluate_pipeline(
            template, hyperparameters, train_task, val_task
        )
        return {
            "score": normalized,
            "raw_score": raw,
            "error": None,
            "elapsed": time.time() - started,
        }
    except Exception as failure:  # noqa: BLE001 - failed folds are data, not fatal
        return {
            "score": None,
            "raw_score": None,
            "error": _format_error(failure),
            "elapsed": time.time() - started,
        }


def _aggregate_folds(fold_results):
    """Combine per-fold payloads into one outcome, in fold order.

    Matches the serial ``cross_validate_template`` semantics exactly: the
    first failing fold (in fold order) determines the error, otherwise the
    score is the mean over folds.  ``elapsed`` is the summed compute time
    of the folds — the candidate's evaluation *cost*, comparable to the
    serial backend's sequential measurement — not the wall-clock wait
    since submission, which would include queue time behind other
    candidates in the batch.
    """
    elapsed = float(sum(payload.get("elapsed") or 0.0 for payload in fold_results))
    for payload in fold_results:
        if payload.get("error"):
            return EvaluationOutcome(None, None, payload["error"], elapsed)
    score = float(np.mean([payload["score"] for payload in fold_results]))
    raw_score = float(np.mean([payload["raw_score"] for payload in fold_results]))
    return EvaluationOutcome(score, raw_score, None, elapsed)


class CandidateFuture:
    """An already-completed future (used by the serial backend)."""

    def __init__(self, candidate, outcome):
        self.candidate = candidate
        self._outcome = outcome

    def done(self):
        return True

    def result(self):
        return self._outcome


class _PooledCandidateFuture:
    """Aggregates the fold futures of one candidate on a worker pool.

    Each fold future's done-callback files its payload here; when the last
    fold lands the outcome is assembled and the future enqueues itself on
    the backend's completion queue.
    """

    def __init__(self, candidate, n_folds, completion_queue):
        self.candidate = candidate
        self._fold_results = [None] * n_folds
        self._fold_futures = []
        self._remaining = n_folds
        self._completion_queue = completion_queue
        self._lock = threading.Lock()
        self._outcome = None

    def _fold_done(self, index, fold_future):
        if fold_future.cancelled():
            # cancelled because an earlier fold already failed; the real
            # error sits earlier in fold order, so this never wins the
            # first-failing-fold aggregation
            payload = {
                "score": None,
                "raw_score": None,
                "error": "CancelledError: an earlier fold of this candidate failed",
                "elapsed": 0.0,
            }
        else:
            exception = fold_future.exception()
            if exception is not None:
                # infrastructure failure (pickling error, broken pool, ...):
                # recorded like any pipeline failure instead of killing the search
                payload = {
                    "score": None,
                    "raw_score": None,
                    "error": _format_error(exception),
                }
            else:
                payload = fold_future.result()
        self._record(index, payload)

    def _fold_failed(self, index, message):
        """File a fold that could not even be submitted (e.g. broken pool)."""
        self._record(index, {
            "score": None, "raw_score": None, "error": message, "elapsed": 0.0,
        })

    def _record(self, index, payload):
        if payload.get("error"):
            # a doomed candidate's queued work is wasted compute; cancel
            # only *later* folds so the first failing fold in fold order —
            # the error the serial backend would report — is never a
            # cancellation
            for later in self._fold_futures[index + 1:]:
                if later is not None:
                    later.cancel()
        with self._lock:
            self._fold_results[index] = payload
            self._remaining -= 1
            finished = self._remaining == 0
        if finished:
            self._outcome = _aggregate_folds(self._fold_results)
            self._completion_queue.put(self)

    def done(self):
        return self._outcome is not None

    def result(self):
        if self._outcome is None:
            raise RuntimeError("Candidate evaluation has not completed yet")
        return self._outcome


class ExecutionBackend:
    """Where and how proposed pipelines are evaluated.

    The coordinator interacts with a backend through three calls:
    :meth:`submit` hands over an :class:`EvaluationCandidate` and returns a
    future, :meth:`as_completed` yields the outstanding futures in
    completion order, and :meth:`shutdown` releases any workers.
    """

    name = None

    def submit(self, candidate):
        """Start evaluating ``candidate``; returns a candidate future."""
        raise NotImplementedError

    def as_completed(self):
        """Yield submitted-but-uncollected futures as they complete."""
        raise NotImplementedError

    def drain(self):
        """Discard any uncollected futures left over from a previous use.

        A search that aborted mid-collection (exception, interrupt) can
        leave completed futures behind on a caller-owned backend; the next
        search drains them so stale candidates never leak into its
        records.  Blocks until in-flight work finishes.
        """
        for _ in self.as_completed():
            pass

    def shutdown(self):
        """Release every worker resource held by the backend."""

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
        return False

    def __repr__(self):
        return "{}()".format(type(self).__name__)


class SerialBackend(ExecutionBackend):
    """Evaluate candidates synchronously in the calling process.

    ``submit`` blocks until the evaluation finishes, so the search behaves
    bit-identically to the historical serial loop: same evaluation calls,
    same error strings, same random-number consumption.
    """

    name = "serial"

    def __init__(self):
        self._completed = []

    def submit(self, candidate):
        from repro.automl import search

        started = time.time()
        error = None
        score = raw_score = None
        try:
            score, raw_score = search.cross_validate_template(
                candidate.template, candidate.hyperparameters, candidate.task,
                n_splits=candidate.n_splits, random_state=candidate.random_state,
            )
        except Exception as failure:  # noqa: BLE001 - failed pipelines are recorded, not fatal
            error = _format_error(failure)
        outcome = EvaluationOutcome(score, raw_score, error, time.time() - started)
        future = CandidateFuture(candidate, outcome)
        self._completed.append(future)
        return future

    def as_completed(self):
        while self._completed:
            yield self._completed.pop(0)


class _PoolBackend(ExecutionBackend):
    """Shared machinery for the executor-pool backends.

    ``submit`` splits the candidate into its cross-validation folds and
    pushes each fold into the shared executor queue (work-stealing
    dispatch); ``as_completed`` drains the completion queue fed by the
    fold-done callbacks.
    """

    def __init__(self, workers=None):
        import os

        self.workers = (os.cpu_count() or 1) if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self._executor = self._make_executor()
        self._completion_queue = queue.Queue()
        self._outstanding = 0

    def _make_executor(self):
        raise NotImplementedError

    def submit(self, candidate):
        started = time.time()
        try:
            splits = task_cv_splits(
                candidate.task, n_splits=candidate.n_splits,
                random_state=candidate.random_state,
            )
        except Exception as failure:  # noqa: BLE001 - split failures are recorded like
            # any pipeline failure, matching the serial backend's behaviour
            outcome = EvaluationOutcome(
                None, None,
                _format_error(failure),
                time.time() - started,
            )
            future = CandidateFuture(candidate, outcome)
            self._outstanding += 1
            self._completion_queue.put(future)
            return future
        future = _PooledCandidateFuture(candidate, len(splits), self._completion_queue)
        self._outstanding += 1
        # submit every fold before attaching callbacks: a fast-failing fold's
        # callback cancels later siblings, which must all exist by then.  A
        # fold that cannot even be submitted (broken/shut-down pool) becomes
        # a failed payload, so the candidate future still completes and
        # as_completed()/drain() never hang on it.
        submit_error = None
        for train_task, val_task in splits:
            if submit_error is None:
                try:
                    future._fold_futures.append(self._executor.submit(
                        evaluate_fold, candidate.template, candidate.hyperparameters,
                        train_task, val_task,
                    ))
                    continue
                except Exception as failure:  # noqa: BLE001 - executor failures are data
                    submit_error = _format_error(failure)
            future._fold_futures.append(None)
        for index, fold_future in enumerate(future._fold_futures):
            if fold_future is None:
                future._fold_failed(index, submit_error)
            else:
                fold_future.add_done_callback(
                    lambda fold, index=index, future=future: future._fold_done(index, fold)
                )
        return future

    def as_completed(self):
        while self._outstanding:
            future = self._completion_queue.get()
            self._outstanding -= 1
            yield future

    def shutdown(self):
        # cancel_futures: on a normal exit nothing is queued; on an aborted
        # search it stops queued folds from burning workers before release
        self._executor.shutdown(wait=True, cancel_futures=True)

    def __repr__(self):
        return "{}(workers={})".format(type(self).__name__, self.workers)


class ThreadBackend(_PoolBackend):
    """Evaluate folds on a thread pool (shared memory, no pickling)."""

    name = "thread"

    def _make_executor(self):
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessBackend(_PoolBackend):
    """Evaluate folds on a process pool (true multi-core parallelism).

    Everything crossing the process boundary — ``evaluate_fold``, the
    template, the hyperparameters and the fold tasks — is picklable; fold
    payloads come back as plain dicts so even exotic worker exceptions
    survive the return trip.
    """

    name = "process"

    def _make_executor(self):
        return ProcessPoolExecutor(max_workers=self.workers)


BACKENDS = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def get_backend(backend, workers=None):
    """Resolve a backend instance from a name, class or instance.

    ``workers`` is forwarded to the pool backends and ignored by the
    serial backend.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, type) and issubclass(backend, ExecutionBackend):
        # instantiate the class itself so user subclasses are honored
        if issubclass(backend, _PoolBackend):
            return backend(workers=workers)
        return backend()
    if backend is None:
        backend = "serial"
    try:
        backend_class = BACKENDS[backend]
    except (KeyError, TypeError):
        raise ValueError(
            "Unknown backend {!r}; available backends: {}".format(backend, sorted(BACKENDS))
        ) from None
    if backend_class is SerialBackend:
        return backend_class()
    return backend_class(workers=workers)
