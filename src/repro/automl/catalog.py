"""The default template catalog per task type (paper Table II, right column).

Each task type maps to an ordered list of templates: the first entry is the
default template shown in Table II; the remaining entries are alternative
estimators that give the AutoML selector something to choose between.

Template names encode the estimator variant (``xgb``, ``rf``, ``linear``)
so that the primitive-swap case study of Section VI-B can run the same
search restricted to one variant or the other.
"""

from repro.core.template import Template
from repro.tasks.types import TaskType


# primitive name shorthands to keep the template definitions readable
CLASS_ENCODER = "mlprimitives.custom.preprocessing.ClassEncoder"
CLASS_DECODER = "mlprimitives.custom.preprocessing.ClassDecoder"
DFS = "featuretools.dfs"
IMPUTER = "sklearn.impute.SimpleImputer"
SCALER = "sklearn.preprocessing.StandardScaler"
CATEGORICAL_ENCODER = "mlprimitives.custom.feature_extraction.CategoricalEncoder"
XGB_CLF = "xgboost.XGBClassifier"
XGB_REG = "xgboost.XGBRegressor"
RF_CLF = "sklearn.ensemble.RandomForestClassifier"
RF_REG = "sklearn.ensemble.RandomForestRegressor"
LOGISTIC = "sklearn.linear_model.LogisticRegression"
RIDGE = "sklearn.linear_model.Ridge"
GRAPH_FEATURES = "networkx.graph_feature_extraction"
LINK_FEATURES = "networkx.link_prediction_feature_extraction"
COMMUNITY = "community.best_partition"
LIGHTFM = "lightfm.LightFM"
TEXT_CLEANER = "mlprimitives.custom.text.TextCleaner"
UNIQUE_COUNTER = "mlprimitives.custom.counters.UniqueCounter"
VOCABULARY_COUNTER = "mlprimitives.custom.counters.VocabularyCounter"
TOKENIZER = "keras.preprocessing.text.Tokenizer"
PAD_SEQUENCES = "keras.preprocessing.sequence.pad_sequences"
LSTM_TEXT = "keras.Sequential.LSTMTextClassifier"
STRING_VECTORIZER = "mlprimitives.custom.feature_extraction.StringVectorizer"
PREPROCESS_INPUT = "keras.applications.mobilenet.preprocess_input"
MOBILENET = "keras.applications.mobilenet.MobileNet"
HOG = "skimage.feature.hog"
AR_REGRESSOR = "mlprimitives.custom.timeseries.ARRegressor"
WORD_EMBEDDINGS = "mlprimitives.custom.text.WordEmbeddingVectorizer"
SOBEL = "mlprimitives.custom.image.SobelEdgeFeaturizer"


def _classification_template(name, estimator, extra_front=(), init_params=None, task_types=()):
    primitives = [CLASS_ENCODER, *extra_front, DFS, IMPUTER, SCALER, estimator, CLASS_DECODER]
    return Template(name, primitives, init_params=init_params, task_types=list(task_types))


def _regression_template(name, estimator, extra_front=(), init_params=None, task_types=()):
    primitives = [*extra_front, DFS, IMPUTER, SCALER, estimator]
    return Template(name, primitives, init_params=init_params, task_types=list(task_types))


def _build_default_templates():
    """Build the per-task-type template lists (default template first)."""
    templates = {}

    # -- tabular classification (single table, multi table, timeseries) --------------
    for modality in ("single_table", "multi_table", "timeseries"):
        task_type = TaskType(modality, "classification")
        templates[task_type] = [
            _classification_template(
                "{}_classification_xgb".format(modality), XGB_CLF, task_types=[task_type]
            ),
            _classification_template(
                "{}_classification_rf".format(modality), RF_CLF, task_types=[task_type]
            ),
            Template(
                "{}_classification_logistic".format(modality),
                [CLASS_ENCODER, DFS, IMPUTER, SCALER, LOGISTIC, CLASS_DECODER],
                task_types=[task_type],
            ),
        ]

    # -- tabular regression and forecasting --------------------------------------------
    for modality, problem in (("single_table", "regression"),
                              ("multi_table", "regression"),
                              ("single_table", "timeseries_forecasting")):
        task_type = TaskType(modality, problem)
        label = "{}_{}".format(modality, problem)
        templates[task_type] = [
            _regression_template("{}_xgb".format(label), XGB_REG, task_types=[task_type]),
            _regression_template("{}_rf".format(label), RF_REG, task_types=[task_type]),
            Template(
                "{}_ridge".format(label),
                [DFS, IMPUTER, SCALER, RIDGE],
                task_types=[task_type],
            ),
        ]

    # forecasting gets a classical autoregressive alternative on top of the
    # regression templates it shares with Table II
    forecasting = TaskType("single_table", "timeseries_forecasting")
    templates[forecasting].append(Template(
        "single_table_timeseries_forecasting_ar",
        [DFS, IMPUTER, AR_REGRESSOR],
        task_types=[forecasting],
    ))

    # -- collaborative filtering -----------------------------------------------------------
    task_type = TaskType("single_table", "collaborative_filtering")
    templates[task_type] = [
        Template("collaborative_filtering_lightfm", [DFS, LIGHTFM], task_types=[task_type]),
        Template(
            "collaborative_filtering_xgb",
            [DFS, IMPUTER, SCALER, XGB_REG],
            task_types=[task_type],
        ),
    ]

    # -- text classification and regression ---------------------------------------------------
    task_type = TaskType("text", "classification")
    templates[task_type] = [
        Template(
            "text_classification_lstm",
            [UNIQUE_COUNTER, TEXT_CLEANER, VOCABULARY_COUNTER, TOKENIZER, PAD_SEQUENCES,
             LSTM_TEXT],
            task_types=[task_type],
        ),
        Template(
            "text_classification_tfidf_xgb",
            [CLASS_ENCODER, TEXT_CLEANER, STRING_VECTORIZER, XGB_CLF, CLASS_DECODER],
            task_types=[task_type],
        ),
        Template(
            "text_classification_tfidf_rf",
            [CLASS_ENCODER, TEXT_CLEANER, STRING_VECTORIZER, RF_CLF, CLASS_DECODER],
            task_types=[task_type],
        ),
        Template(
            "text_classification_embedding_xgb",
            [CLASS_ENCODER, TEXT_CLEANER, WORD_EMBEDDINGS, XGB_CLF, CLASS_DECODER],
            task_types=[task_type],
        ),
    ]
    task_type = TaskType("text", "regression")
    templates[task_type] = [
        Template(
            "text_regression_xgb",
            [STRING_VECTORIZER, IMPUTER, XGB_REG],
            task_types=[task_type],
        ),
        Template(
            "text_regression_ridge",
            [STRING_VECTORIZER, IMPUTER, RIDGE],
            task_types=[task_type],
        ),
    ]

    # -- image classification and regression -----------------------------------------------------
    task_type = TaskType("image", "classification")
    templates[task_type] = [
        Template(
            "image_classification_mobilenet_xgb",
            [CLASS_ENCODER, PREPROCESS_INPUT, MOBILENET, XGB_CLF, CLASS_DECODER],
            task_types=[task_type],
        ),
        Template(
            "image_classification_hog_rf",
            [CLASS_ENCODER, PREPROCESS_INPUT, HOG, RF_CLF, CLASS_DECODER],
            task_types=[task_type],
        ),
        Template(
            "image_classification_sobel_logistic",
            [CLASS_ENCODER, PREPROCESS_INPUT, SOBEL, LOGISTIC, CLASS_DECODER],
            task_types=[task_type],
        ),
    ]
    task_type = TaskType("image", "regression")
    templates[task_type] = [
        Template(
            "image_regression_mobilenet_xgb",
            [PREPROCESS_INPUT, MOBILENET, XGB_REG],
            task_types=[task_type],
        ),
        Template(
            "image_regression_hog_ridge",
            [PREPROCESS_INPUT, HOG, RIDGE],
            task_types=[task_type],
        ),
    ]

    # -- graph task types ------------------------------------------------------------------------
    task_type = TaskType("graph", "link_prediction")
    templates[task_type] = [
        Template(
            "link_prediction_xgb",
            [CLASS_ENCODER, LINK_FEATURES, CATEGORICAL_ENCODER, IMPUTER, SCALER, XGB_CLF,
             CLASS_DECODER],
            task_types=[task_type],
        ),
        Template(
            "link_prediction_rf",
            [CLASS_ENCODER, LINK_FEATURES, CATEGORICAL_ENCODER, IMPUTER, SCALER, RF_CLF,
             CLASS_DECODER],
            task_types=[task_type],
        ),
    ]
    task_type = TaskType("graph", "graph_matching")
    templates[task_type] = [
        Template(
            "graph_matching_xgb",
            [CLASS_ENCODER, LINK_FEATURES, CATEGORICAL_ENCODER, IMPUTER, SCALER, XGB_CLF,
             CLASS_DECODER],
            task_types=[task_type],
        ),
        Template(
            "graph_matching_rf",
            [CLASS_ENCODER, LINK_FEATURES, CATEGORICAL_ENCODER, IMPUTER, SCALER, RF_CLF,
             CLASS_DECODER],
            task_types=[task_type],
        ),
    ]
    task_type = TaskType("graph", "vertex_nomination")
    templates[task_type] = [
        Template(
            "vertex_nomination_xgb",
            [CLASS_ENCODER, GRAPH_FEATURES, CATEGORICAL_ENCODER, IMPUTER, SCALER, XGB_CLF,
             CLASS_DECODER],
            task_types=[task_type],
        ),
        Template(
            "vertex_nomination_rf",
            [CLASS_ENCODER, GRAPH_FEATURES, CATEGORICAL_ENCODER, IMPUTER, SCALER, RF_CLF,
             CLASS_DECODER],
            task_types=[task_type],
        ),
    ]
    task_type = TaskType("graph", "community_detection")
    templates[task_type] = [
        Template(
            "community_detection_louvain",
            [COMMUNITY],
            task_types=[task_type],
        ),
    ]

    return templates


class TemplateCatalog:
    """Lookup of candidate templates per task type."""

    def __init__(self, templates=None):
        self._templates = templates or _build_default_templates()

    def task_types(self):
        """The task types this catalog provides templates for."""
        return sorted(self._templates, key=lambda tt: (tt.data_modality, tt.problem_type))

    def get(self, data_modality, problem_type, variant=None):
        """Candidate templates for a task type.

        Parameters
        ----------
        variant:
            Optional estimator-variant filter (for example ``"xgb"`` or
            ``"rf"``); used by the primitive-swap case study.
        """
        task_type = TaskType(data_modality, problem_type)
        if task_type not in self._templates:
            raise KeyError(
                "No templates available for task type {!r}".format((data_modality, problem_type))
            )
        templates = list(self._templates[task_type])
        if variant is not None:
            filtered = [t for t in templates if t.name.endswith("_" + variant) or variant in t.name]
            templates = filtered or templates
        return templates

    def default_template(self, data_modality, problem_type):
        """The Table II default template for a task type (first in the list)."""
        return self.get(data_modality, problem_type)[0]

    def add(self, data_modality, problem_type, template, default=False):
        """Register a custom template for a task type."""
        task_type = TaskType(data_modality, problem_type)
        entries = self._templates.setdefault(task_type, [])
        if default:
            entries.insert(0, template)
        else:
            entries.append(template)
        return template

    def __repr__(self):
        return "TemplateCatalog(n_task_types={})".format(len(self._templates))


def classification_hypertemplate(name="tabular_classification_hyper"):
    """A hypertemplate for tabular classification (paper Figure 4 in practice).

    Two conditional hyperparameters — the imputation strategy and the
    estimator's tree booster depth regime — derive four concrete templates
    whose tunable subspaces differ, which the AutoBazaar selector can then
    treat as separate arms.
    """
    from repro.core.annotations import HyperparamSpec
    from repro.core.template import ConditionalHyperparam, Hypertemplate

    imputer_conditional = ConditionalHyperparam(
        "sklearn.impute.SimpleImputer#0", "strategy", ["mean", "median"],
    )
    booster_conditional = ConditionalHyperparam(
        "xgboost.XGBClassifier#0", "max_depth", [2, 4],
        subspaces={
            2: [HyperparamSpec("n_estimators", "int", 40, range=(20, 80))],
            4: [HyperparamSpec("n_estimators", "int", 20, range=(10, 40))],
        },
    )
    return Hypertemplate(
        name,
        [CLASS_ENCODER, DFS, IMPUTER, SCALER, XGB_CLF, CLASS_DECODER],
        conditionals=[imputer_conditional, booster_conditional],
        task_types=[TaskType("single_table", "classification")],
    )


_DEFAULT_CATALOG = None


def default_template_catalog():
    """The process-wide default template catalog."""
    global _DEFAULT_CATALOG
    if _DEFAULT_CATALOG is None:
        _DEFAULT_CATALOG = TemplateCatalog()
    return _DEFAULT_CATALOG


def get_templates(data_modality, problem_type, variant=None):
    """Convenience accessor over the default template catalog."""
    return default_template_catalog().get(data_modality, problem_type, variant=variant)


def seed_templates(templates, random_state):
    """Clone templates with every stochastic primitive explicitly seeded.

    The catalog defaults leave estimator ``random_state`` unset, which
    draws from the process-global RNG and makes pipeline scores vary
    run-to-run — fine for exploration, fatal for the determinism and
    resume guarantees.  This helper returns copies of ``templates`` whose
    ``init_params`` pin ``random_state=random_state`` for every primitive
    whose implementation accepts that keyword (already-pinned values are
    left alone), making the evaluation of any proposed configuration a
    pure function of the configuration.  Used by checkpointed runs
    (:class:`~repro.automl.checkpoint.ExperimentRun`), where a resumed
    search must reproduce the uninterrupted run's scores exactly.
    """
    import inspect

    seeded = []
    for template in templates:
        init_params = {key: dict(value) for key, value in template.init_params.items()}
        changed = False
        for primitive_name in dict.fromkeys(template.primitives):
            try:
                annotation = template._registry.get(primitive_name)
                parameters = inspect.signature(annotation.primitive).parameters
            except (KeyError, TypeError, ValueError):
                continue
            if "random_state" not in parameters:
                continue
            step_params = init_params.setdefault(primitive_name, {})
            if "random_state" not in step_params:
                step_params["random_state"] = random_state
                changed = True
        if not changed:
            seeded.append(template)
            continue
        seeded.append(Template(
            name=template.name,
            primitives=template.primitives,
            init_params=init_params,
            input_names=template.input_names,
            output_names=template.output_names,
            outputs=template.outputs,
            tunable=template._tunable_override,
            task_types=template.task_types,
            registry=template._registry,
        ))
    return seeded
