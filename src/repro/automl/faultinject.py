"""Deterministic fault injection for the supervised execution layer.

A :class:`FaultPlan` is a seeded schedule of faults — worker kills, fold
hangs, slow folds, shared-memory unlinks — fired from *inside* worker
processes at fold granularity.  The plan travels to workers through the
``REPRO_FAULT_PLAN`` environment variable and is armed by the worker
initializer (:func:`install_from_env`), so it reaches every worker the
pool ever spawns, including the replacements spawned after a fault kills
one.  The evaluation entry points in ``backends.py`` call
:func:`maybe_inject` at the top of every fold, which is a single ``None``
check when no plan is armed.

Determinism: fold starts are counted *globally* across all workers via a
``flock``-serialized counter file in the plan directory, and each fault
fires when its ``at_fold`` index is claimed.  Each injection point claims
a fresh count, so a fault fires exactly once — the retried fold claims a
new (higher) count and runs clean.  Which concrete fold draws a given
count depends on scheduling, but that is exactly the point the chaos
suite proves: folds are pure, so *any* single-fault plan yields a final
record stream bit-identical to the fault-free run.

Fault kinds
-----------
``worker_kill``
    SIGKILL the worker mid-fold; the supervisor respawns it and retries.
``fold_hang``
    Sleep far past any reasonable ``fold_timeout``; the deadline monitor
    kills the worker and the fold is retried.
``slow_fold``
    Sleep briefly (a straggler, not a fault) — must *not* trip recovery
    when the deadline is sized sanely.
``shm_unlink``
    Unlink the fold's shared-memory segment and drop this worker's
    cached attachment, so task resolution fails retriably; the backend's
    fault listener re-publishes the segment before the retry.
"""

import contextlib
import json
import os
import random
import signal
import tempfile
import time

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX; plans simply cannot arm
    fcntl = None

#: Environment variable carrying the JSON-encoded plan to workers.
PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: Supported fault kinds.
FAULT_KINDS = ("worker_kill", "fold_hang", "slow_fold", "shm_unlink")

#: Default sleep lengths (seconds) for the time-based kinds.
DEFAULT_HANG_SECONDS = 3600.0
DEFAULT_SLOW_SECONDS = 0.25

_COUNTER_FILENAME = "fold-counter"

_ACTIVE_PLAN = None


class FaultPlan:
    """A schedule of faults keyed by global fold-start index.

    Parameters
    ----------
    faults:
        Iterable of dicts with keys ``kind`` (one of
        :data:`FAULT_KINDS`), ``at_fold`` (global fold-start index at
        which the fault fires) and optional ``seconds`` (sleep length
        for ``fold_hang``/``slow_fold``).
    plan_dir:
        Directory holding the cross-process fold counter; created under
        the system temp directory when omitted.
    """

    def __init__(self, faults, plan_dir=None):
        validated = []
        for fault in faults:
            kind = fault.get("kind")
            if kind not in FAULT_KINDS:
                raise ValueError("unknown fault kind: {!r}".format(kind))
            at_fold = int(fault.get("at_fold", 0))
            if at_fold < 0:
                raise ValueError("at_fold must be non-negative")
            entry = {"kind": kind, "at_fold": at_fold}
            if fault.get("seconds") is not None:
                entry["seconds"] = float(fault["seconds"])
            validated.append(entry)
        self.faults = validated
        if plan_dir is None:
            plan_dir = tempfile.mkdtemp(prefix="repro-fault-plan-")
        self.plan_dir = plan_dir
        self._by_fold = {fault["at_fold"]: fault for fault in self.faults}

    @classmethod
    def single(cls, kind, at_fold=0, seconds=None, plan_dir=None):
        """The single-fault plan the chaos guarantee is stated over."""
        return cls(
            [{"kind": kind, "at_fold": at_fold, "seconds": seconds}],
            plan_dir=plan_dir,
        )

    @classmethod
    def seeded(cls, seed, total_folds, kinds=FAULT_KINDS, n_faults=1,
               seconds=None, plan_dir=None):
        """Draw a reproducible schedule from ``seed``.

        Picks ``n_faults`` distinct fold indices in ``[0, total_folds)``
        and a kind for each, all from ``random.Random(seed)``.
        """
        rng = random.Random(seed)
        if total_folds < n_faults:
            raise ValueError("total_folds must cover n_faults")
        indices = rng.sample(range(total_folds), n_faults)
        faults = [
            {"kind": rng.choice(list(kinds)), "at_fold": index,
             "seconds": seconds}
            for index in sorted(indices)
        ]
        return cls(faults, plan_dir=plan_dir)

    def to_json(self):
        return json.dumps({"faults": self.faults, "plan_dir": self.plan_dir})

    @classmethod
    def from_json(cls, text):
        payload = json.loads(text)
        return cls(payload["faults"], plan_dir=payload["plan_dir"])

    @contextlib.contextmanager
    def activate(self):
        """Export the plan via the environment for the ``with`` body.

        Worker processes forked or spawned inside the body (including
        supervisor respawns) inherit the environment and arm the plan in
        their initializer.  The coordinator process itself stays unarmed
        unless it calls :func:`install_from_env` explicitly — the serial
        and thread baselines must run fault-free.
        """
        os.makedirs(self.plan_dir, exist_ok=True)
        previous = os.environ.get(PLAN_ENV_VAR)
        os.environ[PLAN_ENV_VAR] = self.to_json()
        try:
            yield self
        finally:
            if previous is None:
                os.environ.pop(PLAN_ENV_VAR, None)
            else:
                os.environ[PLAN_ENV_VAR] = previous

    # -- firing -------------------------------------------------------------------

    @property
    def _counter_path(self):
        return os.path.join(self.plan_dir, _COUNTER_FILENAME)

    def _claim_fold(self):
        """Atomically claim the next global fold-start index."""
        if fcntl is None:  # pragma: no cover - non-POSIX
            return -1
        with open(self._counter_path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            handle.seek(0)
            raw = handle.read().strip()
            value = int(raw) if raw else 0
            handle.seek(0)
            handle.truncate()
            handle.write(str(value + 1).encode("ascii"))
            handle.flush()
        return value

    def fire(self, fault, task_ref=None):
        kind = fault["kind"]
        if kind == "worker_kill":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "fold_hang":
            time.sleep(fault.get("seconds") or DEFAULT_HANG_SECONDS)
        elif kind == "slow_fold":
            time.sleep(fault.get("seconds") or DEFAULT_SLOW_SECONDS)
        elif kind == "shm_unlink":
            _unlink_task_segment(task_ref)

    def maybe_inject(self, task_ref=None):
        fault = self._by_fold.get(self._claim_fold())
        if fault is not None:
            self.fire(fault, task_ref=task_ref)


def _unlink_task_segment(task_ref):
    """Yank a published segment out from under this worker.

    Drops the worker's cached task and attachment for ``task_ref`` and
    unlinks the backing ``/dev/shm`` file, so the next resolution fails
    with a retriable error.  The coordinator still holds its mapping of
    the segment, which is what :meth:`SharedTaskSegment.ensure_published`
    restores the file from before the retry.
    """
    segment = getattr(task_ref, "segment", None)
    if segment is None:
        return  # inline payload; nothing to unlink
    from repro.automl import backends, shm

    key = getattr(task_ref, "key", None)
    if key is not None:
        backends._WORKER_TASK_CACHE.pop(key, None)
    with shm._ATTACH_LOCK:
        shm._ATTACHMENTS.pop(segment, None)
    try:
        os.unlink(os.path.join(shm._SHM_DIR, segment))
    except OSError:
        pass


# -- worker-side hooks -----------------------------------------------------------


def install_from_env():
    """Arm the plan from ``REPRO_FAULT_PLAN``; called by worker initializers."""
    global _ACTIVE_PLAN
    text = os.environ.get(PLAN_ENV_VAR)
    if not text:
        _ACTIVE_PLAN = None
        return None
    try:
        _ACTIVE_PLAN = FaultPlan.from_json(text)
    except (ValueError, KeyError):
        _ACTIVE_PLAN = None
    return _ACTIVE_PLAN


def uninstall():
    """Disarm any active plan in this process (test hygiene)."""
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = None


def maybe_inject(task_ref=None):
    """Fire a scheduled fault if this fold-start claims its index.

    A single attribute load and ``None`` check when no plan is armed, so
    the production fold hot path pays nothing for the hook.
    """
    plan = _ACTIVE_PLAN
    if plan is not None:
        plan.maybe_inject(task_ref=task_ref)
