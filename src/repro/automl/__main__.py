"""Command-line entry point: ``python -m repro.automl <task_dir> [options]``.

Solves one on-disk task (a folder written by :func:`repro.tasks.io.save_task`)
with AutoBazaar and prints the best pipeline, its scores and the session
report.

Durable runs::

    python -m repro.automl <task_dir> --store-path <dir>   # persistent store + auto warm start
    python -m repro.automl <task_dir> --run-dir <dir>      # checkpointed, resumable run
    python -m repro.automl resume <run_dir>                # continue a killed run

Multi-tenant fleet (N concurrent searches, one shared worker pool)::

    python -m repro.automl <task_dir> <task_dir> ... --fleet [--tenant-weight W ...]
"""

import argparse
import sys

from repro.automl.checkpoint import CheckpointError
from repro.automl.session import run_fleet_from_directories, run_from_directory


def build_parser():
    """Build the argument parser for the AutoBazaar CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.automl",
        description="Run an AutoBazaar pipeline search on a task stored on disk. "
                    "(Use `python -m repro.automl resume <run_dir>` to continue a "
                    "killed checkpointed run.)",
    )
    parser.add_argument("task_dir", nargs="+",
                        help="director(ies) written by repro.tasks.io.save_task; "
                             "several directories run as concurrent tenants of one "
                             "shared worker fleet (implies --fleet)")
    parser.add_argument("--fleet", action="store_true",
                        help="run the task(s) as tenants of a shared multi-tenant "
                             "worker fleet: one process/thread pool, one data "
                             "plane and one prefix cache, with fair-share "
                             "skew-aware fold scheduling across the concurrent "
                             "searches (serial backend promoted to process)")
    parser.add_argument("--tenant-weight", type=float, action="append", default=None,
                        metavar="W",
                        help="fleet fair-share weight for one tenant; repeat once "
                             "per task directory, in order (default: equal shares)")
    parser.add_argument("--budget", type=int, default=20,
                        help="number of pipeline evaluations (default: 20)")
    parser.add_argument("--tuner", default="gp_ei",
                        help="tuner name: gp_ei, gp_matern52_ei, gcp_ei or uniform")
    parser.add_argument("--selector", default="ucb1",
                        help="selector name: ucb1, best_k, best_k_velocity, thompson or uniform")
    parser.add_argument("--splits", type=int, default=3,
                        help="cross-validation folds used to score candidates")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "thread", "process"),
                        help="execution backend evaluating the pipelines (default: serial); "
                             "thread/process dispatch cross-validation folds to a worker pool")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for the thread/process backends "
                             "(default: the CPU count)")
    parser.add_argument("--pending", type=int, default=1,
                        help="candidates in flight at once; values > 1 enable "
                             "constant-liar batch proposals (default: 1)")
    parser.add_argument("--schedule", default="window", choices=("window", "barrier"),
                        help="search scheduler: 'window' keeps --pending evaluations "
                             "in flight and replaces each completion immediately; "
                             "'barrier' is the historical round-based loop "
                             "(default: window)")
    parser.add_argument("--worker-cache", type=int, default=None, metavar="TASKS",
                        help="tasks kept resident per process-backend worker; 0 ships "
                             "every fold's data instead (default: backend default)")
    parser.add_argument("--data-plane", default=None, choices=("shm", "pickle"),
                        help="process-backend task transport: 'shm' publishes the "
                             "task once into zero-copy shared memory that workers "
                             "map read-only (non-shareable tasks fall back to "
                             "pickle automatically); 'pickle' forces the historical "
                             "on-disk hand-off (default: backend default, shm)")
    parser.add_argument("--fold-timeout", type=float, default=None, metavar="SECONDS",
                        help="supervised process pool: kill the worker of any fold "
                             "running longer than SECONDS and retry the fold "
                             "(default: no deadline; setting this or "
                             "--max-fold-retries enables supervision)")
    parser.add_argument("--max-fold-retries", type=int, default=None, metavar="N",
                        help="supervised process pool: crash/timeout retries per "
                             "fold before it is recorded as a failed evaluation "
                             "(default: 1 when supervision is enabled)")
    parser.add_argument("--batch-eval", action="store_true",
                        help="evaluate same-template candidates proposed together "
                             "as fused batches (shared preprocessing prefix, "
                             "batched estimator fits); scores and record order are "
                             "unchanged — pair with --schedule barrier and "
                             "--pending > 1 for full batches")
    parser.add_argument("--prefix-cache", default="off", choices=("off", "mem", "disk"),
                        help="fitted-prefix cache: memoize fitted preprocessing "
                             "prefixes shared by candidates (same fold, same "
                             "configured prefix). 'mem' keeps a per-process LRU; "
                             "'disk' additionally shares fitted prefixes across "
                             "process-backend workers through a content-addressed "
                             "store (default: off)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="directory of the disk-tier prefix store (default: a "
                             "temporary per-search directory)")
    parser.add_argument("--prune-margin", type=float, default=None, metavar="MARGIN",
                        help="enable fold-level early-discard pruning: cancel a "
                             "candidate's remaining folds once its optimistic bound "
                             "cannot reach the task best minus MARGIN (>= 0). "
                             "Trades the bit-identical record stream for throughput "
                             "(default: off)")
    parser.add_argument("--store-path", default=None, metavar="DIR",
                        help="directory of a persistent (crash-safe JSONL) pipeline "
                             "store; records are durably appended as they are "
                             "reported, and history already in the store warm-starts "
                             "the tuners automatically")
    parser.add_argument("--warm-start", dest="warm_start", action="store_true",
                        help="force warm-starting tuners from the store history "
                             "(default: automatic when --store-path holds records)")
    parser.add_argument("--no-warm-start", dest="warm_start", action="store_false",
                        help="disable warm-starting even when the store holds history")
    parser.set_defaults(warm_start="auto")
    parser.add_argument("--run-dir", default=None, metavar="DIR",
                        help="run as a checkpointed, resumable experiment in DIR "
                             "(record log + periodic state snapshots); a killed run "
                             "continues with `python -m repro.automl resume DIR`")
    parser.add_argument("--checkpoint-every", type=int, default=1, metavar="N",
                        help="snapshot the resumable search state every N reported "
                             "records (default: 1; the record log itself is always "
                             "written per record)")
    parser.add_argument("--telemetry", default="off", metavar="{off,run-dir,PATH}",
                        help="record a structured telemetry event stream: 'run-dir' "
                             "puts it in the run directory's events/ stream (needs "
                             "--run-dir), any other value is the stream directory "
                             "itself; replay with `python -m repro.telemetry DIR` "
                             "(default: off)")
    parser.add_argument("--output", default=None,
                        help="optional path for the JSON dump of every scored pipeline")
    return parser


def build_resume_parser():
    """Build the argument parser for ``python -m repro.automl resume``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.automl resume",
        description="Resume a killed checkpointed run from its run directory. The "
                    "durable record prefix is replayed to reconstruct the exact "
                    "search state, then the search continues; the final record "
                    "stream is identical to an uninterrupted run.",
    )
    parser.add_argument("run_dir", help="run directory created with --run-dir")
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "thread", "process"),
                        help="execution backend for the remaining evaluations; may "
                             "differ from the original run (the record stream is "
                             "backend-independent)")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for the thread/process backends")
    parser.add_argument("--worker-cache", type=int, default=None, metavar="TASKS",
                        help="worker-resident task cache of the process backend")
    parser.add_argument("--fold-timeout", type=float, default=None, metavar="SECONDS",
                        help="supervised process pool: per-fold deadline for the "
                             "remaining evaluations (see the run parser)")
    parser.add_argument("--max-fold-retries", type=int, default=None, metavar="N",
                        help="supervised process pool: crash/timeout retries per fold")
    parser.add_argument("--prefix-cache", default="off", choices=("off", "mem", "disk"),
                        help="fitted-prefix cache for the remaining evaluations "
                             "(content-addressed, score-preserving; default: off)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="directory of the disk-tier prefix store")
    parser.add_argument("--telemetry", default="off", metavar="{off,run-dir,PATH}",
                        help="record telemetry events for the resumed portion: "
                             "'run-dir' appends to the run directory's events/ "
                             "stream (continuing the sequence numbers), any other "
                             "value is a stream directory (default: off)")
    return parser


def _print_result(result):
    print()
    print("best template        : {}".format(result.best_template))
    print("cross-validation     : {}".format(result.best_score))
    print("held-out test score  : {}".format(result.test_score))
    cache_stats = getattr(result, "cache_stats", None)
    if cache_stats:
        print("prefix cache         : {mode} ({hits} hits / {misses} misses, "
              "{bytes_written} bytes written)".format(**cache_stats))
    if getattr(result, "n_pruned", 0):
        print("pruned candidates    : {} of {}".format(result.n_pruned, result.n_evaluated))
    plane_counts = getattr(result, "plane_counts", None)
    if plane_counts:
        print("task data planes     : {}".format(
            ", ".join("{} {}".format(plane, count)
                      for plane, count in sorted(plane_counts.items()))))
    supervisor_stats = getattr(result, "supervisor_stats", None)
    if supervisor_stats:
        print("fault recovery       : {workers_died} workers died, "
              "{folds_retried} folds retried, {folds_timed_out} timed out, "
              "{pools_rebuilt} rebuilds, {folds_quarantined} quarantined".format(
                  **supervisor_stats))
    fleet_stats = getattr(result, "fleet_stats", None)
    if fleet_stats:
        print("fleet tenant         : {tenant} (weight {weight:g}, "
              "{folds_dispatched} folds / {fold_seconds:.2f}s, "
              "queue hwm {queue_depth_hwm}, planes {plane_counts})".format(**fleet_stats))


def _resume_main(argv):
    from repro.automl.checkpoint import resume_run
    from repro.automl.search import ReplayMismatchError
    from repro.explorer import StoreCorruptionError, report

    arguments = build_resume_parser().parse_args(argv)
    try:
        run = resume_run(
            arguments.run_dir,
            backend=arguments.backend,
            workers=arguments.workers,
            task_cache_size=arguments.worker_cache,
            prefix_cache=arguments.prefix_cache,
            cache_dir=arguments.cache_dir,
            telemetry=arguments.telemetry,
            fold_timeout=arguments.fold_timeout,
            max_fold_retries=arguments.max_fold_retries,
        )
    except (FileNotFoundError, ValueError, CheckpointError,
            ReplayMismatchError, StoreCorruptionError) as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1

    print(report(run.store, title="AutoBazaar run {}".format(run.manifest["task_name"])))
    print()
    print("run directory        : {}".format(run.run_dir))
    print("records in store     : {}".format(len(run.store)))
    _print_result(run.result)
    run.close()
    return 0


def _fleet_main(arguments, task_dirs):
    """Run the parsed task directories as concurrent fleet tenants."""
    if arguments.run_dir:
        print("error: --run-dir cannot be combined with fleet mode: checkpointed "
              "runs are single-tenant (run each task with its own --run-dir "
              "instead)", file=sys.stderr)
        return 1
    weights = arguments.tenant_weight
    if weights is not None and len(weights) != len(task_dirs):
        print("error: expected one --tenant-weight per task directory "
              "({} given for {} tasks)".format(len(weights), len(task_dirs)),
              file=sys.stderr)
        return 1
    try:
        session = run_fleet_from_directories(
            task_dirs,
            budget=arguments.budget,
            tuner=arguments.tuner,
            selector=arguments.selector,
            n_splits=arguments.splits,
            random_state=arguments.seed,
            output=arguments.output,
            backend=arguments.backend,
            workers=arguments.workers,
            n_pending=arguments.pending,
            schedule=arguments.schedule,
            task_cache_size=arguments.worker_cache,
            store_path=arguments.store_path,
            warm_start=arguments.warm_start,
            prefix_cache=arguments.prefix_cache,
            cache_dir=arguments.cache_dir,
            prune_margin=arguments.prune_margin,
            data_plane=arguments.data_plane,
            batch_eval=arguments.batch_eval,
            weights=weights,
            telemetry=arguments.telemetry,
            fold_timeout=arguments.fold_timeout,
            max_fold_retries=arguments.max_fold_retries,
        )
    except (FileNotFoundError, ValueError) as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1

    print(session.report())
    for result in session.results:
        print()
        print("task                 : {}".format(result.task_name))
        _print_result(result)
    if arguments.output:
        print()
        print("evaluation store     : {}".format(arguments.output))
    if arguments.store_path:
        print("persistent store     : {}".format(arguments.store_path))
    return 0


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "resume":
        return _resume_main(argv[1:])

    arguments = build_parser().parse_args(argv)
    task_dirs = list(arguments.task_dir)
    if arguments.fleet or len(task_dirs) > 1:
        return _fleet_main(arguments, task_dirs)
    if arguments.tenant_weight:
        print("error: --tenant-weight only applies to fleet mode", file=sys.stderr)
        return 1

    try:
        session = run_from_directory(
            task_dirs[0],
            budget=arguments.budget,
            tuner=arguments.tuner,
            selector=arguments.selector,
            n_splits=arguments.splits,
            random_state=arguments.seed,
            output=arguments.output,
            backend=arguments.backend,
            workers=arguments.workers,
            n_pending=arguments.pending,
            schedule=arguments.schedule,
            task_cache_size=arguments.worker_cache,
            store_path=arguments.store_path,
            warm_start=arguments.warm_start,
            run_dir=arguments.run_dir,
            checkpoint_every=arguments.checkpoint_every,
            prefix_cache=arguments.prefix_cache,
            cache_dir=arguments.cache_dir,
            prune_margin=arguments.prune_margin,
            data_plane=arguments.data_plane,
            batch_eval=arguments.batch_eval,
            telemetry=arguments.telemetry,
            fold_timeout=arguments.fold_timeout,
            max_fold_retries=arguments.max_fold_retries,
        )
    except (FileNotFoundError, ValueError, CheckpointError) as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1

    result = session.results[-1]
    print(session.report())
    _print_result(result)
    if arguments.output:
        print("evaluation store     : {}".format(arguments.output))
    if arguments.store_path:
        print("persistent store     : {}".format(arguments.store_path))
    if arguments.run_dir:
        print("run directory        : {} (resume with `python -m repro.automl "
              "resume {}`)".format(arguments.run_dir, arguments.run_dir))
    return 0


if __name__ == "__main__":
    sys.exit(main())
