"""Command-line entry point: ``python -m repro.automl <task_dir> [options]``.

Solves one on-disk task (a folder written by :func:`repro.tasks.io.save_task`)
with AutoBazaar and prints the best pipeline, its scores and the session
report.
"""

import argparse
import sys

from repro.automl.session import run_from_directory


def build_parser():
    """Build the argument parser for the AutoBazaar CLI."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.automl",
        description="Run an AutoBazaar pipeline search on a task stored on disk.",
    )
    parser.add_argument("task_dir", help="directory written by repro.tasks.io.save_task")
    parser.add_argument("--budget", type=int, default=20,
                        help="number of pipeline evaluations (default: 20)")
    parser.add_argument("--tuner", default="gp_ei",
                        help="tuner name: gp_ei, gp_matern52_ei, gcp_ei or uniform")
    parser.add_argument("--selector", default="ucb1",
                        help="selector name: ucb1, best_k, best_k_velocity, thompson or uniform")
    parser.add_argument("--splits", type=int, default=3,
                        help="cross-validation folds used to score candidates")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--backend", default="serial",
                        choices=("serial", "thread", "process"),
                        help="execution backend evaluating the pipelines (default: serial); "
                             "thread/process dispatch cross-validation folds to a worker pool")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker count for the thread/process backends "
                             "(default: the CPU count)")
    parser.add_argument("--pending", type=int, default=1,
                        help="candidates in flight at once; values > 1 enable "
                             "constant-liar batch proposals (default: 1)")
    parser.add_argument("--schedule", default="window", choices=("window", "barrier"),
                        help="search scheduler: 'window' keeps --pending evaluations "
                             "in flight and replaces each completion immediately; "
                             "'barrier' is the historical round-based loop "
                             "(default: window)")
    parser.add_argument("--worker-cache", type=int, default=None, metavar="TASKS",
                        help="tasks kept resident per process-backend worker; 0 ships "
                             "every fold's data instead (default: backend default)")
    parser.add_argument("--output", default=None,
                        help="optional path for the JSON dump of every scored pipeline")
    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    arguments = build_parser().parse_args(argv)
    try:
        session = run_from_directory(
            arguments.task_dir,
            budget=arguments.budget,
            tuner=arguments.tuner,
            selector=arguments.selector,
            n_splits=arguments.splits,
            random_state=arguments.seed,
            output=arguments.output,
            backend=arguments.backend,
            workers=arguments.workers,
            n_pending=arguments.pending,
            schedule=arguments.schedule,
            task_cache_size=arguments.worker_cache,
        )
    except (FileNotFoundError, ValueError) as error:
        print("error: {}".format(error), file=sys.stderr)
        return 1

    result = session.results[-1]
    print(session.report())
    print()
    print("best template        : {}".format(result.best_template))
    print("cross-validation     : {}".format(result.best_score))
    print("held-out test score  : {}".format(result.test_score))
    if arguments.output:
        print("evaluation store     : {}".format(arguments.output))
    return 0


if __name__ == "__main__":
    sys.exit(main())
