"""repro: a reproduction of "The Machine Learning Bazaar" (Smith et al., SIGMOD 2020).

The package is organized the same way the paper organizes the ML Bazaar:

* :mod:`repro.learners` — the ML substrate (numpy implementations standing
  in for scikit-learn, XGBoost, Keras, LightFM, Featuretools, OpenCV, ...);
* :mod:`repro.core` — primitives, pipelines, templates and hypertemplates
  (MLPrimitives + MLBlocks);
* :mod:`repro.tuning` — AutoML primitives: tuners and selectors (BTB);
* :mod:`repro.automl` — the AutoBazaar search system;
* :mod:`repro.tasks` — the ML task suite (synthetic tasks for 15 task types);
* :mod:`repro.explorer` — pipeline result exploration and meta-analysis (piex).
"""

from repro.core import (
    Hypertemplate,
    MLPipeline,
    PrimitiveAnnotation,
    PrimitiveRegistry,
    Template,
    get_default_registry,
    load_primitive,
)

__version__ = "0.1.0"

__all__ = [
    "MLPipeline",
    "Template",
    "Hypertemplate",
    "PrimitiveAnnotation",
    "PrimitiveRegistry",
    "get_default_registry",
    "load_primitive",
    "__version__",
]
