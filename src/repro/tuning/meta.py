"""Meta-learning across tasks: warm-starting tuners from stored pipelines.

The paper's conclusion anticipates that "as we collect more and more scored
pipelines, we expect opportunities will emerge for meta-learning ... on ML
tasks and pipelines".  This module implements that extension: a tuner that
seeds its meta-model with the best configurations previously recorded for
the same template on *other* tasks (taken from a piex
:class:`~repro.explorer.store.PipelineStore`), so the search starts from
historically good regions instead of from scratch.
"""

import numpy as np

from repro.tuning.tuners import GPEiTuner


class WarmStartGPTuner(GPEiTuner):
    """GP-EI tuner warm-started from historical evaluations of the same template.

    Parameters
    ----------
    tunable:
        The template's hyperparameter space.
    history:
        Iterable of ``(hyperparameters, score)`` pairs harvested from prior
        tasks (see :func:`harvest_history`).  Scores from different tasks
        are not comparable in absolute terms, so they are rank-normalized
        into [0, 1] before seeding the meta-model.
    warm_start_weight:
        Relative weight of a warm-start observation compared to a real one
        (real observations from the current task eventually dominate).
    """

    def __init__(self, tunable, history=(), warm_start_weight=0.5, n_candidates=100,
                 min_trials=1, random_state=None):
        super().__init__(tunable, n_candidates=n_candidates, min_trials=min_trials,
                         random_state=random_state)
        self.warm_start_weight = warm_start_weight
        self._warm_trials = []
        self._warm_scores = []
        self._load_history(history)

    def _load_history(self, history):
        pairs = [(params, score) for params, score in history if score is not None]
        if not pairs:
            return
        scores = np.asarray([score for _, score in pairs], dtype=float)
        # rank-normalize prior scores into [0, 1]
        order = scores.argsort().argsort()
        normalized = order / max(len(scores) - 1, 1)
        for (params, _), value in zip(pairs, normalized):
            usable = {key: params[key] for key in self.tunable.keys if key in params}
            if len(usable) != len(self.tunable.keys):
                continue
            self._warm_trials.append(usable)
            self._warm_scores.append(float(value))

    @property
    def n_warm_observations(self):
        """Number of historical observations seeded into the meta-model."""
        return len(self._warm_trials)

    def _fit_meta_model(self):
        trials, scores = self._training_data()
        observed = [self.tunable.to_vector(trial) for trial in trials]
        if self._warm_trials and scores:
            # map warm-start ranks onto the observed score range so both live
            # on one comparable scale
            low, high = min(scores), max(scores)
            span = (high - low) or 1.0
            for trial, value in zip(self._warm_trials, self._warm_scores):
                observed.append(self.tunable.to_vector(trial))
                scores.append(low + self.warm_start_weight * value * span)
        X = np.vstack(observed)
        y = np.asarray(scores, dtype=float)
        model = self.meta_model_class(kernel=self.kernel)
        model.fit(X, y)
        return model

    def _propose_one(self):
        # if history exists, the very first proposal exploits the best prior
        # configuration instead of sampling at random; pending in-flight
        # proposals count as that first shot, otherwise a batch proposed
        # before any score returns would duplicate the same configuration
        if not self.trials and not self._pending and self._warm_trials:
            best = int(np.argmax(self._warm_scores))
            return dict(self._warm_trials[best])
        return super()._propose_one()


def harvest_history(store, template_name, exclude_task=None, limit=200):
    """Extract ``(hyperparameters, score)`` pairs for one template from a piex store.

    Parameters
    ----------
    store:
        A :class:`~repro.explorer.store.PipelineStore`.
    template_name:
        Only documents for this template are harvested.
    exclude_task:
        Task name to leave out (normally the task about to be tuned).
    limit:
        Keep at most this many of the highest-scoring documents.
    """
    documents = [
        document for document in store.find(template_name=template_name)
        if document.get("score") is not None and document.get("task_name") != exclude_task
    ]
    # stable sort: equal-scoring documents keep their store (insertion)
    # order, so harvesting from a reloaded persistent store seeds the
    # same history as harvesting from the live one
    documents.sort(key=lambda document: document["score"], reverse=True)
    history = []
    for document in documents[:limit]:
        hyperparameters = {}
        for key, value in document.get("hyperparameters", {}).items():
            hyperparameters[_parse_key(key)] = value
        history.append((hyperparameters, document["score"]))
    return history


def _parse_key(key):
    """Convert a stringified ``(step, hyperparam)`` key back into a tuple."""
    if isinstance(key, tuple):
        return key
    text = str(key).strip()
    if text.startswith("(") and text.endswith(")"):
        inner = text[1:-1]
        parts = [part.strip().strip("'\"") for part in inner.split(",")]
        parts = [part for part in parts if part]
        if len(parts) == 2:
            return (parts[0], parts[1])
    return key
