"""Hyperparameter types and the joint tunable space.

Each hyperparameter maps its values into the unit interval so that a
tuner's meta-model works on a fixed-size numeric vector regardless of the
mix of integer, float, boolean and categorical hyperparameters in a
template's configuration space Lambda.
"""

import numpy as np

from repro.learners.base import check_random_state


class BaseHyperparam:
    """Common interface of all hyperparameter types."""

    def sample(self, rng):
        """Draw a random value."""
        raise NotImplementedError

    def to_unit(self, value):
        """Map a value into [0, 1]."""
        raise NotImplementedError

    def from_unit(self, unit):
        """Map a number in [0, 1] back to a valid value."""
        raise NotImplementedError

    def __repr__(self):
        return "{}({!r})".format(type(self).__name__, getattr(self, "name", None))


class IntHyperparam(BaseHyperparam):
    """Integer hyperparameter on an inclusive range."""

    def __init__(self, name, low, high, default=None):
        if low > high:
            raise ValueError("low must not exceed high")
        self.name = name
        self.low = int(low)
        self.high = int(high)
        self.default = int(default) if default is not None else self.low

    def sample(self, rng):
        return int(rng.randint(self.low, self.high + 1))

    def to_unit(self, value):
        if self.high == self.low:
            return 0.0
        return (float(value) - self.low) / (self.high - self.low)

    def from_unit(self, unit):
        value = int(round(self.low + float(np.clip(unit, 0.0, 1.0)) * (self.high - self.low)))
        return int(np.clip(value, self.low, self.high))


class FloatHyperparam(BaseHyperparam):
    """Float hyperparameter on an inclusive range."""

    def __init__(self, name, low, high, default=None):
        if low > high:
            raise ValueError("low must not exceed high")
        self.name = name
        self.low = float(low)
        self.high = float(high)
        self.default = float(default) if default is not None else self.low

    def sample(self, rng):
        return float(rng.uniform(self.low, self.high))

    def to_unit(self, value):
        if self.high == self.low:
            return 0.0
        return (float(value) - self.low) / (self.high - self.low)

    def from_unit(self, unit):
        value = self.low + float(np.clip(unit, 0.0, 1.0)) * (self.high - self.low)
        return float(np.clip(value, self.low, self.high))


class BooleanHyperparam(BaseHyperparam):
    """Boolean hyperparameter."""

    def __init__(self, name, default=False):
        self.name = name
        self.default = bool(default)

    def sample(self, rng):
        return bool(rng.randint(0, 2))

    def to_unit(self, value):
        return 1.0 if value else 0.0

    def from_unit(self, unit):
        return bool(unit >= 0.5)


class CategoricalHyperparam(BaseHyperparam):
    """Categorical hyperparameter over an explicit list of values.

    Values may be arbitrary hashable-or-not objects (tuples, ``None``,
    strings); equality is used to find a value's position.
    """

    def __init__(self, name, values, default=None):
        if not values:
            raise ValueError("Categorical hyperparameter requires at least one value")
        self.name = name
        self.values = list(values)
        self.default = default if default is not None else self.values[0]

    def _index(self, value):
        for position, candidate in enumerate(self.values):
            if candidate == value:
                return position
        raise ValueError(
            "Value {!r} is not among the categories of {!r}".format(value, self.name)
        )

    def sample(self, rng):
        return self.values[int(rng.randint(0, len(self.values)))]

    def to_unit(self, value):
        index = self._index(value)
        if len(self.values) == 1:
            return 0.0
        return index / (len(self.values) - 1)

    def from_unit(self, unit):
        position = int(round(float(np.clip(unit, 0.0, 1.0)) * (len(self.values) - 1)))
        return self.values[position]


def hyperparam_from_spec(name, spec):
    """Build a tuning hyperparameter from a core :class:`HyperparamSpec`."""
    if spec.type == "int":
        return IntHyperparam(name, spec.range[0], spec.range[1], default=spec.default)
    if spec.type == "float":
        return FloatHyperparam(name, spec.range[0], spec.range[1], default=spec.default)
    if spec.type == "bool":
        return BooleanHyperparam(name, default=spec.default)
    if spec.type == "categorical":
        return CategoricalHyperparam(name, spec.values, default=spec.default)
    raise ValueError("Unsupported hyperparameter type {!r}".format(spec.type))


class Tunable:
    """The joint hyperparameter configuration space of a template.

    Parameters
    ----------
    hyperparams:
        Mapping from hyperparameter key (any hashable, typically a
        ``(step_name, hyperparam_name)`` tuple) to a hyperparameter object.
    """

    def __init__(self, hyperparams):
        if not hyperparams:
            raise ValueError("A Tunable requires at least one hyperparameter")
        self.hyperparams = dict(hyperparams)
        self.keys = list(self.hyperparams)

    @classmethod
    def from_specs(cls, specs):
        """Build a Tunable from ``{key: HyperparamSpec}`` (template tunable space)."""
        hyperparams = {
            key: hyperparam_from_spec(str(key), spec)
            for key, spec in specs.items()
            if spec.tunable
        }
        if not hyperparams:
            raise ValueError("No tunable hyperparameters in the provided specs")
        return cls(hyperparams)

    @property
    def dimensions(self):
        """Dimensionality of the vectorized space."""
        return len(self.keys)

    def defaults(self):
        """Default value for every hyperparameter."""
        return {key: self.hyperparams[key].default for key in self.keys}

    def sample(self, rng=None):
        """Draw one random configuration."""
        rng = check_random_state(rng)
        return {key: self.hyperparams[key].sample(rng) for key in self.keys}

    def sample_many(self, n, rng=None):
        """Draw ``n`` random configurations."""
        rng = check_random_state(rng)
        return [self.sample(rng) for _ in range(n)]

    def to_vector(self, params):
        """Vectorize a configuration into the unit hypercube."""
        missing = [key for key in self.keys if key not in params]
        if missing:
            raise ValueError("Configuration is missing hyperparameters: {}".format(missing))
        return np.asarray(
            [self.hyperparams[key].to_unit(params[key]) for key in self.keys], dtype=float
        )

    def from_vector(self, vector):
        """Recover a configuration from a unit-hypercube vector."""
        vector = np.asarray(vector, dtype=float).ravel()
        if len(vector) != self.dimensions:
            raise ValueError(
                "Vector has {} entries but the space has {} dimensions".format(
                    len(vector), self.dimensions
                )
            )
        return {
            key: self.hyperparams[key].from_unit(component)
            for key, component in zip(self.keys, vector)
        }

    def __repr__(self):
        return "Tunable({} hyperparameters)".format(self.dimensions)
