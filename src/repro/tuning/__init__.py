"""AutoML primitives: tuners and selectors (the BTB library of the paper).

Tuners expose a ``record``/``propose`` interface over a hyperparameter
space (paper Section IV-B1); selectors expose a
``compute_rewards``/``select`` interface over candidate templates (paper
Section IV-B2).  Both are assembled from smaller AutoML primitives:
meta-models (Gaussian processes with different kernels, Gaussian copula
processes) and acquisition functions (expected improvement, UCB, PI).
"""

from repro.tuning.hyperparams import (
    BooleanHyperparam,
    CategoricalHyperparam,
    FloatHyperparam,
    IntHyperparam,
    Tunable,
)
from repro.tuning.gp import GaussianCopulaProcessRegressor, GaussianProcessRegressor
from repro.tuning.acquisition import expected_improvement, probability_of_improvement, upper_confidence_bound
from repro.tuning.tuners import (
    BaseTuner,
    GCPEiTuner,
    GPEiTuner,
    GPMatern52EiTuner,
    GPTuner,
    UniformTuner,
)
from repro.tuning.selectors import (
    BaseSelector,
    BestKRewardSelector,
    UCB1Selector,
    UniformSelector,
)
from repro.tuning.meta import WarmStartGPTuner, harvest_history

__all__ = [
    "IntHyperparam",
    "FloatHyperparam",
    "CategoricalHyperparam",
    "BooleanHyperparam",
    "Tunable",
    "GaussianProcessRegressor",
    "GaussianCopulaProcessRegressor",
    "expected_improvement",
    "upper_confidence_bound",
    "probability_of_improvement",
    "BaseTuner",
    "UniformTuner",
    "GPTuner",
    "GPEiTuner",
    "GPMatern52EiTuner",
    "GCPEiTuner",
    "BaseSelector",
    "UniformSelector",
    "UCB1Selector",
    "BestKRewardSelector",
    "WarmStartGPTuner",
    "harvest_history",
]
