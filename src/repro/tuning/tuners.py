"""Tuners: AutoML primitives with a ``record``/``propose`` interface.

A tuner owns the hyperparameter configuration space of one template and
solves the tuning problem (paper Equation 1): propose the configuration
that maximizes the expected score given everything recorded so far.
"""

import numpy as np

from repro.learners.base import check_random_state
from repro.tuning.acquisition import ACQUISITIONS
from repro.tuning.gp import GaussianCopulaProcessRegressor, GaussianProcessRegressor
from repro.tuning.hyperparams import Tunable


class BaseTuner:
    """Shared record/propose machinery.

    Parameters
    ----------
    tunable:
        A :class:`~repro.tuning.hyperparams.Tunable` describing the space,
        or a ``{key: HyperparamSpec}`` dict (as produced by
        ``Template.get_tunable_hyperparameters``).
    random_state:
        Seed for reproducible proposals.
    """

    def __init__(self, tunable, random_state=None):
        if not isinstance(tunable, Tunable):
            tunable = Tunable.from_specs(tunable)
        self.tunable = tunable
        self._rng = check_random_state(random_state)
        self.trials = []
        self.scores = []
        self._pending = []
        self.failed_trials = []
        # version counter of the *observed* training data (trials and
        # failures); meta-model caching keys on it.  Pending bookkeeping
        # deliberately does not bump it — see ``GPTuner._fit_meta_model``
        self._state_version = 0

    def _state_changed(self):
        """Mark the meta-model training data dirty (see ``GPTuner._fit_meta_model``)."""
        self._state_version += 1

    def record(self, params, score):
        """Record the observed score of a configuration."""
        score = float(score)
        if not np.isfinite(score):
            raise ValueError("Cannot record a non-finite score")
        self.trials.append(dict(params))
        self.scores.append(score)
        self._state_changed()

    def record_failure(self, params):
        """Record a configuration whose evaluation failed (crash or non-finite score).

        Failed configurations produce no usable score, so they never enter
        the real trial history — but pretending they never happened makes
        the meta-model re-propose the same crashing region over and over.
        They are kept in a separate list and participate in the meta-model
        fit at the constant-liar score (the worst score observed so far),
        which deflates the acquisition function around known-bad regions
        the same way pending proposals are deflated.
        """
        self.failed_trials.append(dict(params))
        self._state_changed()

    # -- pending proposals (constant-liar batching) ---------------------------------

    def add_pending(self, params):
        """Mark a proposed configuration as in flight (not yet scored).

        Pending configurations participate in the meta-model fit with a
        *constant-liar* score — the worst score observed so far — so that
        batch proposals spread out instead of piling onto the same
        optimum of the acquisition function.
        """
        self._pending.append(dict(params))

    def resolve_pending(self, params):
        """Drop one pending entry matching ``params``; returns whether one was found."""
        params = dict(params)
        for index, pending in enumerate(self._pending):
            if pending == params:
                del self._pending[index]
                return True
        return False

    @property
    def pending(self):
        """Snapshot of the configurations currently in flight."""
        return [dict(params) for params in self._pending]

    @property
    def best_score(self):
        """Best score recorded so far, or ``None`` if nothing was recorded."""
        return max(self.scores) if self.scores else None

    @property
    def best_params(self):
        """Configuration achieving the best recorded score."""
        if not self.scores:
            return None
        return dict(self.trials[int(np.argmax(self.scores))])

    def propose(self, n=1):
        """Propose the next configuration(s) to evaluate.

        With ``n == 1`` (the default) a single configuration dict is
        returned.  With ``n > 1`` a *batch* of ``n`` distinct
        configurations is returned as a list, drawn so the batch covers
        distinct regions of the space even though no real scores arrive
        in between — by default through the constant-liar loop (each
        proposal temporarily registered as pending before the next is
        drawn); GP tuners instead fit the meta-model once and take the
        top-``n`` distinct candidates of one vectorized acquisition pass.

        The AutoBazaar search loop drives the same pending primitives
        (:meth:`add_pending` / :meth:`resolve_pending`) directly instead
        of calling ``propose(n)``, because its template selection
        interleaves with proposing — a round's batch may span several
        tuners.  Keep the two paths in sync when changing the liar
        semantics.
        """
        n = int(n)
        if n < 1:
            raise ValueError("n must be at least 1")
        if n == 1:
            return self._propose_one()
        return self._propose_batch(n)

    def _propose_batch(self, n):
        """Propose ``n`` configurations (default: the constant-liar loop).

        Subclasses with an expensive meta-model may override this with a
        fit-once batched implementation (see ``GPTuner``); the contract is
        ``n`` mutually distinct-as-possible proposals with no pending or
        score state left behind.
        """
        proposals = []
        try:
            for _ in range(n):
                params = self._propose_one()
                proposals.append(params)
                self.add_pending(params)
        finally:
            for params in proposals:
                self.resolve_pending(params)
        return proposals

    def _propose_one(self):
        """Propose a single configuration (implemented by subclasses)."""
        raise NotImplementedError

    def __repr__(self):
        return "{}(n_trials={})".format(type(self).__name__, len(self.trials))


class UniformTuner(BaseTuner):
    """Propose uniformly random configurations (random-search baseline)."""

    def _propose_one(self):
        return self.tunable.sample(self._rng)


class GPTuner(BaseTuner):
    """Bayesian optimization tuner: GP meta-model + acquisition function.

    Parameters
    ----------
    kernel:
        ``"se"`` or ``"matern52"`` (paper Section VI-C compares the two).
    acquisition:
        ``"ei"``, ``"ucb"`` or ``"pi"``.
    n_candidates:
        Number of random candidates scored by the acquisition function per
        proposal.
    min_trials:
        Number of purely random proposals before the meta-model is used.
    """

    meta_model_class = GaussianProcessRegressor

    def __init__(self, tunable, kernel="se", acquisition="ei", n_candidates=100,
                 min_trials=3, random_state=None):
        super().__init__(tunable, random_state=random_state)
        if acquisition not in ACQUISITIONS:
            raise ValueError(
                "Unknown acquisition {!r}; expected one of {}".format(
                    acquisition, sorted(ACQUISITIONS)
                )
            )
        self.kernel = kernel
        self.acquisition = acquisition
        self.n_candidates = n_candidates
        self.min_trials = min_trials
        self._meta_model = None
        self._meta_model_version = None

    def _training_data(self):
        """Observed trials plus pending and failed ones under the constant liar.

        Each in-flight configuration — and each configuration whose
        evaluation failed — is assigned the worst score observed so far
        (the pessimistic liar), which deflates the acquisition function
        around pending proposals and known-bad regions without biasing
        the model upwards.
        """
        trials = list(self.trials)
        scores = list(self.scores)
        if scores and (self._pending or self.failed_trials):
            lie = min(scores)
            for extra in self._pending + self.failed_trials:
                trials.append(extra)
                scores.append(lie)
        return trials, scores

    def _fit_meta_model(self):
        """The meta-model over the observed trials, fit at most once per state.

        Fitting runs the full length-scale grid search, which used to
        happen on *every* proposal — including every element of a
        ``propose(n)`` batch and every window refill between reports.
        The fitted model is memoized on the observed-data version,
        bumped only by ``record``/``record_failure``: proposals that
        merely add or resolve *pending* entries reuse the cached model.
        That is the standard stale-model approximation of asynchronous
        Bayesian optimization — the pending constant liar still steers
        template selection (the selector counts in-flight trials) and
        the next genuine observation refits the model with every lie in
        place; in exchange, a template proposed repeatedly within a
        scheduling window pays for the grid search once, not per
        proposal.
        """
        if self._meta_model is not None and self._meta_model_version == self._state_version:
            return self._meta_model
        trials, scores = self._training_data()
        X = np.vstack([self.tunable.to_vector(trial) for trial in trials])
        y = np.asarray(scores, dtype=float)
        model = self.meta_model_class(kernel=self.kernel)
        model.fit(X, y)
        self._meta_model = model
        self._meta_model_version = self._state_version
        return model

    def _score_candidates(self, model, candidates):
        vectors = np.vstack([self.tunable.to_vector(candidate) for candidate in candidates])
        mean, std = model.predict(vectors, return_std=True)
        acquisition_fn = ACQUISITIONS[self.acquisition]
        if self.acquisition == "ucb":
            return acquisition_fn(mean, std)
        return acquisition_fn(mean, std, best=max(self.scores))

    def _propose_one(self):
        if len(self.trials) < self.min_trials:
            return self.tunable.sample(self._rng)
        try:
            model = self._fit_meta_model()
        except (RuntimeError, np.linalg.LinAlgError):
            return self.tunable.sample(self._rng)
        candidates = self.tunable.sample_many(self.n_candidates, self._rng)
        acquisition_values = self._score_candidates(model, candidates)
        return candidates[int(np.argmax(acquisition_values))]

    def _propose_batch(self, n):
        """One meta-model fit and one vectorized acquisition pass for the whole batch.

        The base-class loop refits the GP after every batch element (each
        ``add_pending`` changes the liar set).  Here the model is fitted
        once, a pool of ``n * n_candidates`` candidates is scored in a
        single vectorized ``_score_candidates`` call, and the batch is
        the top-``n`` *distinct* configurations by acquisition value —
        distinctness standing in for the liar's spreading pressure at a
        fraction of the cost.
        """
        if len(self.trials) < self.min_trials:
            return [self.tunable.sample(self._rng) for _ in range(n)]
        try:
            model = self._fit_meta_model()
        except (RuntimeError, np.linalg.LinAlgError):
            return [self.tunable.sample(self._rng) for _ in range(n)]
        pool = self.tunable.sample_many(self.n_candidates * n, self._rng)
        acquisition_values = np.asarray(self._score_candidates(model, pool))
        proposals = []
        seen = set()
        for index in np.argsort(acquisition_values)[::-1]:
            candidate = pool[int(index)]
            key = tuple(sorted((key, value) for key, value in candidate.items()))
            if key in seen:
                continue
            seen.add(key)
            proposals.append(candidate)
            if len(proposals) == n:
                break
        while len(proposals) < n:  # a degenerate space with < n distinct points
            proposals.append(self.tunable.sample(self._rng))
        return proposals


class GPEiTuner(GPTuner):
    """GP meta-model with squared exponential kernel + expected improvement (GP-SE-EI)."""

    def __init__(self, tunable, n_candidates=100, min_trials=3, random_state=None):
        super().__init__(tunable, kernel="se", acquisition="ei", n_candidates=n_candidates,
                         min_trials=min_trials, random_state=random_state)


class GPMatern52EiTuner(GPTuner):
    """GP meta-model with Matérn 5/2 kernel + expected improvement (GP-Matern52-EI)."""

    def __init__(self, tunable, n_candidates=100, min_trials=3, random_state=None):
        super().__init__(tunable, kernel="matern52", acquisition="ei",
                         n_candidates=n_candidates, min_trials=min_trials,
                         random_state=random_state)


class GCPEiTuner(GPTuner):
    """Gaussian Copula Process meta-model + expected improvement (GCP-EI)."""

    meta_model_class = GaussianCopulaProcessRegressor

    def __init__(self, tunable, kernel="se", n_candidates=100, min_trials=3, random_state=None):
        super().__init__(tunable, kernel=kernel, acquisition="ei", n_candidates=n_candidates,
                         min_trials=min_trials, random_state=random_state)

    def _score_candidates(self, model, candidates):
        vectors = np.vstack([self.tunable.to_vector(candidate) for candidate in candidates])
        mean, std = model.predict_latent(vectors)
        # expected improvement computed in the latent normal-score space, where
        # the best observed score maps to its own normal score; the ranks use
        # the same training scores the copula was fitted on (real trials plus
        # pending constant-liar points) so the EI threshold and the model
        # share one latent scale — the lies equal the observed minimum, so
        # the maximum rank still belongs to the best real score
        from scipy import stats

        _, training_scores = self._training_data()
        ranks = stats.rankdata(training_scores, method="average")
        best_latent = stats.norm.ppf(ranks.max() / (len(training_scores) + 1.0))
        acquisition_fn = ACQUISITIONS["ei"]
        return acquisition_fn(mean, std, best=best_latent)


TUNERS = {
    "uniform": UniformTuner,
    "gp_ei": GPEiTuner,
    "gp_matern52_ei": GPMatern52EiTuner,
    "gcp_ei": GCPEiTuner,
}


def get_tuner(name):
    """Look up a tuner class by its short name."""
    try:
        return TUNERS[name]
    except KeyError:
        raise ValueError(
            "Unknown tuner {!r}; available tuners: {}".format(name, sorted(TUNERS))
        ) from None
