"""Tuners: AutoML primitives with a ``record``/``propose`` interface.

A tuner owns the hyperparameter configuration space of one template and
solves the tuning problem (paper Equation 1): propose the configuration
that maximizes the expected score given everything recorded so far.
"""

import numpy as np

from repro.learners.base import check_random_state
from repro.tuning.acquisition import ACQUISITIONS
from repro.tuning.gp import GaussianCopulaProcessRegressor, GaussianProcessRegressor
from repro.tuning.hyperparams import Tunable


class BaseTuner:
    """Shared record/propose machinery.

    Parameters
    ----------
    tunable:
        A :class:`~repro.tuning.hyperparams.Tunable` describing the space,
        or a ``{key: HyperparamSpec}`` dict (as produced by
        ``Template.get_tunable_hyperparameters``).
    random_state:
        Seed for reproducible proposals.
    """

    def __init__(self, tunable, random_state=None):
        if not isinstance(tunable, Tunable):
            tunable = Tunable.from_specs(tunable)
        self.tunable = tunable
        self._rng = check_random_state(random_state)
        self.trials = []
        self.scores = []

    def record(self, params, score):
        """Record the observed score of a configuration."""
        score = float(score)
        if not np.isfinite(score):
            raise ValueError("Cannot record a non-finite score")
        self.trials.append(dict(params))
        self.scores.append(score)

    @property
    def best_score(self):
        """Best score recorded so far, or ``None`` if nothing was recorded."""
        return max(self.scores) if self.scores else None

    @property
    def best_params(self):
        """Configuration achieving the best recorded score."""
        if not self.scores:
            return None
        return dict(self.trials[int(np.argmax(self.scores))])

    def propose(self):
        """Propose the next configuration to evaluate."""
        raise NotImplementedError

    def __repr__(self):
        return "{}(n_trials={})".format(type(self).__name__, len(self.trials))


class UniformTuner(BaseTuner):
    """Propose uniformly random configurations (random-search baseline)."""

    def propose(self):
        return self.tunable.sample(self._rng)


class GPTuner(BaseTuner):
    """Bayesian optimization tuner: GP meta-model + acquisition function.

    Parameters
    ----------
    kernel:
        ``"se"`` or ``"matern52"`` (paper Section VI-C compares the two).
    acquisition:
        ``"ei"``, ``"ucb"`` or ``"pi"``.
    n_candidates:
        Number of random candidates scored by the acquisition function per
        proposal.
    min_trials:
        Number of purely random proposals before the meta-model is used.
    """

    meta_model_class = GaussianProcessRegressor

    def __init__(self, tunable, kernel="se", acquisition="ei", n_candidates=100,
                 min_trials=3, random_state=None):
        super().__init__(tunable, random_state=random_state)
        if acquisition not in ACQUISITIONS:
            raise ValueError(
                "Unknown acquisition {!r}; expected one of {}".format(
                    acquisition, sorted(ACQUISITIONS)
                )
            )
        self.kernel = kernel
        self.acquisition = acquisition
        self.n_candidates = n_candidates
        self.min_trials = min_trials

    def _fit_meta_model(self):
        X = np.vstack([self.tunable.to_vector(trial) for trial in self.trials])
        y = np.asarray(self.scores, dtype=float)
        model = self.meta_model_class(kernel=self.kernel)
        model.fit(X, y)
        return model

    def _score_candidates(self, model, candidates):
        vectors = np.vstack([self.tunable.to_vector(candidate) for candidate in candidates])
        mean, std = model.predict(vectors, return_std=True)
        acquisition_fn = ACQUISITIONS[self.acquisition]
        if self.acquisition == "ucb":
            return acquisition_fn(mean, std)
        return acquisition_fn(mean, std, best=max(self.scores))

    def propose(self):
        if len(self.trials) < self.min_trials:
            return self.tunable.sample(self._rng)
        try:
            model = self._fit_meta_model()
        except (RuntimeError, np.linalg.LinAlgError):
            return self.tunable.sample(self._rng)
        candidates = self.tunable.sample_many(self.n_candidates, self._rng)
        acquisition_values = self._score_candidates(model, candidates)
        return candidates[int(np.argmax(acquisition_values))]


class GPEiTuner(GPTuner):
    """GP meta-model with squared exponential kernel + expected improvement (GP-SE-EI)."""

    def __init__(self, tunable, n_candidates=100, min_trials=3, random_state=None):
        super().__init__(tunable, kernel="se", acquisition="ei", n_candidates=n_candidates,
                         min_trials=min_trials, random_state=random_state)


class GPMatern52EiTuner(GPTuner):
    """GP meta-model with Matérn 5/2 kernel + expected improvement (GP-Matern52-EI)."""

    def __init__(self, tunable, n_candidates=100, min_trials=3, random_state=None):
        super().__init__(tunable, kernel="matern52", acquisition="ei",
                         n_candidates=n_candidates, min_trials=min_trials,
                         random_state=random_state)


class GCPEiTuner(GPTuner):
    """Gaussian Copula Process meta-model + expected improvement (GCP-EI)."""

    meta_model_class = GaussianCopulaProcessRegressor

    def __init__(self, tunable, kernel="se", n_candidates=100, min_trials=3, random_state=None):
        super().__init__(tunable, kernel=kernel, acquisition="ei", n_candidates=n_candidates,
                         min_trials=min_trials, random_state=random_state)

    def _score_candidates(self, model, candidates):
        vectors = np.vstack([self.tunable.to_vector(candidate) for candidate in candidates])
        mean, std = model.predict_latent(vectors)
        # expected improvement computed in the latent normal-score space, where
        # the best observed score maps to its own normal score
        from scipy import stats

        ranks = stats.rankdata(self.scores, method="average")
        best_latent = stats.norm.ppf(ranks.max() / (len(self.scores) + 1.0))
        acquisition_fn = ACQUISITIONS["ei"]
        return acquisition_fn(mean, std, best=best_latent)


TUNERS = {
    "uniform": UniformTuner,
    "gp_ei": GPEiTuner,
    "gp_matern52_ei": GPMatern52EiTuner,
    "gcp_ei": GCPEiTuner,
}


def get_tuner(name):
    """Look up a tuner class by its short name."""
    try:
        return TUNERS[name]
    except KeyError:
        raise ValueError(
            "Unknown tuner {!r}; available tuners: {}".format(name, sorted(TUNERS))
        ) from None
