"""Selectors: AutoML primitives with a ``compute_rewards``/``select`` interface.

A selector solves the selection problem (paper Equation 2): which template
should be tuned next, balancing exploration and exploitation.  Selection is
treated as a multi-armed bandit over the history of scores per template.
"""

import numpy as np

from repro.learners.base import check_random_state


class BaseSelector:
    """Shared machinery for template selectors.

    Parameters
    ----------
    candidates:
        The identifiers of the selectable templates.
    random_state:
        Seed used for tie-breaking and random exploration.
    """

    def __init__(self, candidates, random_state=None):
        candidates = list(candidates)
        if not candidates:
            raise ValueError("A selector requires at least one candidate")
        self.candidates = candidates
        self._rng = check_random_state(random_state)

    def compute_rewards(self, scores):
        """Convert a list of raw scores into rewards (default: identity)."""
        return list(scores)

    def select(self, candidate_scores):
        """Select the next candidate given ``{candidate: [scores, ...]}``."""
        raise NotImplementedError

    def _unseen(self, candidate_scores):
        return [c for c in self.candidates if not candidate_scores.get(c)]

    def __repr__(self):
        return "{}(n_candidates={})".format(type(self).__name__, len(self.candidates))


class UniformSelector(BaseSelector):
    """Select candidates uniformly at random (round-robin-free baseline)."""

    def select(self, candidate_scores):
        unseen = self._unseen(candidate_scores)
        if unseen:
            return unseen[0]
        return self.candidates[int(self._rng.randint(0, len(self.candidates)))]


class UCB1Selector(BaseSelector):
    """Upper confidence bound selection (paper Equations 3 and 4).

    The reward of a template is the mean of its scores, and the selected
    template maximizes ``z_j + sqrt(2 ln n / n_j)``.
    """

    def compute_rewards(self, scores):
        if not scores:
            return []
        return [float(np.mean(scores))] * len(scores)

    def select(self, candidate_scores):
        unseen = self._unseen(candidate_scores)
        if unseen:
            return unseen[0]
        total = sum(len(scores) for scores in candidate_scores.values())
        best_candidate = None
        best_bound = -np.inf
        for candidate in self.candidates:
            scores = candidate_scores.get(candidate, [])
            mean_reward = float(np.mean(self.compute_rewards(scores)))
            bound = mean_reward + np.sqrt(2.0 * np.log(total) / len(scores))
            if bound > best_bound:
                best_bound = bound
                best_candidate = candidate
        return best_candidate


class BestKRewardSelector(BaseSelector):
    """UCB over the mean of each template's best K scores.

    Focusing on the top-K scores rewards templates whose *tuned* performance
    is promising even if their default configurations score poorly.
    """

    def __init__(self, candidates, k=3, random_state=None):
        super().__init__(candidates, random_state=random_state)
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k

    def compute_rewards(self, scores):
        if not scores:
            return []
        top = sorted(scores, reverse=True)[: self.k]
        return [float(np.mean(top))] * len(scores)

    def select(self, candidate_scores):
        unseen = self._unseen(candidate_scores)
        if unseen:
            return unseen[0]
        total = sum(len(scores) for scores in candidate_scores.values())
        best_candidate = None
        best_bound = -np.inf
        for candidate in self.candidates:
            scores = candidate_scores.get(candidate, [])
            reward = self.compute_rewards(scores)[0]
            bound = reward + np.sqrt(2.0 * np.log(total) / len(scores))
            if bound > best_bound:
                best_bound = bound
                best_candidate = candidate
        return best_candidate


class BestKVelocitySelector(BestKRewardSelector):
    """UCB over the *velocity* of each template's best-K scores.

    The reward is the mean difference between consecutive top-K scores,
    which favors templates whose tuned performance is still improving —
    useful late in a search when flat-lined templates should be dropped.
    """

    def compute_rewards(self, scores):
        if not scores:
            return []
        top = sorted(scores, reverse=True)[: self.k + 1]
        if len(top) < 2:
            return [float(top[0])] * len(scores)
        velocity = float(np.mean(np.diff(top[::-1])))
        return [velocity] * len(scores)


class ThompsonSamplingSelector(BaseSelector):
    """Gaussian Thompson sampling over the per-template score distributions.

    Each template's scores are modeled as a normal distribution; one sample
    is drawn per template and the largest sample wins.  Compared to UCB1
    this randomizes exploration, which helps when many templates have
    similar means.
    """

    def __init__(self, candidates, prior_std=1.0, random_state=None):
        super().__init__(candidates, random_state=random_state)
        if prior_std <= 0:
            raise ValueError("prior_std must be positive")
        self.prior_std = prior_std

    def select(self, candidate_scores):
        unseen = self._unseen(candidate_scores)
        if unseen:
            return unseen[0]
        best_candidate = None
        best_draw = -np.inf
        for candidate in self.candidates:
            scores = np.asarray(candidate_scores.get(candidate, []), dtype=float)
            mean = float(scores.mean())
            std = float(scores.std()) if len(scores) > 1 else self.prior_std
            std = max(std, 1e-6) / np.sqrt(len(scores))
            draw = float(self._rng.normal(mean, std))
            if draw > best_draw:
                best_draw = draw
                best_candidate = candidate
        return best_candidate


SELECTORS = {
    "uniform": UniformSelector,
    "ucb1": UCB1Selector,
    "best_k": BestKRewardSelector,
    "best_k_velocity": BestKVelocitySelector,
    "thompson": ThompsonSamplingSelector,
}


def get_selector(name):
    """Look up a selector class by its short name."""
    try:
        return SELECTORS[name]
    except KeyError:
        raise ValueError(
            "Unknown selector {!r}; available selectors: {}".format(name, sorted(SELECTORS))
        ) from None
