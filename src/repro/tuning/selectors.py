"""Selectors: AutoML primitives with a ``compute_rewards``/``select`` interface.

A selector solves the selection problem (paper Equation 2): which template
should be tuned next, balancing exploration and exploitation.  Selection is
treated as a multi-armed bandit over the history of scores per template.
"""

import numpy as np

from repro.learners.base import check_random_state


class BaseSelector:
    """Shared machinery for template selectors.

    Parameters
    ----------
    candidates:
        The identifiers of the selectable templates.
    random_state:
        Seed used for tie-breaking and random exploration.
    """

    def __init__(self, candidates, random_state=None):
        candidates = list(candidates)
        if not candidates:
            raise ValueError("A selector requires at least one candidate")
        self.candidates = candidates
        self._rng = check_random_state(random_state)
        self._pending_counts = {}
        self._failure_counts = {}
        self._pruned_counts = {}

    def compute_rewards(self, scores):
        """Convert a list of raw scores into rewards (default: identity)."""
        return list(scores)

    def select(self, candidate_scores):
        """Select the next candidate given ``{candidate: [scores, ...]}``."""
        raise NotImplementedError

    # -- pending bookkeeping (batch proposals) --------------------------------------

    def note_pending(self, candidate):
        """Count one in-flight (proposed but not yet scored) evaluation."""
        self._pending_counts[candidate] = self._pending_counts.get(candidate, 0) + 1

    def resolve_pending(self, candidate):
        """Discount one in-flight evaluation once its result has arrived."""
        count = self._pending_counts.get(candidate, 0)
        if count <= 1:
            self._pending_counts.pop(candidate, None)
        else:
            self._pending_counts[candidate] = count - 1

    def pending_count(self, candidate):
        """Number of in-flight evaluations of one candidate."""
        return self._pending_counts.get(candidate, 0)

    # -- failed-trial bookkeeping ---------------------------------------------------

    def record_failure(self, candidate):
        """Count one failed (crashed or non-finite) evaluation as a spent trial.

        A failed evaluation yields no reward, but it *was* a pull of the
        arm: counting it toward the candidate's trial count shrinks its
        confidence bonus, so a template that crashes deterministically is
        drawn with rapidly decaying frequency instead of being re-proposed
        forever as an eternally "unexplored" arm.
        """
        self._failure_counts[candidate] = self._failure_counts.get(candidate, 0) + 1

    def failure_count(self, candidate):
        """Number of failed evaluations recorded for one candidate."""
        return self._failure_counts.get(candidate, 0)

    def record_pruned(self, candidate):
        """Count one early-discarded evaluation as a spent (but not failed) trial.

        A pruned candidate consumed budget and proved *that configuration*
        could not beat the incumbent, so it shrinks the arm's confidence
        bonus like any spent trial — but the pipeline did not crash, so
        pruned trials never count toward the scoreless-arm quarantine
        that retires deterministically broken templates.  A template that
        merely trails the leader stays selectable.
        """
        self._pruned_counts[candidate] = self._pruned_counts.get(candidate, 0) + 1

    def pruned_count(self, candidate):
        """Number of early-discarded evaluations recorded for one candidate."""
        return self._pruned_counts.get(candidate, 0)

    def _trial_count(self, candidate, scores):
        """Trials spent on one arm: scored + in-flight + failed + pruned evaluations."""
        return (len(scores) + self.pending_count(candidate)
                + self.failure_count(candidate) + self.pruned_count(candidate))

    def _bandit_state(self, candidate_scores):
        """Shared per-``select`` bookkeeping: ``(total, rewards_by_arm, liar)``.

        ``total`` counts every recorded score plus every in-flight and
        every failed evaluation.  Rewards are computed once per arm here
        and reused by both the liar and the caller's scoring loop.  The
        liar — the stand-in reward for an arm whose trials are all still
        in flight, or all failed — is the worst mean reward across the
        other arms, computed through this selector's own
        ``compute_rewards`` so it lives on the same scale as the real
        rewards (raw-score means for UCB1, top-K means for best-K,
        velocities for best-K-velocity); an absolute constant like 0.0
        would be *optimistic* whenever rewards are negative (e.g. -RMSE
        means) and a batch would flood the scoreless arm.  It is only
        computed when something is pending or failed: otherwise a
        scoreless arm never reaches a scoring loop (``_unseen`` returns
        it first).
        """
        total = sum(len(scores) for scores in candidate_scores.values())
        total += sum(self._pending_counts.values())
        total += sum(self._failure_counts.values())
        total += sum(self._pruned_counts.values())
        rewards_by_arm = {
            candidate: self.compute_rewards(candidate_scores.get(candidate, []))
            for candidate in self.candidates
        }
        liar = 0.0
        if self._pending_counts or self._failure_counts or self._pruned_counts:
            means = [float(np.mean(rewards)) for rewards in rewards_by_arm.values() if rewards]
            liar = min(means) if means else 0.0
        return total, rewards_by_arm, liar

    def _unseen(self, candidate_scores):
        return [
            c for c in self.candidates
            if not candidate_scores.get(c) and not self.pending_count(c)
            and not self.failure_count(c) and not self.pruned_count(c)
        ]

    #: Scoreless failures tolerated before an arm is quarantined: the
    #: first failure may be transient (a killed worker, flaky I/O), so
    #: the arm gets exactly one retry before it is treated as
    #: deterministically broken.
    quarantine_failures = 2

    def _selectable(self, candidate_scores):
        """Arms eligible for a scoring loop: quarantine repeated failures.

        An arm whose every completed trial failed carries no reward signal
        at all — UCB-style exploration bonuses would keep re-drawing it
        forever against arms with real scores, burning budget on a
        template that crashes deterministically.  After
        ``quarantine_failures`` scoreless failures (one mandatory trial
        plus one retry, in case the first failure was transient) the arm
        is excluded while any other arm remains; if *every* arm is
        quarantined, the least-failed ones remain the best guess and stay
        in the pool.
        """
        alive = [
            c for c in self.candidates
            if candidate_scores.get(c)
            or self.failure_count(c) < self.quarantine_failures
        ]
        if alive:
            return alive
        fewest = min(self.failure_count(c) for c in self.candidates)
        return [c for c in self.candidates if self.failure_count(c) == fewest]

    def __repr__(self):
        return "{}(n_candidates={})".format(type(self).__name__, len(self.candidates))


class UniformSelector(BaseSelector):
    """Select candidates uniformly at random (round-robin-free baseline)."""

    def select(self, candidate_scores):
        unseen = self._unseen(candidate_scores)
        if unseen:
            return unseen[0]
        selectable = self._selectable(candidate_scores)
        return selectable[int(self._rng.randint(0, len(selectable)))]


class UCB1Selector(BaseSelector):
    """Upper confidence bound selection (paper Equations 3 and 4).

    The reward of a template is the mean of its scores, and the selected
    template maximizes ``z_j + sqrt(2 ln n / n_j)``.

    In-flight evaluations (batch proposals whose results have not yet
    returned) count toward both ``n`` and ``n_j``: a template with many
    pending evaluations sees its confidence bonus shrink, which spreads a
    proposal batch across templates instead of flooding one arm.  Failed
    evaluations count the same way — a crashed trial consumed budget, so
    a deterministically-broken template decays like any over-explored arm
    instead of staying maximally attractive forever.
    """

    def compute_rewards(self, scores):
        if not scores:
            return []
        return [float(np.mean(scores))] * len(scores)

    def select(self, candidate_scores):
        unseen = self._unseen(candidate_scores)
        if unseen:
            return unseen[0]
        total, rewards_by_arm, liar = self._bandit_state(candidate_scores)
        best_candidate = None
        best_bound = -np.inf
        for candidate in self._selectable(candidate_scores):
            scores = candidate_scores.get(candidate, [])
            trials = self._trial_count(candidate, scores)
            rewards = rewards_by_arm[candidate]
            mean_reward = float(np.mean(rewards)) if rewards else liar
            bound = mean_reward + np.sqrt(2.0 * np.log(total) / trials)
            if bound > best_bound:
                best_bound = bound
                best_candidate = candidate
        return best_candidate


class BestKRewardSelector(BaseSelector):
    """UCB over the mean of each template's best K scores.

    Focusing on the top-K scores rewards templates whose *tuned* performance
    is promising even if their default configurations score poorly.
    """

    def __init__(self, candidates, k=3, random_state=None):
        super().__init__(candidates, random_state=random_state)
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k

    def compute_rewards(self, scores):
        if not scores:
            return []
        top = sorted(scores, reverse=True)[: self.k]
        return [float(np.mean(top))] * len(scores)

    def select(self, candidate_scores):
        unseen = self._unseen(candidate_scores)
        if unseen:
            return unseen[0]
        total, rewards_by_arm, liar = self._bandit_state(candidate_scores)
        best_candidate = None
        best_bound = -np.inf
        for candidate in self._selectable(candidate_scores):
            scores = candidate_scores.get(candidate, [])
            # a candidate can reach this loop scoreless when all its trials
            # are still in flight (n_pending > 1); its trial count keeps
            # the bound finite and the liar reward keeps it pessimistic
            trials = self._trial_count(candidate, scores)
            rewards = rewards_by_arm[candidate]
            reward = rewards[0] if rewards else liar
            bound = reward + np.sqrt(2.0 * np.log(total) / trials)
            if bound > best_bound:
                best_bound = bound
                best_candidate = candidate
        return best_candidate


class BestKVelocitySelector(BestKRewardSelector):
    """UCB over the *velocity* of each template's best-K scores.

    The reward is the mean difference between consecutive top-K scores,
    which favors templates whose tuned performance is still improving —
    useful late in a search when flat-lined templates should be dropped.
    """

    def compute_rewards(self, scores):
        if not scores:
            return []
        top = sorted(scores, reverse=True)[: self.k + 1]
        if len(top) < 2:
            return [float(top[0])] * len(scores)
        velocity = float(np.mean(np.diff(top[::-1])))
        return [velocity] * len(scores)


class ThompsonSamplingSelector(BaseSelector):
    """Gaussian Thompson sampling over the per-template score distributions.

    Each template's scores are modeled as a normal distribution; one sample
    is drawn per template and the largest sample wins.  Compared to UCB1
    this randomizes exploration, which helps when many templates have
    similar means.
    """

    def __init__(self, candidates, prior_std=1.0, random_state=None):
        super().__init__(candidates, random_state=random_state)
        if prior_std <= 0:
            raise ValueError("prior_std must be positive")
        self.prior_std = prior_std

    def select(self, candidate_scores):
        unseen = self._unseen(candidate_scores)
        if unseen:
            return unseen[0]
        # the liar is reachable only with pending or failed work (scoreless
        # arms are otherwise returned by _unseen); skip the pass without it
        if self._pending_counts or self._failure_counts or self._pruned_counts:
            liar = self._bandit_state(candidate_scores)[2]
        else:
            liar = 0.0
        best_candidate = None
        best_draw = -np.inf
        for candidate in self._selectable(candidate_scores):
            scores = np.asarray(candidate_scores.get(candidate, []), dtype=float)
            # scoreless candidates (trials in flight or failed) draw around
            # the pessimistic liar; spent trials narrow the distribution
            trials = self._trial_count(candidate, scores)
            mean = float(scores.mean()) if len(scores) else liar
            std = float(scores.std()) if len(scores) > 1 else self.prior_std
            std = max(std, 1e-6) / np.sqrt(max(trials, 1))
            draw = float(self._rng.normal(mean, std))
            if draw > best_draw:
                best_draw = draw
                best_candidate = candidate
        return best_candidate


SELECTORS = {
    "uniform": UniformSelector,
    "ucb1": UCB1Selector,
    "best_k": BestKRewardSelector,
    "best_k_velocity": BestKVelocitySelector,
    "thompson": ThompsonSamplingSelector,
}


def get_selector(name):
    """Look up a selector class by its short name."""
    try:
        return SELECTORS[name]
    except KeyError:
        raise ValueError(
            "Unknown selector {!r}; available selectors: {}".format(name, sorted(SELECTORS))
        ) from None
