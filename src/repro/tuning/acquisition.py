"""Acquisition functions for Bayesian optimization tuners.

Acquisition functions are AutoML primitives in the paper's terminology:
they are combined with a meta-model primitive (a GP or GCP) to form a
tuner such as GP-EI or GCP-EI.
"""

import numpy as np
from scipy import stats


def expected_improvement(mean, std, best, xi=0.01):
    """Expected improvement over the current best observed score.

    Scores are assumed to be maximized; ``best`` is the best score seen so
    far and ``xi`` a small exploration margin.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    improvement = mean - best - xi
    z = improvement / std
    return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


def upper_confidence_bound(mean, std, beta=2.0):
    """GP-UCB acquisition: mean plus ``beta`` standard deviations."""
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    return mean + beta * std


def probability_of_improvement(mean, std, best, xi=0.01):
    """Probability that a candidate improves on the best observed score."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    return stats.norm.cdf((mean - best - xi) / std)


ACQUISITIONS = {
    "ei": expected_improvement,
    "ucb": upper_confidence_bound,
    "pi": probability_of_improvement,
}
