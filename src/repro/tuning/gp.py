"""Gaussian process meta-models for Bayesian optimization.

Two kernels are provided because the paper's second case study
(Section VI-C) compares tuners built from the squared exponential kernel
against the Matérn 5/2 kernel proposed by Snoek et al. (2012).  A Gaussian
Copula Process variant (the meta-model behind the paper's GCP-EI tuner) is
also included.
"""

import numpy as np
from scipy import linalg, stats

from repro.learners.base import BaseEstimator


def squared_exponential_kernel(X1, X2, length_scale=0.3, signal_variance=1.0):
    """Squared exponential (RBF) kernel matrix."""
    sq_dists = _pairwise_sq_dists(X1, X2, length_scale)
    return signal_variance * np.exp(-0.5 * sq_dists)


def matern52_kernel(X1, X2, length_scale=0.3, signal_variance=1.0):
    """Matérn 5/2 kernel matrix (paper Section VI-C, Snoek et al. 2012).

    K(x, x') = theta0 (1 + sqrt(5 r^2) + 5/3 r^2) exp(-sqrt(5 r^2)),
    where r^2 is the length-scale-normalized squared distance.
    """
    sq_dists = _pairwise_sq_dists(X1, X2, length_scale)
    root5_r = np.sqrt(5.0 * sq_dists)
    return signal_variance * (1.0 + root5_r + 5.0 * sq_dists / 3.0) * np.exp(-root5_r)


def _pairwise_sq_dists(X1, X2, length_scale):
    X1 = np.atleast_2d(np.asarray(X1, dtype=float))
    X2 = np.atleast_2d(np.asarray(X2, dtype=float))
    diff = X1[:, None, :] - X2[None, :, :]
    return np.sum((diff / length_scale) ** 2, axis=-1)


KERNELS = {
    "se": squared_exponential_kernel,
    "matern52": matern52_kernel,
}


class GaussianProcessRegressor(BaseEstimator):
    """Gaussian process regression with a fixed kernel family.

    The kernel length scale is chosen by maximizing the log marginal
    likelihood over a small grid, which mirrors the paper's note that "the
    kernel hyperparameters are set by optimizing the marginal likelihood".

    Parameters
    ----------
    kernel:
        ``"se"`` or ``"matern52"``.
    noise:
        Observation noise variance added to the kernel diagonal.
    normalize_y:
        Standardize the targets before fitting.
    """

    def __init__(self, kernel="se", noise=1e-6, normalize_y=True, length_scales=(0.1, 0.3, 1.0)):
        self.kernel = kernel
        self.noise = noise
        self.normalize_y = normalize_y
        self.length_scales = length_scales

    def _kernel_fn(self):
        try:
            return KERNELS[self.kernel]
        except KeyError:
            raise ValueError(
                "Unknown kernel {!r}; available kernels: {}".format(self.kernel, sorted(KERNELS))
            ) from None

    def fit(self, X, y):
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != len(y):
            raise ValueError("X and y have inconsistent lengths")
        if self.normalize_y:
            self._y_mean = float(y.mean())
            self._y_std = float(y.std()) or 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        targets = (y - self._y_mean) / self._y_std

        kernel_fn = self._kernel_fn()
        best = None
        for length_scale in self.length_scales:
            gram = kernel_fn(X, X, length_scale=length_scale)
            gram[np.diag_indices_from(gram)] += max(self.noise, 1e-10)
            try:
                cho = linalg.cho_factor(gram, lower=True)
            except linalg.LinAlgError:
                continue
            alpha = linalg.cho_solve(cho, targets)
            log_likelihood = (
                -0.5 * targets @ alpha
                - np.sum(np.log(np.diag(cho[0])))
                - 0.5 * len(targets) * np.log(2.0 * np.pi)
            )
            if best is None or log_likelihood > best[0]:
                best = (log_likelihood, length_scale, cho, alpha)
        if best is None:
            raise RuntimeError("Gaussian process fit failed for every candidate length scale")
        self.log_marginal_likelihood_, self.length_scale_, self._cho, self._alpha = best
        self._X_train = X
        return self

    def predict(self, X, return_std=True):
        """Posterior mean (and standard deviation) at the query points."""
        self._check_fitted("_alpha")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        kernel_fn = self._kernel_fn()
        cross = kernel_fn(X, self._X_train, length_scale=self.length_scale_)
        mean = cross @ self._alpha
        mean = mean * self._y_std + self._y_mean
        if not return_std:
            return mean
        solved = linalg.cho_solve(self._cho, cross.T)
        prior = kernel_fn(X, X, length_scale=self.length_scale_)
        variance = np.clip(np.diag(prior) - np.sum(cross * solved.T, axis=1), 1e-12, None)
        std = np.sqrt(variance) * self._y_std
        return mean, std


class GaussianCopulaProcessRegressor(BaseEstimator):
    """Gaussian copula process: GP regression on normal-scores of the targets.

    The observed scores are mapped through their empirical CDF onto
    standard normal quantiles before fitting the GP; predictions are mapped
    back through the empirical quantile function.  This is the meta-model
    primitive behind the GCP-EI tuner named in the paper (Section IV-B1).
    """

    def __init__(self, kernel="se", noise=1e-6):
        self.kernel = kernel
        self.noise = noise

    def fit(self, X, y):
        y = np.asarray(y, dtype=float).ravel()
        self._sorted_y = np.sort(y)
        ranks = stats.rankdata(y, method="average")
        uniform = ranks / (len(y) + 1.0)
        normal_scores = stats.norm.ppf(uniform)
        self._gp = GaussianProcessRegressor(kernel=self.kernel, noise=self.noise,
                                            normalize_y=False)
        self._gp.fit(X, normal_scores)
        return self

    def predict(self, X, return_std=True):
        """Posterior in the latent normal-score space, mean mapped back to score space."""
        self._check_fitted("_gp")
        mean, std = self._gp.predict(X, return_std=True)
        # map the latent mean back through the empirical quantile function
        uniform = stats.norm.cdf(mean)
        positions = uniform * (len(self._sorted_y) - 1)
        mapped_mean = np.interp(positions, np.arange(len(self._sorted_y)), self._sorted_y)
        if not return_std:
            return mapped_mean
        return mapped_mean, std

    def predict_latent(self, X):
        """Posterior mean and std in the latent (normal-score) space."""
        self._check_fitted("_gp")
        return self._gp.predict(X, return_std=True)
