"""Typed, versioned telemetry events and the worker-side capture API.

Every event is a flat JSON-serializable dict stamped at creation with

* ``v`` — the schema version (:data:`SCHEMA_VERSION`),
* ``event`` — one of :data:`EVENT_TYPES`,
* ``wall`` / ``proc`` — wall-clock and process-CPU timestamps,
* ``pid`` — the emitting process (the *worker id* for events captured
  inside pool workers, the coordinator for synthesized ones),

plus event-specific fields.  The monotonic ``seq`` number and the
``tenant`` id are stamped by the :class:`~repro.telemetry.sink.TelemetrySink`
when the event enters the stream, so workers never need to coordinate a
counter across processes.

Schema versioning promise: fields are only ever *added* within a schema
version; removing or re-typing a field bumps :data:`SCHEMA_VERSION`, and
the replayer refuses streams from a newer schema than it understands.

Worker-side capture
-------------------
Pool workers cannot reach the coordinator's sink directly, and opening a
second IPC channel just for telemetry would double the moving parts.
Instead workers buffer events in a **thread-local capture list**
(thread-local because the thread backend runs many folds concurrently in
one process) that the backend attaches to the fold's result payload —
telemetry rides the existing result channel back to the coordinator,
which stamps and ingests it.  When no capture is active every
:func:`capture_event` call is a single thread-local attribute probe, so
instrumented hot paths (cache lookups, shm attach) cost nothing when
telemetry is off.
"""

import os
import threading
import time

#: Version stamped into every event; bumped on incompatible field changes.
SCHEMA_VERSION = 1

#: Every event type the instrumented stack can emit.
EVENT_TYPES = frozenset({
    # search lifecycle
    "search_started",
    "search_finished",
    "record_reported",
    # proposal machinery
    "tuner_propose",
    "tuner_fit",
    # fold lifecycle
    "fold_dispatched",
    "fold_started",
    "fold_finished",
    "fold_cancelled",
    # fitted-prefix cache
    "cache_hit",
    "cache_miss",
    "cache_store",
    # early-discard pruning (carries the bound math in ``reason``)
    "prune_decision",
    # batched multi-candidate evaluation
    "batch_group_formed",
    # shared-memory data plane
    "shm_publish",
    "shm_attach",
    "shm_fallback",
    # multi-tenant fleet scheduler
    "fleet_admission",
    "fleet_pass_value",
    "fleet_queue_depth",
    # supervised execution layer (fault tolerance)
    "worker_died",
    "fold_retried",
    "pool_rebuilt",
    "fold_timed_out",
})


def make_event(etype, **fields):
    """Build one event dict, stamped with version, timestamps and pid."""
    if etype not in EVENT_TYPES:
        raise ValueError("Unknown telemetry event type {!r}".format(etype))
    event = {
        "v": SCHEMA_VERSION,
        "event": etype,
        "wall": time.time(),
        "proc": time.process_time(),
        "pid": os.getpid(),
    }
    event.update(fields)
    return event


_capture = threading.local()


def begin_capture():
    """Start buffering captured events on this thread (resets any buffer)."""
    _capture.events = []


def capture_active():
    """Whether this thread currently buffers captured events."""
    return getattr(_capture, "events", None) is not None


def capture_event(etype, **fields):
    """Buffer one event if capture is active on this thread; else a no-op."""
    events = getattr(_capture, "events", None)
    if events is not None:
        events.append(make_event(etype, **fields))


def end_capture():
    """Stop capturing on this thread and return the buffered events."""
    events = getattr(_capture, "events", None)
    _capture.events = None
    return events if events is not None else []
