"""Low-overhead telemetry recorder: ring buffer -> crash-safe JSONL log.

:class:`TelemetrySink` decouples the emitting hot paths from disk: an
``emit`` appends to a bounded in-process ring buffer under a lock
(microseconds) and a daemon writer thread drains the ring into a
:class:`~repro.explorer.persistence.SegmentLog` — the exact crash-safety
machinery of the durable record store (segment rotation, manifest
commits, torn-final-line repair), so a SIGKILLed run loses at most the
events still sitting in the ring, never corrupts the stream, and the
next open repairs any torn tail.

Sequence numbers are stamped *at enqueue time* under the ring lock, so
``seq`` order always equals append order and the replayer can treat the
stream as totally ordered.  Reopening an existing stream (a resumed run)
continues the sequence from the largest stored value.

Coordinator-global active sink
------------------------------
Some emit points have no candidate or search object in scope — the fleet
scheduler's admission/queue-depth samples, the shm plane's publish
decisions.  Those go through the module-level *active sink* hook:
:func:`activate_sink` installs the sink for the duration of a search and
:func:`emit_active` is a no-op when none is installed.  Activation is
reference-counted so concurrent tenant searches sharing one sink (the
fleet case) do not disable each other on finish.
"""

import itertools
import threading
import time
from collections import deque

from repro.explorer.persistence import DEFAULT_SEGMENT_BYTES, SegmentLog
from repro.telemetry.events import make_event

#: Directory name of the event stream inside a checkpointed run directory.
EVENTS_DIRNAME = "events"

#: Ring-buffer capacity; emitters block (briefly) when the writer falls
#: this far behind rather than dropping events, so the stream stays a
#: complete record of the run.
RING_CAPACITY = 8192

#: Ring occupancy at which an emit wakes the writer immediately instead
#: of leaving the drain to the next poll tick.  Waking per event would
#: put a GIL handoff on every emit — measurably taxing the search thread
#: — so the writer normally wakes itself on a timer.
WAKE_BATCH = 512

#: The writer's self-wake interval: the upper bound on how long an
#: emitted event sits in memory before reaching the log.
POLL_SECONDS = 0.05


class TelemetrySink:
    """Durable, low-overhead event recorder over a segment log.

    Parameters
    ----------
    directory:
        Event-stream directory (created if needed).  Reopening an
        existing stream appends, continuing the sequence numbers.
    max_segment_bytes, durability:
        Forwarded to :class:`~repro.explorer.persistence.SegmentLog`.
    capacity:
        Ring-buffer size; emitters block when the ring is full.
    """

    def __init__(self, directory, max_segment_bytes=DEFAULT_SEGMENT_BYTES,
                 durability="flush", capacity=RING_CAPACITY):
        self._log = SegmentLog(directory, max_segment_bytes=max_segment_bytes,
                               durability=durability)
        last = -1
        for document in self._log.open():
            seq = document.get("seq")
            if isinstance(seq, int) and seq > last:
                last = seq
        self._seq = itertools.count(last + 1)
        self._capacity = int(capacity)
        self._ring = deque()
        self._inflight = 0          # events popped from the ring, not yet on disk
        self._closed = False
        self._state = threading.Condition(threading.Lock())
        self._writer = threading.Thread(
            target=self._drain, name="telemetry-writer", daemon=True
        )
        self._writer.start()

    @property
    def directory(self):
        """The event-stream directory."""
        return self._log.directory

    # -- emitting -----------------------------------------------------------------

    def emit(self, etype, **fields):
        """Record one event (stamped with seq/timestamps); returns its seq."""
        return self._enqueue([make_event(etype, **fields)])

    def ingest(self, events, **context):
        """Record worker-captured events, merging coordinator ``context`` keys.

        The worker's own ``wall``/``proc``/``pid`` stamps are preserved;
        ``context`` adds the coordinator-side identity (tenant, iteration,
        fold, template) the worker did not know.  Sequence numbers are
        assigned here, in ingest order.
        """
        if not events:
            return None
        prepared = []
        for event in events:
            if context:
                event = dict(event)
                event.update(context)
            prepared.append(event)
        return self._enqueue(prepared)

    def _enqueue(self, events):
        last_seq = None
        with self._state:
            if self._closed:
                return None  # late emit during shutdown: drop quietly
            while len(self._ring) + len(events) > self._capacity and not self._closed:
                self._state.notify_all()  # the writer must drain for us to fit
                self._state.wait(POLL_SECONDS)
            for event in events:
                event["seq"] = last_seq = next(self._seq)
                self._ring.append(event)
            if len(self._ring) >= WAKE_BATCH:
                self._state.notify_all()
        return last_seq

    # -- writer thread ------------------------------------------------------------

    def _drain(self):
        while True:
            with self._state:
                # a timed wait, not a pure notification wait: the normal
                # emit path deliberately does not wake this thread (see
                # WAKE_BATCH), so the ring is drained on poll ticks
                while not self._ring and not self._closed:
                    self._state.wait(POLL_SECONDS)
                batch = list(self._ring)
                self._ring.clear()
                self._inflight = len(batch)
                if not batch and self._closed:
                    return
                self._state.notify_all()
            try:
                for event in batch:
                    self._log.append(event)
            finally:
                with self._state:
                    self._inflight = 0
                    self._state.notify_all()

    def flush(self, timeout=30.0):
        """Block until every emitted event has been appended to the log."""
        deadline = time.monotonic() + timeout
        with self._state:
            self._state.notify_all()  # wake the writer now, not at the tick
            while self._ring or self._inflight:
                if self._closed and not self._writer.is_alive():
                    break
                if time.monotonic() > deadline:
                    raise RuntimeError("telemetry writer failed to drain")
                self._state.wait(0.1)

    def close(self):
        """Flush, stop the writer thread and release the log."""
        with self._state:
            if self._closed:
                return
            self._closed = True
            self._state.notify_all()
        self._writer.join(timeout=30.0)
        self._log.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def __repr__(self):
        return "TelemetrySink(directory={!r})".format(self._log.directory)


# -- coordinator-global active sink -----------------------------------------------

_active_lock = threading.Lock()
_active_sink = None
_active_count = 0


def activate_sink(sink):
    """Install ``sink`` as the process-global active sink (refcounted)."""
    global _active_sink, _active_count
    with _active_lock:
        if _active_sink is sink:
            _active_count += 1
        else:
            _active_sink = sink
            _active_count = 1


def deactivate_sink(sink):
    """Release one activation of ``sink``; clears the hook at zero."""
    global _active_sink, _active_count
    with _active_lock:
        if _active_sink is sink:
            _active_count -= 1
            if _active_count <= 0:
                _active_sink = None
                _active_count = 0


def get_active_sink():
    """The currently active sink, or ``None``."""
    return _active_sink


def emit_active(etype, **fields):
    """Emit through the active sink; a cheap no-op when none is installed."""
    sink = _active_sink
    if sink is not None:
        sink.emit(etype, **fields)
