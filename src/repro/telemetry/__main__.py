"""CLI entry point: ``python -m repro.telemetry <run-dir>``."""

import sys

from repro.telemetry.replayer import main

if __name__ == "__main__":
    sys.exit(main())
