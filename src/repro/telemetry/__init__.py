"""Structured telemetry: typed event stream + deterministic run replayer.

The search stack records *outcomes* durably (the segment-log record
stream of PR 4) but not *why*: per-fold timings, cache hits, prune
decisions, batch-group sizes, shm-plane choices and fleet queue depths
were ad-hoc counters surfaced only as end-of-run totals.  This package
turns them into a durable, time-resolved event stream:

* :mod:`repro.telemetry.events` — the typed, versioned event schema and
  the zero-cost thread-local capture API used inside workers,
* :mod:`repro.telemetry.sink` — :class:`~repro.telemetry.sink.TelemetrySink`,
  a low-overhead recorder draining an in-process ring buffer into a
  crash-safe JSONL segment log (the same machinery as the record store),
* :mod:`repro.telemetry.replayer` — reconstructs a full run timeline
  from the event stream alone and cross-checks it against the record
  stream (``python -m repro.telemetry <run-dir>``).
"""

from repro.telemetry.events import (
    SCHEMA_VERSION,
    begin_capture,
    capture_active,
    capture_event,
    end_capture,
    make_event,
)
from repro.telemetry.sink import (
    EVENTS_DIRNAME,
    TelemetrySink,
    activate_sink,
    deactivate_sink,
    emit_active,
    get_active_sink,
)
from repro.telemetry.replayer import ReplayError, load_events, replay_run

__all__ = [
    "SCHEMA_VERSION",
    "EVENTS_DIRNAME",
    "TelemetrySink",
    "ReplayError",
    "activate_sink",
    "begin_capture",
    "capture_active",
    "capture_event",
    "deactivate_sink",
    "emit_active",
    "end_capture",
    "get_active_sink",
    "load_events",
    "make_event",
    "replay_run",
]
