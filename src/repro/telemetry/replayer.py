"""Deterministic run replayer: event stream -> timeline + record stream.

Given a durable telemetry event stream (and optionally the record log it
was recorded alongside), :func:`replay_run` reconstructs the full run
timeline:

* every :class:`~repro.automl.search.EvaluationRecord` is **re-derived
  from its fold events** by replaying the coordinator's aggregation
  semantics (first error in fold order wins; otherwise the score is the
  mean of the per-fold scores; a prune decision overrides with a
  ``PrunedEvaluation`` failure; non-finite means become the
  ``NonFiniteScore`` failure) and checked against the ``record_reported``
  event — any divergence is a hard :class:`ReplayError`,
* per-tenant Gantt rows (fold start/elapsed/worker) and queue-depth-over-
  time curves are assembled from the fold and fleet scheduler events,
* when the record log is supplied, the reconstructed stream is
  cross-checked against it.  Records present in the log but absent from
  the events are tolerated only as a *trailing suffix* per task — the
  window a ``SIGKILL`` can take from the asynchronous telemetry writer
  after the synchronous record append landed; a mid-stream gap means the
  streams genuinely diverged and raises :class:`ReplayError`.

CLI::

    python -m repro.telemetry <run-dir-or-events-dir> [--records DIR] [--json]
"""

import argparse
import json
import math
import os
import sys

import numpy as np

from repro.explorer.persistence import SegmentLog
from repro.telemetry.events import SCHEMA_VERSION
from repro.telemetry.sink import EVENTS_DIRNAME


class ReplayError(RuntimeError):
    """The event stream is unusable or diverges from the record stream."""


#: Terminal per-fold events: exactly one per (candidate, fold) that ran.
_TERMINAL = ("fold_finished", "fold_cancelled")

#: Record fields the fold events must reproduce bit-identically.
_DERIVED_FIELDS = ("score", "raw_score", "error", "pruned")


def _resolve_events_dir(path):
    """Accept a run directory, an events directory, or a stream directory."""
    candidates = [path, os.path.join(path, EVENTS_DIRNAME)]
    for candidate in candidates:
        if os.path.isfile(os.path.join(candidate, SegmentLog.MANIFEST_NAME)):
            return candidate
    # a brand-new (never-rotated) stream may predate its manifest; fall
    # back to any directory that at least exists
    for candidate in candidates:
        if os.path.isdir(candidate):
            return candidate
    raise ReplayError("No telemetry event stream found at {!r}".format(path))


def load_events(path):
    """Load and validate the event stream at ``path`` (repairs a torn tail).

    ``path`` may be the events directory itself or a checkpointed run
    directory containing an ``events/`` stream.  Events are returned in
    append order; the schema version and the strict monotonicity of the
    sequence numbers are validated.
    """
    events_dir = _resolve_events_dir(path)
    log = SegmentLog(events_dir, compact_on_open=False)
    try:
        documents = log.open()
    finally:
        log.close()
    last_seq = None
    for event in documents:
        version = event.get("v")
        if not isinstance(version, int) or version > SCHEMA_VERSION:
            raise ReplayError(
                "Event schema version {!r} is newer than supported version {}".format(
                    version, SCHEMA_VERSION
                )
            )
        seq = event.get("seq")
        if not isinstance(seq, int) or (last_seq is not None and seq <= last_seq):
            raise ReplayError(
                "Event sequence numbers are not strictly increasing "
                "({!r} after {!r})".format(seq, last_seq)
            )
        last_seq = seq
    return documents


def load_record_documents(path):
    """Load the durable record log (a segment-log store directory)."""
    log = SegmentLog(path, compact_on_open=False)
    try:
        return log.open()
    finally:
        log.close()


class _Candidate:
    """Accumulated fold evidence for one proposed configuration."""

    __slots__ = ("tenant", "iteration", "folds", "prune_reason", "reported")

    def __init__(self, tenant, iteration):
        self.tenant = tenant
        self.iteration = iteration
        self.folds = []          # terminal fold events
        self.prune_reason = None
        self.reported = None     # the record_reported event, if it survived


def _derive(candidate):
    """Re-derive the record fields from fold events (coordinator semantics)."""
    folds = sorted(candidate.folds, key=lambda event: event.get("fold", 0))
    error = None
    score = raw_score = None
    pruned = False
    if candidate.prune_reason is not None:
        error = "PrunedEvaluation: {}".format(candidate.prune_reason)
        pruned = True
    else:
        for event in folds:
            if event.get("error") is not None:
                error = event["error"]
                break
        if error is None and folds:
            score = float(np.mean([event["score"] for event in folds]))
            raw_score = float(np.mean([event["raw_score"] for event in folds]))
    if error is None and (score is None or not math.isfinite(score)):
        # the coordinator's NonFiniteScore rule (degenerate folds)
        error = "NonFiniteScore: cross-validation produced {!r}".format(score)
        score = None
        raw_score = None
    return {"score": score, "raw_score": raw_score, "error": error, "pruned": pruned}


def _check_derivation(candidate, record, where):
    """A record's fields must be re-derivable from its fold events."""
    if not candidate.folds and record.get("error") is not None:
        # the evaluation failed before its first fold ran; there is no
        # fold evidence to check against
        return
    derived = _derive(candidate)
    for field in _DERIVED_FIELDS:
        if derived[field] != record.get(field):
            raise ReplayError(
                "{}: tenant {!r} iteration {} field {!r} is not derivable from "
                "its fold events: derived {!r} != recorded {!r}".format(
                    where, candidate.tenant, candidate.iteration, field,
                    derived[field], record.get(field)
                )
            )


def replay_run(events, record_documents=None):
    """Reconstruct the run from ``events``; returns the replay report dict.

    The report carries the reconstructed record stream (``records``, in
    reported order, validated fold-derivable), per-tenant timeline
    summaries (``tenants``) and stream-wide counters.  Supplying the
    durable ``record_documents`` additionally cross-checks the
    reconstruction against the record log.
    """
    run_of_tenant = {}    # tenant -> current run index
    candidates = {}       # (tenant, run, iteration) -> _Candidate
    tenants = {}          # tenant -> summary accumulator
    counters = {
        "cache_hits": 0, "cache_misses": 0, "cache_stores": 0,
        "shm_publish": 0, "shm_attach": 0, "shm_fallback": 0,
        "batch_groups": 0, "prune_decisions": 0,
    }
    reported = []         # (candidate, record dict) in reported order
    fold_starts = {}      # (tenant, run, iteration, fold) -> fold_started event

    def tenant_summary(tenant):
        return tenants.setdefault(tenant, {
            "task": None, "n_records": 0, "n_folds": 0,
            "busy_seconds": 0.0, "first_wall": None, "last_wall": None,
            "gantt": [], "queue_depth": [],
            "per_iteration_seconds": {},
        })

    def candidate_for(event):
        tenant = event.get("tenant")
        iteration = event.get("iteration")
        key = (tenant, run_of_tenant.get(tenant, 0), iteration)
        if key not in candidates:
            candidates[key] = _Candidate(tenant, iteration)
        return candidates[key]

    for event in events:
        etype = event.get("event")
        tenant = event.get("tenant")
        if tenant is not None:
            summary = tenant_summary(tenant)
            wall = event.get("wall")
            if isinstance(wall, (int, float)):
                if summary["first_wall"] is None:
                    summary["first_wall"] = wall
                summary["last_wall"] = wall

        if etype == "search_started":
            run_of_tenant[tenant] = run_of_tenant.get(tenant, -1) + 1
            tenant_summary(tenant)["task"] = event.get("task")
        elif etype == "fold_started":
            key = (tenant, run_of_tenant.get(tenant, 0),
                   event.get("iteration"), event.get("fold"))
            fold_starts.setdefault(key, event)
        elif etype in _TERMINAL:
            candidate = candidate_for(event)
            candidate.folds.append(event)
            summary = tenant_summary(tenant)
            summary["n_folds"] += 1
            elapsed = event.get("elapsed") or 0.0
            summary["busy_seconds"] += elapsed
            per_iteration = summary["per_iteration_seconds"]
            iteration = event.get("iteration")
            per_iteration[iteration] = per_iteration.get(iteration, 0.0) + elapsed
            start_key = (tenant, run_of_tenant.get(tenant, 0),
                         iteration, event.get("fold"))
            started = fold_starts.get(start_key)
            start_wall = (started["wall"] if started is not None
                          else (event.get("wall") or 0.0) - elapsed)
            summary["gantt"].append({
                "iteration": iteration,
                "fold": event.get("fold"),
                "start": start_wall,
                "elapsed": elapsed,
                "pid": (started or event).get("pid"),
                "cancelled": etype == "fold_cancelled",
            })
        elif etype == "prune_decision":
            candidate_for(event).prune_reason = event.get("reason")
            counters["prune_decisions"] += 1
        elif etype == "record_reported":
            candidate = candidate_for(event)
            record = event.get("record") or {}
            candidate.reported = event
            _check_derivation(candidate, record, "record_reported")
            reported.append((candidate, record))
            tenant_summary(tenant)["n_records"] += 1
        elif etype == "fleet_queue_depth":
            tenant_summary(tenant)["queue_depth"].append({
                "wall": event.get("wall"), "depth": event.get("depth"),
            })
        elif etype == "cache_hit":
            counters["cache_hits"] += 1
        elif etype == "cache_miss":
            counters["cache_misses"] += 1
        elif etype == "cache_store":
            counters["cache_stores"] += 1
        elif etype == "shm_publish":
            counters["shm_publish"] += 1
        elif etype == "shm_attach":
            counters["shm_attach"] += 1
        elif etype == "shm_fallback":
            counters["shm_fallback"] += 1
        elif etype == "batch_group_formed":
            # the backend emits one dispatch-level event per fused group;
            # workers additionally capture a per-fold view, which carries
            # the fold context it was ingested under — count groups once
            if event.get("fold") is None:
                counters["batch_groups"] += 1

    if record_documents is not None:
        _cross_check(candidates, reported, record_documents)

    for summary in tenants.values():
        per_iteration = summary.pop("per_iteration_seconds")
        summary["critical_path_seconds"] = (
            max(per_iteration.values()) if per_iteration else 0.0
        )
        first, last = summary.pop("first_wall"), summary.pop("last_wall")
        summary["span_seconds"] = (last - first) if first is not None else 0.0
        summary["queue_depth_max"] = max(
            (point["depth"] for point in summary["queue_depth"]
             if isinstance(point.get("depth"), (int, float))),
            default=0,
        )
        summary["gantt"].sort(key=lambda row: (row["start"], row["iteration"]))

    return {
        "n_events": len(events),
        "schema_version": SCHEMA_VERSION,
        "records": [record for _, record in reported],
        "tenants": tenants,
        "counters": counters,
    }


def _cross_check(candidates, reported, record_documents):
    """The reconstruction must match the durable record log.

    Every record in the log must either be fold-derivable from the event
    stream or belong to the task's trailing suffix (iterations past the
    last one the events know about — the ``SIGKILL`` window where the
    synchronous record append outlived the asynchronous event writer).
    """
    by_task_iteration = {}
    last_known = {}
    for (tenant, _run, iteration), candidate in candidates.items():
        if not candidate.folds and candidate.reported is None:
            continue
        task = None
        # reported events carry the task name inside the record
        if candidate.reported is not None:
            task = (candidate.reported.get("record") or {}).get("task_name")
        by_task_iteration.setdefault((task, iteration), []).append(candidate)
        if task is not None and iteration is not None:
            last_known[task] = max(last_known.get(task, -1), iteration)

    # records whose task/iteration the events never identified (e.g. the
    # record_reported event was lost to the kill) can still be matched by
    # fold evidence through their tenant's record order; keep the check
    # conservative: match by (task, iteration) where possible, tolerate
    # only trailing gaps otherwise
    for document in record_documents:
        task = document.get("task_name")
        iteration = document.get("iteration")
        matches = by_task_iteration.get((task, iteration))
        if not matches:
            if iteration is not None and iteration > last_known.get(task, -1):
                continue  # trailing suffix: lost to the kill window
            raise ReplayError(
                "Record log entry (task {!r}, iteration {!r}) has no telemetry "
                "events mid-stream: the streams diverged".format(task, iteration)
            )
        _check_derivation(matches[0], document, "record log")


def _load_records_for(path, records_dir):
    """Resolve and load the record log to cross-check against, if any."""
    if records_dir is not None:
        return load_record_documents(records_dir)
    store_dir = os.path.join(path, "store")
    if os.path.isfile(os.path.join(store_dir, SegmentLog.MANIFEST_NAME)):
        return load_record_documents(store_dir)
    return None


def _print_report(report, stream=None):
    stream = stream if stream is not None else sys.stdout
    print("events               : {}".format(report["n_events"]), file=stream)
    print("records reconstructed: {}".format(len(report["records"])), file=stream)
    counters = report["counters"]
    print("cache hit/miss/store : {}/{}/{}".format(
        counters["cache_hits"], counters["cache_misses"],
        counters["cache_stores"]), file=stream)
    print("shm pub/attach/fall  : {}/{}/{}".format(
        counters["shm_publish"], counters["shm_attach"],
        counters["shm_fallback"]), file=stream)
    print("pruned / batch groups: {}/{}".format(
        counters["prune_decisions"], counters["batch_groups"]), file=stream)
    for tenant in sorted(report["tenants"]):
        summary = report["tenants"][tenant]
        print("tenant {!r}: task={!r} records={} folds={} busy={:.2f}s "
              "span={:.2f}s critical-path={:.2f}s queue-depth-max={}".format(
                  tenant, summary["task"], summary["n_records"],
                  summary["n_folds"], summary["busy_seconds"],
                  summary["span_seconds"], summary["critical_path_seconds"],
                  summary["queue_depth_max"]), file=stream)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry",
        description="Replay a run from its durable telemetry event stream.",
    )
    parser.add_argument("path", help="run directory (with an events/ stream) "
                                     "or the events directory itself")
    parser.add_argument("--records", default=None, metavar="DIR",
                        help="record-log directory to cross-check against "
                             "(default: <run-dir>/store when present)")
    parser.add_argument("--json", action="store_true",
                        help="emit the full replay report as JSON")
    arguments = parser.parse_args(argv)

    try:
        events = load_events(arguments.path)
        documents = _load_records_for(arguments.path, arguments.records)
        report = replay_run(events, record_documents=documents)
    except ReplayError as error:
        print("replay failed: {}".format(error), file=sys.stderr)
        return 1
    if arguments.json:
        json.dump(report, sys.stdout, indent=2, default=str)
        sys.stdout.write("\n")
    else:
        _print_report(report)
        if documents is not None:
            print("record-log cross-check: OK ({} records)".format(len(documents)))
    return 0
