"""Pipeline steps: instantiated primitives inside a pipeline.

A :class:`PipelineStep` loads a primitive annotation, resolves its
hyperparameters, and exposes uniform ``fit(context)`` / ``produce(context)``
entry points that read their inputs from and write their outputs to the
shared key-value :class:`~repro.core.context.Context` — this is what makes
"no glue code" composition possible (paper Section III-B1).
"""

import inspect
import json

from repro.core.annotations import PrimitiveAnnotation


class StepExecutionError(RuntimeError):
    """Raised when a pipeline step fails while fitting or producing."""


class PipelineStep:
    """One instantiated primitive inside a pipeline.

    Parameters
    ----------
    annotation:
        The :class:`~repro.core.annotations.PrimitiveAnnotation` to load.
    name:
        Unique step name within the pipeline (defaults to the primitive name).
    hyperparameters:
        Overrides applied on top of the annotation's fixed hyperparameters
        and tunable defaults.
    input_names:
        Mapping from declared ML data type to the context key to read it
        from, used to rewire steps without touching annotations.
    output_names:
        Mapping from declared output name to the context key to write to.
    """

    def __init__(self, annotation, name=None, hyperparameters=None, input_names=None,
                 output_names=None):
        if not isinstance(annotation, PrimitiveAnnotation):
            raise TypeError("PipelineStep requires a PrimitiveAnnotation")
        self.annotation = annotation
        self.name = name or annotation.name
        self.input_names = dict(input_names or {})
        self.output_names = dict(output_names or {})
        self.hyperparameters = dict(annotation.tunable_defaults())
        self.hyperparameters.update(annotation.fixed_hyperparameters)
        if hyperparameters:
            self.hyperparameters.update(hyperparameters)
        self._instance = None

    # -- hyperparameter management -------------------------------------------

    def get_tunable_hyperparameters(self):
        """Tunable hyperparameter specifications of the underlying primitive."""
        return {spec.name: spec for spec in self.annotation.tunable_hyperparameters}

    def get_hyperparameters(self):
        """Currently resolved hyperparameter values."""
        return dict(self.hyperparameters)

    def set_hyperparameters(self, values):
        """Update hyperparameter values (resets any fitted state)."""
        unknown = set(values) - self._accepted_hyperparameters()
        if unknown:
            raise ValueError(
                "Step {!r} does not accept hyperparameters {}".format(self.name, sorted(unknown))
            )
        self.hyperparameters.update(values)
        self._instance = None

    def _accepted_hyperparameters(self):
        accepted = set(self.annotation.fixed_hyperparameters)
        accepted.update(spec.name for spec in self.annotation.tunable_hyperparameters)
        accepted.update(self.hyperparameters)
        return accepted

    # -- data wiring -----------------------------------------------------------

    def fit_inputs(self):
        """Context keys consumed by the fit entry point (after renaming)."""
        return [self._input_key(arg["type"]) for arg in self.annotation.fit_args]

    def produce_inputs(self):
        """Context keys consumed by the produce entry point (after renaming)."""
        return [self._input_key(arg["type"]) for arg in self.annotation.produce_args]

    def optional_inputs(self):
        """Context keys whose absence the step tolerates (optional arguments)."""
        optional = set()
        for arg in self.annotation.fit_args + self.annotation.produce_args:
            if arg.get("optional"):
                optional.add(self._input_key(arg["type"]))
        return optional

    def produce_outputs(self):
        """Context keys written by the produce entry point (after renaming)."""
        return [
            self._output_key(out.get("type", out["name"]))
            for out in self.annotation.produce_output
        ]

    def _input_key(self, data_type):
        return self.input_names.get(data_type, data_type)

    def _output_key(self, output_name):
        return self.output_names.get(output_name, output_name)

    # -- fingerprinting ----------------------------------------------------------

    def fingerprint_payload(self):
        """Canonical JSON identity of this step for prefix fingerprinting.

        Captures everything that determines what the step *computes* on a
        given input: the primitive, the fully resolved hyperparameters
        (annotation defaults + fixed values + template init params +
        tuned overrides) and the context renames.  Two steps with equal
        payloads fitted on identical data produce identical artifacts,
        which is what makes fitted-prefix cache entries shareable across
        candidates and templates.
        """
        payload = {
            "primitive": self.annotation.name,
            "hyperparameters": self.hyperparameters,
            "input_names": self.input_names,
            "output_names": self.output_names,
        }
        return json.dumps(payload, sort_keys=True, default=repr)

    def restore_fitted(self, instance):
        """Adopt an already-fitted primitive instance (a prefix-cache hit).

        The instance replaces whatever this step would have built and
        fitted itself; ``produce`` and later ``predict`` calls use it
        directly.  Function (stateless) primitives cache ``None`` here.
        """
        self._instance = instance
        return self

    # -- execution -------------------------------------------------------------

    @property
    def is_class_primitive(self):
        """Whether the underlying implementation is a class (stateful) primitive."""
        return inspect.isclass(self.annotation.primitive)

    def _build_instance(self):
        primitive = self.annotation.primitive
        accepted = set(inspect.signature(primitive.__init__).parameters)
        kwargs = {
            key: value for key, value in self.hyperparameters.items() if key in accepted
        }
        return primitive(**kwargs)

    @property
    def instance(self):
        """The instantiated primitive object (class primitives only)."""
        if self._instance is None and self.is_class_primitive:
            self._instance = self._build_instance()
        return self._instance

    def _gather(self, context, args, allow_missing=False):
        kwargs = {}
        for arg in args:
            key = self._input_key(arg["type"])
            if key not in context:
                if arg.get("optional"):
                    continue  # optional inputs are simply omitted when absent
                if allow_missing:
                    return None
                raise StepExecutionError(
                    "Step {!r} requires {!r} which is not in the context "
                    "(available: {})".format(self.name, key, sorted(context.keys()))
                )
            kwargs[arg["name"]] = context[key]
        return kwargs

    def fit(self, context):
        """Fit the primitive on data gathered from the context (if it has a fit phase)."""
        if self.annotation.fit is None:
            return self
        kwargs = self._gather(context, self.annotation.fit_args)
        self._instance = None  # refit from scratch
        instance = self.instance
        method_name = self.annotation.fit.get("method", "fit")
        method = getattr(instance, method_name)
        try:
            method(**kwargs)
        except Exception as error:
            raise StepExecutionError(
                "Step {!r} failed during fit: {}".format(self.name, error)
            ) from error
        return self

    def produce(self, context, skip_if_missing=False):
        """Run the produce phase and return ``{context_key: value}`` outputs.

        Returns ``None`` when ``skip_if_missing`` is True and a required
        input is absent from the context (for example target-dependent
        steps at inference time).
        """
        kwargs = self._gather(context, self.annotation.produce_args, allow_missing=skip_if_missing)
        if kwargs is None:
            return None
        method_name = self.annotation.produce.get("method")
        try:
            if self.is_class_primitive:
                result = getattr(self.instance, method_name or "produce")(**kwargs)
            else:
                extra = self._function_hyperparameters(kwargs)
                result = self.annotation.primitive(**kwargs, **extra)
        except Exception as error:
            raise StepExecutionError(
                "Step {!r} failed during produce: {}".format(self.name, error)
            ) from error
        return self._map_outputs(result)

    def _function_hyperparameters(self, kwargs):
        signature = inspect.signature(self.annotation.primitive)
        accepted = set(signature.parameters)
        return {
            key: value
            for key, value in self.hyperparameters.items()
            if key in accepted and key not in kwargs
        }

    def _map_outputs(self, result):
        outputs = self.annotation.produce_output
        if len(outputs) == 1:
            values = (result,)
        else:
            if not isinstance(result, (tuple, list)) or len(result) != len(outputs):
                raise StepExecutionError(
                    "Step {!r} declared {} outputs but returned {!r}".format(
                        self.name, len(outputs), type(result).__name__
                    )
                )
            values = tuple(result)
        return {
            self._output_key(output.get("type", output["name"])): value
            for output, value in zip(outputs, values)
        }

    def __repr__(self):
        return "PipelineStep(name={!r}, primitive={!r})".format(self.name, self.annotation.name)
