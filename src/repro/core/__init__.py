"""Core ML Bazaar components: primitives, pipelines, templates.

This package is the reproduction of the paper's primary contribution:

* :mod:`repro.core.annotations` — the primitive annotation format
  (MLPrimitives' JSON specification);
* :mod:`repro.core.registry` — the primitive catalog / registry;
* :mod:`repro.core.catalog` — the curated catalog of annotated primitives
  (paper Table I);
* :mod:`repro.core.pipeline` — ML pipelines, the pipeline description
  interface and the execution engine (MLBlocks);
* :mod:`repro.core.graph` — computational graph recovery (paper
  Algorithm 1);
* :mod:`repro.core.template` — templates and hypertemplates (paper
  Section IV-A).
"""

from repro.core.annotations import HyperparamSpec, PrimitiveAnnotation
from repro.core.registry import PrimitiveRegistry, get_default_registry, load_primitive
from repro.core.pipeline import MLPipeline
from repro.core.step import PipelineStep
from repro.core.graph import InvalidPipelineError, recover_graph
from repro.core.template import Hypertemplate, Template

__all__ = [
    "HyperparamSpec",
    "PrimitiveAnnotation",
    "PrimitiveRegistry",
    "get_default_registry",
    "load_primitive",
    "MLPipeline",
    "PipelineStep",
    "recover_graph",
    "InvalidPipelineError",
    "Template",
    "Hypertemplate",
]
