"""Pipeline-graph recovery (paper Algorithm 1).

Given only the topological ordering of pipeline steps (the pipeline
description interface) and the ML data types each step consumes and
produces, the full computational graph is recovered by walking the steps
in reverse order and connecting each produced data item to the nearest
downstream consumer.
"""

import networkx as nx

#: Name of the virtual source node that provides the pipeline-level inputs.
SOURCE = "__input__"

#: Name of the virtual sink node that consumes the pipeline-level outputs.
SINK = "__output__"


class InvalidPipelineError(ValueError):
    """Raised when a pipeline violates the acceptability constraints."""


class _GraphNode:
    """Internal view of a step for the recovery algorithm."""

    def __init__(self, name, inputs, outputs, optional=()):
        self.name = name
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.optional = set(optional)


def recover_graph(steps, inputs, outputs=None):
    """Recover the computational graph of a pipeline description.

    Parameters
    ----------
    steps:
        Ordered list of :class:`~repro.core.step.PipelineStep` objects (the
        pipeline description interface).
    inputs:
        Context keys provided by the caller (the outputs of the virtual
        source node).
    outputs:
        Context keys expected at the end of the pipeline (the inputs of the
        virtual sink node).  Defaults to the outputs of the last step.

    Returns
    -------
    networkx.MultiDiGraph
        Graph whose nodes are step names plus the virtual ``__input__`` and
        ``__output__`` nodes, with one edge per data item labeled with the
        ``data`` attribute.

    Raises
    ------
    InvalidPipelineError
        If a step is isolated (produces nothing any downstream step needs)
        or some input is never satisfied.
    """
    if not steps:
        raise InvalidPipelineError("Cannot recover a graph from an empty pipeline")
    if outputs is None:
        outputs = steps[-1].produce_outputs()

    nodes = [_GraphNode(SOURCE, inputs=[], outputs=list(inputs))]
    for step in steps:
        # during the produce phase a step consumes its produce inputs; its fit
        # inputs also participate in the fit graph, so take the union for
        # acceptability checking
        step_inputs = list(dict.fromkeys(step.produce_inputs() + step.fit_inputs()))
        nodes.append(_GraphNode(
            step.name,
            inputs=step_inputs,
            outputs=step.produce_outputs(),
            optional=step.optional_inputs(),
        ))
    nodes.append(_GraphNode(SINK, inputs=list(outputs), outputs=[]))

    graph = nx.MultiDiGraph()
    unsatisfied = []  # list of (consumer_name, data_item, is_optional)
    remaining = list(nodes)

    while remaining:
        node = remaining.pop()  # popright: last remaining step
        matches = [entry for entry in unsatisfied if entry[1] in node.outputs]
        if matches or not graph.nodes or node.name == SOURCE:
            graph.add_node(node.name)
            for entry in matches:
                consumer, data_item, _ = entry
                unsatisfied.remove(entry)
                graph.add_edge(node.name, consumer, data=data_item)
            for data_item in node.inputs:
                unsatisfied.append((node.name, data_item, data_item in node.optional))
        else:
            raise InvalidPipelineError(
                "Step {!r} is isolated: none of its outputs {} are consumed by a "
                "downstream step".format(node.name, node.outputs)
            )

    required_leftovers = [entry for entry in unsatisfied if not entry[2]]
    if required_leftovers:
        missing = sorted({item for _, item, _ in required_leftovers})
        consumers = sorted({consumer for consumer, _, _ in required_leftovers})
        raise InvalidPipelineError(
            "Unsatisfied inputs remain after graph recovery: {} required by {}".format(
                missing, consumers
            )
        )
    return graph


def topological_order(graph):
    """Topological ordering of the recovered graph (excluding virtual nodes)."""
    order = list(nx.topological_sort(graph))
    return [name for name in order if name not in (SOURCE, SINK)]


def edge_data_items(graph):
    """List of ``(producer, consumer, data_item)`` triples of the recovered graph."""
    return [
        (producer, consumer, attributes["data"])
        for producer, consumer, attributes in graph.edges(data=True)
    ]
