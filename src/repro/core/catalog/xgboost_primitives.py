"""Primitives emulating the XGBoost estimators of the curated catalog."""

from repro.core.catalog._helpers import estimator, hp_float, hp_int
from repro.learners.tree import GradientBoostingClassifier, GradientBoostingRegressor

SOURCE = "XGBoost"


def _xgb_tunable():
    return [
        hp_int("n_estimators", 30, 10, 100),
        hp_int("max_depth", 3, 1, 8),
        hp_float("learning_rate", 0.1, 0.01, 0.5),
        hp_float("subsample", 1.0, 0.5, 1.0),
        hp_float("reg_lambda", 1.0, 0.0, 10.0),
    ]


def register(registry):
    """Register the XGBoost-equivalent gradient boosting primitives."""
    registry.register(estimator(
        "xgboost.XGBClassifier", GradientBoostingClassifier, SOURCE,
        tunable=_xgb_tunable(),
        description="Gradient boosted trees classifier with second-order updates.",
    ))
    registry.register(estimator(
        "xgboost.XGBRegressor", GradientBoostingRegressor, SOURCE,
        tunable=_xgb_tunable(),
        description="Gradient boosted trees regressor with second-order updates.",
    ))
    return registry
