"""Additional scikit-learn-equivalent primitives (feature engineering, SVMs,
clustering and extra ensembles).

Registered separately from :mod:`sklearn_primitives` to keep each catalog
module focused; both contribute to the same ``scikit-learn`` source bucket
of Table I.
"""

from repro.core.annotations import PrimitiveAnnotation
from repro.core.catalog._helpers import (
    arg,
    estimator,
    hp_cat,
    hp_float,
    hp_int,
    out,
    transformer,
)
from repro.learners.cluster import KMeans
from repro.learners.ensemble import AdaBoostClassifier, BaggingClassifier, BaggingRegressor
from repro.learners.preprocessing import (
    Binarizer,
    KBinsDiscretizer,
    Normalizer,
    PolynomialFeatures,
    SelectKBest,
    VarianceThreshold,
)
from repro.learners.svm import LinearSVC, LinearSVR
from repro.learners.stacking import StackingClassifier, StackingRegressor, VotingClassifier

SOURCE = "scikit-learn"


def register(registry):
    """Register the additional scikit-learn-equivalent primitives."""
    annotations = [
        # -- feature engineering -----------------------------------------------------
        transformer(
            "sklearn.preprocessing.Normalizer", Normalizer, SOURCE,
            category="preprocessor",
            tunable=[hp_cat("norm", "l2", ["l1", "l2", "max"])],
            description="Scale individual samples to unit norm.",
        ),
        transformer(
            "sklearn.preprocessing.Binarizer", Binarizer, SOURCE,
            category="preprocessor",
            tunable=[hp_float("threshold", 0.0, -5.0, 5.0)],
            description="Threshold features to 0/1.",
        ),
        transformer(
            "sklearn.preprocessing.PolynomialFeatures", PolynomialFeatures, SOURCE,
            description="Degree-2 polynomial feature expansion.",
        ),
        transformer(
            "sklearn.preprocessing.KBinsDiscretizer", KBinsDiscretizer, SOURCE,
            tunable=[hp_int("n_bins", 5, 2, 20)],
            description="Equal-frequency discretization of numeric features.",
        ),
        transformer(
            "sklearn.feature_selection.VarianceThreshold", VarianceThreshold, SOURCE,
            tunable=[hp_float("threshold", 0.0, 0.0, 1.0)],
            description="Drop features with variance below a threshold.",
        ),
        PrimitiveAnnotation(
            name="sklearn.feature_selection.SelectKBest",
            primitive=SelectKBest,
            category="feature_processor",
            source=SOURCE,
            fit={"method": "fit", "args": [arg("X", "X"), arg("y", "y")]},
            produce={"method": "transform", "args": [arg("X", "X")], "output": [out("X")]},
            hyperparameters={"tunable": [
                hp_int("k", 10, 1, 50),
                hp_cat("problem_type", "classification", ["classification", "regression"],
                       tunable=False),
            ]},
            metadata={"description": "Keep the K best features by univariate score."},
        ),
        # -- support vector machines ---------------------------------------------------
        estimator(
            "sklearn.svm.LinearSVC", LinearSVC, SOURCE,
            tunable=[hp_float("C", 1.0, 0.01, 100.0), hp_int("max_iter", 200, 50, 500)],
            description="Linear support vector classifier (hinge loss).",
        ),
        estimator(
            "sklearn.svm.LinearSVR", LinearSVR, SOURCE,
            tunable=[
                hp_float("C", 1.0, 0.01, 100.0),
                hp_float("epsilon", 0.1, 0.0, 1.0),
            ],
            description="Linear support vector regressor (epsilon-insensitive loss).",
        ),
        # -- extra ensembles --------------------------------------------------------------
        estimator(
            "sklearn.ensemble.AdaBoostClassifier", AdaBoostClassifier, SOURCE,
            tunable=[
                hp_int("n_estimators", 20, 5, 60),
                hp_int("max_depth", 1, 1, 4),
                hp_float("learning_rate", 1.0, 0.1, 2.0),
            ],
            description="SAMME AdaBoost over shallow decision trees.",
        ),
        estimator(
            "sklearn.ensemble.BaggingClassifier", BaggingClassifier, SOURCE,
            tunable=[
                hp_int("n_estimators", 10, 3, 30),
                hp_float("max_samples", 1.0, 0.3, 1.0),
            ],
            description="Bootstrap aggregation of CART classifiers.",
        ),
        estimator(
            "sklearn.ensemble.BaggingRegressor", BaggingRegressor, SOURCE,
            tunable=[
                hp_int("n_estimators", 10, 3, 30),
                hp_float("max_samples", 1.0, 0.3, 1.0),
            ],
            description="Bootstrap aggregation of CART regressors.",
        ),
        # -- model combination --------------------------------------------------------------
        estimator(
            "sklearn.ensemble.VotingClassifier", VotingClassifier, SOURCE,
            tunable=[hp_cat("voting", "hard", ["hard", "soft"])],
            description="Majority/soft vote over a diverse set of classifiers.",
        ),
        estimator(
            "sklearn.ensemble.StackingClassifier", StackingClassifier, SOURCE,
            tunable=[hp_int("n_splits", 3, 2, 5)],
            description="Out-of-fold stacking with a logistic meta-model.",
        ),
        estimator(
            "sklearn.ensemble.StackingRegressor", StackingRegressor, SOURCE,
            tunable=[hp_int("n_splits", 3, 2, 5)],
            description="Out-of-fold stacking with a ridge meta-model.",
        ),
        # -- clustering ----------------------------------------------------------------------
        PrimitiveAnnotation(
            name="sklearn.cluster.KMeans",
            primitive=KMeans,
            category="estimator",
            source=SOURCE,
            fit={"method": "fit", "args": [arg("X", "X")]},
            produce={"method": "predict", "args": [arg("X", "X")], "output": [out("y")]},
            hyperparameters={"tunable": [
                hp_int("n_clusters", 3, 2, 12),
                hp_int("n_init", 3, 1, 10),
            ]},
            metadata={"description": "K-means clustering with k-means++ seeding."},
        ),
    ]
    for annotation in annotations:
        registry.register(annotation)
    return registry
