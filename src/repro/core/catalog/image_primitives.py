"""Image primitives (OpenCV, scikit-image and NumPy equivalents)."""

from repro.core.annotations import PrimitiveAnnotation
from repro.core.catalog._helpers import arg, function_primitive, hp_int, out, transformer
from repro.learners.image import GaussianBlur, HOGFeaturizer
from repro.learners.image.features import flatten_images


def register(registry):
    """Register the image primitives."""
    registry.register(PrimitiveAnnotation(
        name="cv2.GaussianBlur",
        primitive=GaussianBlur,
        category="preprocessor",
        source="OpenCV",
        fit=None,
        produce={"method": "produce", "args": [arg("images", "X")], "output": [out("X")]},
        hyperparameters={"fixed": {"kernel_size": 3, "sigma": 1.0}},
        metadata={"description": "Gaussian blur over a stack of images."},
    ))
    registry.register(transformer(
        "skimage.feature.hog", HOGFeaturizer, "scikit-image",
        category="feature_processor",
        tunable=[hp_int("cell_size", 8, 4, 16), hp_int("n_bins", 9, 4, 18)],
        description="Histogram-of-oriented-gradients image features.",
    ))
    registry.register(function_primitive(
        "numpy.flatten_images", flatten_images, "NumPy",
        args=[arg("X", "X")],
        outputs=[out("X")],
        category="feature_processor",
        description="Flatten a stack of images into one feature row per image.",
    ))
    return registry
