"""Shared helpers for building primitive annotations concisely."""

from repro.core.annotations import HyperparamSpec, PrimitiveAnnotation


def arg(name, type, optional=False):
    """Build an input argument specification."""
    spec = {"name": name, "type": type}
    if optional:
        spec["optional"] = True
    return spec


def out(name, type=None):
    """Build an output specification (type defaults to the name)."""
    return {"name": name, "type": type or name}


def hp_int(name, default, low, high, tunable=True, description=""):
    """Integer hyperparameter spec."""
    return HyperparamSpec(name, "int", default, range=(low, high), tunable=tunable,
                          description=description)


def hp_float(name, default, low, high, tunable=True, description=""):
    """Float hyperparameter spec."""
    return HyperparamSpec(name, "float", default, range=(low, high), tunable=tunable,
                          description=description)


def hp_bool(name, default, tunable=True, description=""):
    """Boolean hyperparameter spec."""
    return HyperparamSpec(name, "bool", default, tunable=tunable, description=description)


def hp_cat(name, default, values, tunable=True, description=""):
    """Categorical hyperparameter spec."""
    return HyperparamSpec(name, "categorical", default, values=values, tunable=tunable,
                          description=description)


def transformer(name, primitive, source, category="feature_processor", tunable=None,
                fixed=None, description="", fit_on=("X",), produce_on=("X",),
                produce_method="transform", fit_method="fit", output="X"):
    """Annotation for a standard fit/transform feature processor."""
    return PrimitiveAnnotation(
        name=name,
        primitive=primitive,
        category=category,
        source=source,
        fit={"method": fit_method, "args": [arg(key, key) for key in fit_on]},
        produce={
            "method": produce_method,
            "args": [arg(key, key) for key in produce_on],
            "output": [out(output)],
        },
        hyperparameters={"fixed": dict(fixed or {}), "tunable": list(tunable or [])},
        metadata={"description": description},
    )


def estimator(name, primitive, source, tunable=None, fixed=None, description="",
              output="y", produce_method="predict"):
    """Annotation for a supervised estimator with fit(X, y) / predict(X)."""
    return PrimitiveAnnotation(
        name=name,
        primitive=primitive,
        category="estimator",
        source=source,
        fit={"method": "fit", "args": [arg("X", "X"), arg("y", "y")]},
        produce={
            "method": produce_method,
            "args": [arg("X", "X")],
            "output": [out("y", output)],
        },
        hyperparameters={"fixed": dict(fixed or {}), "tunable": list(tunable or [])},
        metadata={"description": description},
    )


def function_primitive(name, primitive, source, args, outputs, category="preprocessor",
                       tunable=None, fixed=None, description=""):
    """Annotation for a stateless function primitive."""
    return PrimitiveAnnotation(
        name=name,
        primitive=primitive,
        category=category,
        source=source,
        fit=None,
        produce={"method": None, "args": list(args), "output": list(outputs)},
        hyperparameters={"fixed": dict(fixed or {}), "tunable": list(tunable or [])},
        metadata={"description": description},
    )
