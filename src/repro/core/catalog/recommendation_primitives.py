"""Collaborative filtering primitives (LightFM equivalent)."""

from repro.core.catalog._helpers import estimator, hp_float, hp_int
from repro.learners.recommendation import MatrixFactorization

SOURCE = "LightFM"


def register(registry):
    """Register the collaborative filtering primitives."""
    registry.register(estimator(
        "lightfm.LightFM", MatrixFactorization, SOURCE,
        tunable=[
            hp_int("n_factors", 8, 2, 64),
            hp_float("learning_rate", 0.05, 0.005, 0.3),
            hp_int("epochs", 30, 5, 80),
            hp_float("reg", 0.02, 0.0, 0.5),
        ],
        description="Biased matrix factorization over (user, item, rating) interactions.",
    ))
    return registry
