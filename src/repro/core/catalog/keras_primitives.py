"""Primitives emulating the Keras portion of the curated catalog.

The deep-learning primitives (LSTM models, pretrained CNN featurizers and
the text/sequence utilities) keep their Keras-style names so the paper's
pipelines load unchanged, while being backed by the numpy models in
:mod:`repro.learners.neural` and :mod:`repro.learners.image`.
"""

from repro.core.annotations import PrimitiveAnnotation
from repro.core.catalog._helpers import (
    arg,
    function_primitive,
    hp_cat,
    hp_float,
    hp_int,
    out,
    transformer,
)
from repro.learners.neural import LSTMTextClassifier, LSTMTimeSeriesRegressor
from repro.learners.text import Tokenizer, pad_sequences
from repro.learners.image import PretrainedCNNFeaturizer, preprocess_input

SOURCE = "Keras"


def register(registry):
    """Register the Keras-equivalent primitives."""
    annotations = [
        PrimitiveAnnotation(
            name="keras.Sequential.LSTMTimeSeriesRegressor",
            primitive=LSTMTimeSeriesRegressor,
            category="estimator",
            source=SOURCE,
            fit={"method": "fit", "args": [arg("X", "X"), arg("y", "y")]},
            produce={
                "method": "predict",
                "args": [arg("X", "X")],
                "output": [out("y", "y_hat")],
            },
            hyperparameters={"tunable": [
                hp_cat("hidden_units", (64, 32), [(32,), (64,), (64, 32), (128, 64)]),
                hp_int("epochs", 35, 5, 100),
                hp_float("learning_rate", 0.01, 0.001, 0.1),
            ]},
            metadata={"description": "Windowed sequence regressor for time series forecasting."},
        ),
        PrimitiveAnnotation(
            name="keras.Sequential.LSTMTextClassifier",
            primitive=LSTMTextClassifier,
            category="estimator",
            source=SOURCE,
            fit={"method": "fit", "args": [
                arg("X", "X"),
                arg("y", "y"),
                arg("vocabulary_size", "vocabulary_size", optional=True),
                arg("classes", "classes", optional=True),
            ]},
            produce={"method": "predict", "args": [arg("X", "X")], "output": [out("y")]},
            hyperparameters={"tunable": [
                hp_int("embedding_dim", 32, 8, 128),
                hp_int("epochs", 30, 5, 80),
                hp_float("learning_rate", 0.01, 0.001, 0.1),
            ]},
            metadata={"description": "Embedding + pooling classifier over padded token sequences."},
        ),
        PrimitiveAnnotation(
            name="keras.preprocessing.text.Tokenizer",
            primitive=Tokenizer,
            category="preprocessor",
            source=SOURCE,
            fit={"method": "fit", "args": [arg("X", "X")]},
            produce={"method": "transform", "args": [arg("X", "X")], "output": [out("X")]},
            hyperparameters={"fixed": {"num_words": None, "lower": True}},
            metadata={"description": "Map documents to sequences of integer token indices."},
        ),
        function_primitive(
            "keras.preprocessing.sequence.pad_sequences", pad_sequences, SOURCE,
            args=[arg("sequences", "X")],
            outputs=[out("X")],
            category="preprocessor",
            fixed={"maxlen": 50, "padding": "pre", "truncating": "pre"},
            description="Pad variable-length token sequences to a fixed length.",
        ),
        function_primitive(
            "keras.applications.mobilenet.preprocess_input", preprocess_input, SOURCE,
            args=[arg("images", "X")],
            outputs=[out("X")],
            category="preprocessor",
            description="Scale raw image pixels to the [-1, 1] range.",
        ),
    ]

    # frozen CNN featurizers: same implementation, different capacity presets,
    # mirroring the MobileNet / ResNet50 / DenseNet121 / Xception primitives
    cnn_variants = {
        "keras.applications.mobilenet.MobileNet": {"n_filters": 12, "filter_size": 5, "stride": 4},
        "keras.applications.resnet50.ResNet50": {"n_filters": 24, "filter_size": 5, "stride": 3},
        "keras.applications.densenet.DenseNet121": {"n_filters": 16, "filter_size": 3, "stride": 3},
        "keras.applications.xception.Xception": {"n_filters": 20, "filter_size": 7, "stride": 4},
    }
    for name, fixed in cnn_variants.items():
        annotations.append(transformer(
            name, PretrainedCNNFeaturizer, SOURCE,
            category="feature_processor",
            fixed=fixed,
            description="Frozen convolutional featurizer standing in for a pretrained CNN.",
        ))

    for annotation in annotations:
        registry.register(annotation)
    return registry
