"""Primitives emulating Featuretools (deep feature synthesis)."""

from repro.core.annotations import PrimitiveAnnotation
from repro.core.catalog._helpers import arg, hp_int, out
from repro.learners.relational import DeepFeatureSynthesis

SOURCE = "Featuretools"


def register(registry):
    """Register the Featuretools-equivalent primitives."""
    registry.register(PrimitiveAnnotation(
        name="featuretools.dfs",
        primitive=DeepFeatureSynthesis,
        category="feature_processor",
        source=SOURCE,
        fit=None,
        produce={
            "method": "produce",
            "args": [arg("X", "X"), arg("entityset", "entityset", optional=True)],
            "output": [out("X")],
        },
        hyperparameters={"tunable": [hp_int("max_depth", 2, 1, 3)]},
        metadata={
            "description": (
                "Deep feature synthesis over an EntitySet; passes plain feature "
                "matrices through unchanged for single-table tasks."
            ),
        },
    ))
    return registry
