"""Custom MLPrimitives-style primitives (the ``mlprimitives.custom.*`` namespace).

These include the time series preprocessing and anomaly detection
primitives that make up the ORION pipeline (paper Listing 1), the text
counters used by the text-classification template, and the target
encoders/decoders that bracket most Table II templates.
"""

from repro.core.annotations import PrimitiveAnnotation
from repro.core.catalog._helpers import (
    arg,
    estimator,
    function_primitive,
    hp_cat,
    hp_float,
    hp_int,
    out,
    transformer,
)
from repro.learners.preprocessing import CategoricalEncoder, ClassDecoder, ClassEncoder
from repro.learners.synthetic import TimedDummyClassifier, TimedIdentityTransformer
from repro.learners.text import SequencePadder, StringVectorizer, TextCleaner, UniqueCounter, VocabularyCounter
from repro.learners.timeseries import (
    find_anomalies,
    regression_errors,
    rolling_window_sequences,
    time_segments_average,
)
from repro.learners.tree import ExtraTreesFeatureSelector

SOURCE = "MLPrimitives (custom)"


def register(registry):
    """Register the custom primitives."""
    annotations = [
        # -- target encoding -------------------------------------------------------
        PrimitiveAnnotation(
            name="mlprimitives.custom.preprocessing.ClassEncoder",
            primitive=ClassEncoder,
            category="preprocessor",
            source=SOURCE,
            fit={"method": "fit", "args": [arg("y", "y")]},
            produce={"method": "produce", "args": [arg("y", "y")],
                     "output": [out("y"), out("classes")]},
            metadata={"description": "Encode target labels and expose the class array."},
        ),
        PrimitiveAnnotation(
            name="mlprimitives.custom.preprocessing.ClassDecoder",
            primitive=ClassDecoder,
            category="postprocessor",
            source=SOURCE,
            fit={"method": "fit", "args": [arg("classes", "classes")]},
            produce={"method": "produce", "args": [arg("y", "y")], "output": [out("y")]},
            metadata={"description": "Decode integer predictions back to the original labels."},
        ),
        # -- feature processing ------------------------------------------------------
        transformer(
            "mlprimitives.custom.feature_extraction.CategoricalEncoder",
            CategoricalEncoder, SOURCE,
            category="feature_processor",
            description="One-hot encode the categorical columns of a mixed feature matrix.",
        ),
        PrimitiveAnnotation(
            name="mlprimitives.custom.feature_selection.ExtraTreesSelector",
            primitive=ExtraTreesFeatureSelector,
            category="feature_processor",
            source=SOURCE,
            fit={"method": "fit", "args": [arg("X", "X"), arg("y", "y")]},
            produce={"method": "transform", "args": [arg("X", "X")], "output": [out("X")]},
            hyperparameters={"tunable": [
                hp_int("n_estimators", 10, 4, 30),
                hp_cat("problem_type", "classification", ["classification", "regression"],
                       tunable=False),
            ]},
            metadata={"description": "Keep the features ranked most important by extra trees."},
        ),
        # -- text ----------------------------------------------------------------------
        PrimitiveAnnotation(
            name="mlprimitives.custom.counters.UniqueCounter",
            primitive=UniqueCounter,
            category="preprocessor",
            source=SOURCE,
            fit=None,
            produce={"method": "produce", "args": [arg("y", "y")], "output": [out("classes")]},
            metadata={"description": "Count the number of distinct classes in the target."},
        ),
        PrimitiveAnnotation(
            name="mlprimitives.custom.text.TextCleaner",
            primitive=TextCleaner,
            category="preprocessor",
            source=SOURCE,
            fit=None,
            produce={"method": "produce", "args": [arg("X", "X")], "output": [out("X")]},
            hyperparameters={"fixed": {"lowercase": True, "strip_punctuation": True}},
            metadata={"description": "Lowercase, strip punctuation and collapse whitespace."},
        ),
        PrimitiveAnnotation(
            name="mlprimitives.custom.counters.VocabularyCounter",
            primitive=VocabularyCounter,
            category="preprocessor",
            source=SOURCE,
            fit=None,
            produce={"method": "produce", "args": [arg("X", "X")],
                     "output": [out("vocabulary_size")]},
            metadata={"description": "Count distinct tokens across the corpus."},
        ),
        PrimitiveAnnotation(
            name="mlprimitives.custom.padding.SequencePadder",
            primitive=SequencePadder,
            category="preprocessor",
            source=SOURCE,
            fit=None,
            produce={"method": "produce", "args": [arg("X", "X")], "output": [out("X")]},
            hyperparameters={"fixed": {"maxlen": 50}},
            metadata={"description": "Pad token sequences to a fixed length."},
        ),
        transformer(
            "mlprimitives.custom.feature_extraction.StringVectorizer",
            StringVectorizer, SOURCE,
            category="feature_processor",
            tunable=[hp_int("max_features", 500, 50, 2000)],
            description="TF-IDF features from raw strings (text regression template).",
        ),
        # -- time series preprocessing (ORION pipeline) ---------------------------------
        function_primitive(
            "mlprimitives.custom.timeseries_preprocessing.time_segments_average",
            time_segments_average, SOURCE,
            args=[arg("X", "X")],
            outputs=[out("X"), out("index")],
            category="preprocessor",
            fixed={"interval": 1, "time_column": 0, "value_column": 1},
            description="Aggregate an irregular signal into equal-width time segments.",
        ),
        function_primitive(
            "mlprimitives.custom.timeseries_preprocessing.rolling_window_sequences",
            rolling_window_sequences, SOURCE,
            args=[arg("X", "X"), arg("index", "index", optional=True)],
            outputs=[out("X"), out("y"), out("index"), out("target_index")],
            category="preprocessor",
            tunable=[hp_int("window_size", 50, 10, 200)],
            fixed={"target_size": 1, "step_size": 1, "target_column": 0},
            description="Create rolling window input/target pairs from a series.",
        ),
        # -- synthetic cost simulation (scheduler/backend benchmarks) ---------------------
        estimator(
            "mlprimitives.custom.synthetic.TimedDummyClassifier",
            TimedDummyClassifier, SOURCE,
            fixed={"fit_seconds": 0.0, "predict_seconds": 0.0},
            description="Majority-class classifier with a configurable artificial "
                        "fit/predict cost, for scheduler-skew benchmarks.",
        ),
        transformer(
            "mlprimitives.custom.synthetic.TimedIdentityTransformer",
            TimedIdentityTransformer, SOURCE,
            fixed={"fit_seconds": 0.0, "transform_seconds": 0.0},
            description="Identity transformer with a configurable artificial fit "
                        "cost, for prefix-cache benchmarks.",
        ),
        # -- anomaly detection postprocessing (ORION pipeline) ----------------------------
        function_primitive(
            "mlprimitives.custom.timeseries_anomalies.regression_errors",
            regression_errors, SOURCE,
            args=[arg("y_true", "y"), arg("y_pred", "y_hat")],
            outputs=[out("errors")],
            category="postprocessor",
            tunable=[hp_float("smoothing_window", 0.01, 0.001, 0.2)],
            description="Smoothed absolute forecast errors.",
        ),
        function_primitive(
            "mlprimitives.custom.timeseries_anomalies.find_anomalies",
            find_anomalies, SOURCE,
            args=[arg("errors", "errors"), arg("index", "target_index", optional=True)],
            outputs=[out("anomalies")],
            category="postprocessor",
            tunable=[
                hp_float("z_threshold", 3.0, 1.5, 6.0),
                hp_int("window_size", 200, 50, 500),
                hp_int("anomaly_padding", 2, 0, 10),
            ],
            description="Dynamic-threshold anomaly interval detection over forecast errors.",
        ),
    ]
    for annotation in annotations:
        registry.register(annotation)
    return registry
