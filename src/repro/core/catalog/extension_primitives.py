"""Extension primitives: classical forecasters, anomaly detectors, embeddings, edges.

These map to the ``AnomalyDetector`` / ``BoundaryDetector`` postprocessors
and the additional featurizers shown in paper Figure 2, and give the
AutoML selector more alternatives per task type.
"""

from repro.core.annotations import PrimitiveAnnotation
from repro.core.catalog._helpers import (
    arg,
    estimator,
    hp_bool,
    hp_float,
    hp_int,
    out,
    transformer,
)
from repro.learners.outliers import IsolationTreeDetector, ZScoreBoundaryDetector
from repro.learners.preprocessing import DatetimeFeaturizer
from repro.learners.text import WordEmbeddingVectorizer
from repro.learners.timeseries import ARRegressor, ExponentialSmoothingRegressor
from repro.learners.image import SobelEdgeFeaturizer

SOURCE = "MLPrimitives (custom)"


def register(registry):
    """Register the extension primitives."""
    annotations = [
        # -- classical forecasters -------------------------------------------------------
        estimator(
            "mlprimitives.custom.timeseries.ARRegressor", ARRegressor, SOURCE,
            tunable=[hp_float("alpha", 1.0, 0.0, 50.0)],
            description="Ridge-regularized autoregressive forecaster over windows.",
        ),
        PrimitiveAnnotation(
            name="mlprimitives.custom.timeseries.ExponentialSmoothingRegressor",
            primitive=ExponentialSmoothingRegressor,
            category="estimator",
            source=SOURCE,
            fit={"method": "fit", "args": [arg("X", "X")]},
            produce={"method": "predict", "args": [arg("X", "X")], "output": [out("y", "y_hat")]},
            hyperparameters={"tunable": [
                hp_float("smoothing", 0.5, 0.05, 1.0),
                hp_bool("trend", True),
            ]},
            metadata={"description": "Exponentially weighted window forecaster."},
        ),
        # -- tabular anomaly detection (Figure 2 postprocessors) ----------------------------
        PrimitiveAnnotation(
            name="mlprimitives.custom.anomalies.AnomalyDetector",
            primitive=IsolationTreeDetector,
            category="postprocessor",
            source=SOURCE,
            fit={"method": "fit", "args": [arg("X", "X")]},
            produce={"method": "predict", "args": [arg("X", "X")], "output": [out("y")]},
            hyperparameters={"tunable": [
                hp_int("n_estimators", 30, 10, 80),
                hp_float("contamination", 0.1, 0.01, 0.4),
            ]},
            metadata={"description": "Isolation-forest-style tabular anomaly detector."},
        ),
        PrimitiveAnnotation(
            name="mlprimitives.custom.anomalies.BoundaryDetector",
            primitive=ZScoreBoundaryDetector,
            category="postprocessor",
            source=SOURCE,
            fit={"method": "fit", "args": [arg("X", "X")]},
            produce={"method": "predict", "args": [arg("X", "X")], "output": [out("y")]},
            hyperparameters={"tunable": [hp_float("threshold", 3.5, 1.5, 8.0)]},
            metadata={"description": "Robust z-score boundary detector."},
        ),
        # -- text embeddings -------------------------------------------------------------------
        transformer(
            "mlprimitives.custom.text.WordEmbeddingVectorizer",
            WordEmbeddingVectorizer, SOURCE,
            category="feature_processor",
            tunable=[
                hp_int("embedding_dim", 32, 4, 128),
                hp_int("window", 3, 1, 8),
            ],
            description="SVD co-occurrence word embeddings averaged per document.",
        ),
        # -- datetime featurization (the pandas bucket of Table I) ---------------------------------
        transformer(
            "pandas.DatetimeFeaturizer", DatetimeFeaturizer, "pandas",
            category="feature_processor",
            description="Expand timestamp columns into calendar features.",
        ),
        # -- image edges --------------------------------------------------------------------------
        transformer(
            "mlprimitives.custom.image.SobelEdgeFeaturizer",
            SobelEdgeFeaturizer, SOURCE,
            category="feature_processor",
            tunable=[hp_int("grid", 4, 2, 8)],
            description="Grid-pooled Sobel edge-magnitude features.",
        ),
    ]
    for annotation in annotations:
        registry.register(annotation)
    return registry
