"""Graph primitives (NetworkX and python-louvain equivalents)."""

from repro.core.annotations import PrimitiveAnnotation
from repro.core.catalog._helpers import arg, hp_float, out, function_primitive
from repro.learners.graph import (
    CommunityBestPartition,
    graph_feature_extraction,
    link_prediction_feature_extraction,
)


def register(registry):
    """Register the graph primitives."""
    registry.register(function_primitive(
        "networkx.graph_feature_extraction", graph_feature_extraction, "NetworkX",
        args=[arg("graph", "graph"), arg("nodes", "X")],
        outputs=[out("X")],
        category="feature_processor",
        description="Per-node structural features (degree, clustering, pagerank, core number).",
    ))
    registry.register(function_primitive(
        "networkx.link_prediction_feature_extraction",
        link_prediction_feature_extraction, "NetworkX",
        args=[arg("graph", "graph"), arg("pairs", "X")],
        outputs=[out("X")],
        category="feature_processor",
        description="Pairwise topological features for candidate edges.",
    ))
    registry.register(PrimitiveAnnotation(
        name="community.best_partition",
        primitive=CommunityBestPartition,
        category="estimator",
        source="python-louvain",
        fit=None,
        produce={
            "method": "produce",
            "args": [arg("graph", "graph"), arg("nodes", "X")],
            "output": [out("y")],
        },
        hyperparameters={"tunable": [hp_float("resolution", 1.0, 0.2, 3.0)]},
        metadata={"description": "Louvain-style community detection over a graph."},
    ))
    return registry
