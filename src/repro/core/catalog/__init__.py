"""The curated primitive catalog (paper Table I).

Every primitive keeps the fully-qualified name used in the original
MLPrimitives catalog (for example ``sklearn.preprocessing.StandardScaler``
or ``mlprimitives.custom.timeseries_anomalies.find_anomalies``) so that
pipeline specifications from the paper — such as the ORION pipeline of
Listing 1 — load verbatim.  The underlying implementations, however, are
the pure-numpy learners from :mod:`repro.learners` (see DESIGN.md for the
substitution rationale).
"""

from repro.core.registry import PrimitiveRegistry

from repro.core.catalog import (
    custom_primitives,
    extension_primitives,
    featuretools_primitives,
    graph_primitives,
    image_primitives,
    keras_primitives,
    recommendation_primitives,
    sklearn_extra_primitives,
    sklearn_primitives,
    xgboost_primitives,
)

#: Modules contributing primitives to the curated catalog, in registration order.
_CATALOG_MODULES = (
    sklearn_primitives,
    sklearn_extra_primitives,
    xgboost_primitives,
    keras_primitives,
    custom_primitives,
    extension_primitives,
    featuretools_primitives,
    graph_primitives,
    image_primitives,
    recommendation_primitives,
)


def build_catalog():
    """Build a fresh :class:`PrimitiveRegistry` with every curated primitive."""
    registry = PrimitiveRegistry(name="curated")
    for module in _CATALOG_MODULES:
        module.register(registry)
    return registry
