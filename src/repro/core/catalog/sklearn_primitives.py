"""Primitives emulating the scikit-learn portion of the curated catalog."""

from repro.core.annotations import PrimitiveAnnotation
from repro.core.catalog._helpers import (
    arg,
    estimator,
    hp_bool,
    hp_cat,
    hp_float,
    hp_int,
    out,
    transformer,
)
from repro.learners.preprocessing import (
    PCA,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    OrdinalEncoder,
    RobustScaler,
    SimpleImputer,
    StandardScaler,
    TruncatedSVD,
)
from repro.learners.linear import Lasso, LinearRegression, LogisticRegression, Ridge
from repro.learners.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    ExtraTreesClassifier,
    ExtraTreesRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)
from repro.learners.neighbors import KNeighborsClassifier, KNeighborsRegressor
from repro.learners.naive_bayes import GaussianNB, MultinomialNB
from repro.learners.neural import MLPClassifier, MLPRegressor
from repro.learners.text import CountVectorizer, TfidfVectorizer

SOURCE = "scikit-learn"


def _forest_tunable():
    return [
        hp_int("n_estimators", 10, 4, 40),
        hp_int("max_depth", 8, 2, 20),
        hp_int("min_samples_split", 2, 2, 10),
        hp_cat("max_features", "sqrt", ["sqrt", "log2", None]),
    ]


def _tree_tunable():
    return [
        hp_int("max_depth", 6, 1, 20),
        hp_int("min_samples_split", 2, 2, 10),
        hp_int("min_samples_leaf", 1, 1, 10),
    ]


def _mlp_tunable():
    return [
        hp_cat("hidden_units", (32,), [(16,), (32,), (64,), (64, 32)]),
        hp_float("learning_rate", 0.01, 0.0005, 0.1),
        hp_int("epochs", 30, 5, 80),
    ]


def register(registry):
    """Register the scikit-learn-equivalent primitives."""
    annotations = [
        # -- preprocessors ----------------------------------------------------
        transformer(
            "sklearn.impute.SimpleImputer", SimpleImputer, SOURCE,
            category="preprocessor",
            tunable=[hp_cat("strategy", "mean", ["mean", "median", "most_frequent"])],
            description="Column-wise imputation of missing values.",
        ),
        transformer(
            "sklearn.preprocessing.StandardScaler", StandardScaler, SOURCE,
            category="preprocessor",
            tunable=[hp_bool("with_mean", True), hp_bool("with_std", True)],
            description="Standardize features to zero mean and unit variance.",
        ),
        transformer(
            "sklearn.preprocessing.MinMaxScaler", MinMaxScaler, SOURCE,
            category="preprocessor",
            description="Scale features to the [0, 1] range.",
        ),
        transformer(
            "sklearn.preprocessing.RobustScaler", RobustScaler, SOURCE,
            category="preprocessor",
            description="Scale features using the median and interquartile range.",
        ),
        transformer(
            "sklearn.preprocessing.OneHotEncoder", OneHotEncoder, SOURCE,
            category="feature_processor",
            description="One-hot encode categorical feature columns.",
        ),
        transformer(
            "sklearn.preprocessing.OrdinalEncoder", OrdinalEncoder, SOURCE,
            category="feature_processor",
            description="Integer-encode categorical feature columns.",
        ),
        PrimitiveAnnotation(
            name="sklearn.preprocessing.LabelEncoder",
            primitive=LabelEncoder,
            category="preprocessor",
            source=SOURCE,
            fit={"method": "fit", "args": [arg("y", "y")]},
            produce={"method": "transform", "args": [arg("y", "y")], "output": [out("y")]},
            metadata={"description": "Encode target labels as consecutive integers."},
        ),
        transformer(
            "sklearn.decomposition.PCA", PCA, SOURCE,
            tunable=[hp_int("n_components", 5, 1, 30), hp_bool("whiten", False)],
            description="Principal component analysis.",
        ),
        transformer(
            "sklearn.decomposition.TruncatedSVD", TruncatedSVD, SOURCE,
            tunable=[hp_int("n_components", 5, 1, 30)],
            description="Truncated singular value decomposition.",
        ),
        # -- text feature extraction ---------------------------------------------
        transformer(
            "sklearn.feature_extraction.text.CountVectorizer", CountVectorizer, SOURCE,
            tunable=[hp_int("max_features", 500, 50, 2000)],
            description="Bag-of-words token counts.",
        ),
        transformer(
            "sklearn.feature_extraction.text.TfidfVectorizer", TfidfVectorizer, SOURCE,
            tunable=[hp_int("max_features", 500, 50, 2000)],
            description="TF-IDF weighted bag-of-words features.",
        ),
        # -- estimators: linear ----------------------------------------------------
        estimator(
            "sklearn.linear_model.LinearRegression", LinearRegression, SOURCE,
            description="Ordinary least squares regression.",
        ),
        estimator(
            "sklearn.linear_model.Ridge", Ridge, SOURCE,
            tunable=[hp_float("alpha", 1.0, 1e-4, 100.0)],
            description="L2-regularized linear regression.",
        ),
        estimator(
            "sklearn.linear_model.Lasso", Lasso, SOURCE,
            tunable=[hp_float("alpha", 0.1, 1e-4, 10.0)],
            description="L1-regularized linear regression.",
        ),
        estimator(
            "sklearn.linear_model.LogisticRegression", LogisticRegression, SOURCE,
            tunable=[
                hp_float("C", 1.0, 1e-3, 100.0),
                hp_float("learning_rate", 0.1, 0.001, 1.0),
                hp_int("max_iter", 200, 50, 500),
            ],
            description="Multinomial logistic regression.",
        ),
        # -- estimators: trees and forests -------------------------------------------
        estimator(
            "sklearn.tree.DecisionTreeClassifier", DecisionTreeClassifier, SOURCE,
            tunable=_tree_tunable(),
            description="CART decision tree classifier.",
        ),
        estimator(
            "sklearn.tree.DecisionTreeRegressor", DecisionTreeRegressor, SOURCE,
            tunable=_tree_tunable(),
            description="CART decision tree regressor.",
        ),
        estimator(
            "sklearn.ensemble.RandomForestClassifier", RandomForestClassifier, SOURCE,
            tunable=_forest_tunable(),
            description="Bootstrap-aggregated forest of CART classifiers.",
        ),
        estimator(
            "sklearn.ensemble.RandomForestRegressor", RandomForestRegressor, SOURCE,
            tunable=_forest_tunable(),
            description="Bootstrap-aggregated forest of CART regressors.",
        ),
        estimator(
            "sklearn.ensemble.ExtraTreesClassifier", ExtraTreesClassifier, SOURCE,
            tunable=_forest_tunable(),
            description="Extremely randomized trees classifier.",
        ),
        estimator(
            "sklearn.ensemble.ExtraTreesRegressor", ExtraTreesRegressor, SOURCE,
            tunable=_forest_tunable(),
            description="Extremely randomized trees regressor.",
        ),
        # -- estimators: instance-based and probabilistic ------------------------------
        estimator(
            "sklearn.neighbors.KNeighborsClassifier", KNeighborsClassifier, SOURCE,
            tunable=[
                hp_int("n_neighbors", 5, 1, 30),
                hp_cat("weights", "uniform", ["uniform", "distance"]),
            ],
            description="K-nearest-neighbors classifier.",
        ),
        estimator(
            "sklearn.neighbors.KNeighborsRegressor", KNeighborsRegressor, SOURCE,
            tunable=[
                hp_int("n_neighbors", 5, 1, 30),
                hp_cat("weights", "uniform", ["uniform", "distance"]),
            ],
            description="K-nearest-neighbors regressor.",
        ),
        estimator(
            "sklearn.naive_bayes.GaussianNB", GaussianNB, SOURCE,
            description="Gaussian naive Bayes classifier.",
        ),
        estimator(
            "sklearn.naive_bayes.MultinomialNB", MultinomialNB, SOURCE,
            tunable=[hp_float("alpha", 1.0, 0.01, 10.0)],
            description="Multinomial naive Bayes classifier for count features.",
        ),
        # -- estimators: neural networks ----------------------------------------------
        estimator(
            "sklearn.neural_network.MLPClassifier", MLPClassifier, SOURCE,
            tunable=_mlp_tunable(),
            description="Feed-forward neural network classifier.",
        ),
        estimator(
            "sklearn.neural_network.MLPRegressor", MLPRegressor, SOURCE,
            tunable=_mlp_tunable(),
            description="Feed-forward neural network regressor.",
        ),
    ]
    for annotation in annotations:
        registry.register(annotation)
    return registry
