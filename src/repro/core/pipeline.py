"""ML pipelines: the pipeline description interface and execution engine.

This module reproduces MLBlocks (paper Section III-B): a pipeline is
specified as a topologically ordered list of primitive names (the PDI),
optionally with per-step hyperparameters and input/output renames, and can
then be fitted, used for prediction, tuned, serialized to JSON, and
analyzed as a computational graph.
"""

import hashlib
import json

import networkx as nx

from repro.core.context import Context
from repro.core.graph import recover_graph
from repro.core.registry import get_default_registry
from repro.core.step import PipelineStep


class MLPipeline:
    """An end-to-end machine learning pipeline.

    Parameters
    ----------
    primitives:
        Ordered list of fully-qualified primitive names (the pipeline
        description interface).
    init_params:
        Mapping from step name (or primitive name) to a dict of
        hyperparameter overrides applied at construction time.
    input_names, output_names:
        Mapping from step name to per-step input/output context-key
        renames, exactly like MLBlocks.
    outputs:
        Name of the context key holding the pipeline's final output.
        Defaults to the first declared output of the last step.
    registry:
        Primitive catalog to resolve names against (defaults to the
        curated catalog).
    """

    def __init__(self, primitives, init_params=None, input_names=None, output_names=None,
                 outputs=None, registry=None):
        if not primitives:
            raise ValueError("A pipeline requires at least one primitive")
        self.primitives = list(primitives)
        self.init_params = dict(init_params or {})
        self.input_names = dict(input_names or {})
        self.output_names = dict(output_names or {})
        self._registry = registry or get_default_registry()

        self.steps = []
        occurrences = {}
        for primitive_name in self.primitives:
            occurrences[primitive_name] = occurrences.get(primitive_name, 0)
            step_name = "{}#{}".format(primitive_name, occurrences[primitive_name])
            occurrences[primitive_name] += 1
            annotation = self._registry.get(primitive_name)
            hyperparameters = {}
            hyperparameters.update(self.init_params.get(primitive_name, {}))
            hyperparameters.update(self.init_params.get(step_name, {}))
            step = PipelineStep(
                annotation,
                name=step_name,
                hyperparameters=hyperparameters,
                input_names=self._lookup(self.input_names, primitive_name, step_name),
                output_names=self._lookup(self.output_names, primitive_name, step_name),
            )
            self.steps.append(step)

        if outputs is None:
            outputs = self.steps[-1].produce_outputs()[0]
        self.outputs = outputs
        self.fitted = False
        self._fit_context_keys = None
        self.prefix_cache_info = None

    @staticmethod
    def _lookup(mapping, primitive_name, step_name):
        merged = {}
        merged.update(mapping.get(primitive_name, {}))
        merged.update(mapping.get(step_name, {}))
        return merged

    # -- execution -------------------------------------------------------------

    def fit(self, prefix_cache=None, data_key=None, **data):
        """Fit every step in order, flowing data through the shared context.

        Keyword arguments seed the execution context (for example ``X=...``
        and ``y=...``, or ``graph=...`` and ``pairs=...`` for graph tasks).

        Parameters
        ----------
        prefix_cache:
            Optional :class:`~repro.automl.prefix_cache.FittedPrefixCache`.
            Each *preprocessing-prefix* step is addressed by its prefix
            fingerprint (see :meth:`prefix_fingerprints`); on a hit the
            step adopts the cached fitted instance and transformed
            outputs instead of refitting, on a miss it fits normally and
            publishes its artifacts.  Caching stops at the first
            estimator-category step (and never covers the final step):
            the estimator is what candidates actually vary — and what may
            legitimately be stochastic — so only the deterministic
            preprocessing prefix in front of it is shared.  Per-call
            hit/miss counts land in :attr:`prefix_cache_info`.
        data_key:
            Content digest of the training data seeding the fingerprint
            chain (required with ``prefix_cache``): equal configured
            prefixes fitted on equal data — and only those — share
            fingerprints.
        """
        if prefix_cache is not None and data_key is None:
            raise ValueError("fit(prefix_cache=...) requires a data_key for the training data")
        context = Context(data)
        caching = prefix_cache is not None
        fingerprint = data_key
        prefix_length = self._cacheable_prefix_length() if caching else 0
        hits = misses = bytes_written = 0
        for index, step in enumerate(self.steps):
            cacheable = index < prefix_length
            if cacheable:
                fingerprint = _chain_fingerprint(fingerprint, step)
                artifacts = prefix_cache.get(fingerprint)
                if artifacts is not None:
                    hits += 1
                    step.restore_fitted(artifacts["instance"])
                    outputs = artifacts["outputs"]
                    if outputs is not None:
                        context.record(step.name, outputs)
                    continue
            step.fit(context)
            outputs = step.produce(context, skip_if_missing=False)
            if cacheable:
                misses += 1
                bytes_written += prefix_cache.put(
                    fingerprint, {"instance": step._instance, "outputs": outputs}
                )
            if outputs is not None:
                context.record(step.name, outputs)
        self.fitted = True
        self._fit_context_keys = sorted(context.keys())
        self.prefix_cache_info = (
            {"hits": hits, "misses": misses, "bytes_written": bytes_written}
            if caching else None
        )
        return self

    def _cacheable_prefix_length(self):
        """Steps eligible for prefix caching: everything before the estimator.

        The boundary is the first estimator-category step, capped at the
        final step for estimator-free pipelines — the tail of a pipeline
        is never served from cache.
        """
        boundary = len(self.steps) - 1
        for index, step in enumerate(self.steps):
            if step.annotation.category == "estimator":
                boundary = min(boundary, index)
                break
        return boundary

    def prefix_fingerprints(self, data_key):
        """Deterministic fingerprint of every pipeline prefix on ``data_key``.

        Entry ``k`` identifies the fitted state of steps ``0..k`` on the
        data behind ``data_key``: a rolling SHA-256 of the data key
        chained with each step's :meth:`~repro.core.step.PipelineStep.fingerprint_payload`.
        Changing any step's primitive or hyperparameters changes the
        fingerprints of that step and everything after it, but leaves the
        untouched prefix — and therefore its cache entries — stable.
        """
        fingerprints = []
        fingerprint = data_key
        for step in self.steps:
            fingerprint = _chain_fingerprint(fingerprint, step)
            fingerprints.append(fingerprint)
        return fingerprints

    @property
    def fit_context_keys(self):
        """Context keys that existed after the last ``fit``, or ``None`` if unfitted."""
        return self._fit_context_keys

    def predict(self, **data):
        """Run the produce phase of every step and return the final output.

        Steps whose inputs are unavailable at prediction time (for example
        target encoders that consume ``y``) are skipped, mirroring the
        MLBlocks inference behaviour.
        """
        if not self.fitted:
            raise RuntimeError("Pipeline must be fitted before calling predict")
        context = Context(data)
        for step in self.steps:
            outputs = step.produce(context, skip_if_missing=True)
            if outputs is not None:
                context.record(step.name, outputs)
        if self.outputs not in context:
            message = "Pipeline did not produce the expected output {!r}; context keys: {}".format(
                self.outputs, sorted(context.keys())
            )
            if self.fit_context_keys is not None:
                message += "; keys available at fit time: {}".format(self.fit_context_keys)
            raise RuntimeError(message)
        return context[self.outputs]

    def fit_predict(self, **data):
        """Fit the pipeline and return its output on the training context."""
        self.fit(**data)
        return self.predict(**data)

    # -- hyperparameter management ----------------------------------------------

    def get_tunable_hyperparameters(self):
        """Tunable hyperparameter specs per step: ``{step_name: {name: spec}}``."""
        return {step.name: step.get_tunable_hyperparameters() for step in self.steps}

    def get_hyperparameters(self):
        """Currently resolved hyperparameter values per step."""
        return {step.name: step.get_hyperparameters() for step in self.steps}

    def set_hyperparameters(self, hyperparameters):
        """Set hyperparameter values.

        Accepts either ``{step_name: {name: value}}`` nested dicts or a flat
        ``{(step_name, name): value}`` mapping.
        """
        nested = {}
        for key, value in hyperparameters.items():
            if isinstance(key, tuple):
                step_name, hyperparam = key
                nested.setdefault(step_name, {})[hyperparam] = value
            else:
                nested[key] = dict(value)
        step_index = {step.name: step for step in self.steps}
        for step_name, values in nested.items():
            if step_name not in step_index:
                raise ValueError("Unknown pipeline step {!r}".format(step_name))
            step_index[step_name].set_hyperparameters(values)
        self.fitted = False
        return self

    # -- graph recovery -----------------------------------------------------------

    def graph(self, inputs=("X", "y")):
        """Recover the computational graph of this pipeline (paper Algorithm 1)."""
        return recover_graph(self.steps, inputs=list(inputs), outputs=[self.outputs])

    def validate(self, inputs=("X", "y")):
        """Validate the pipeline's acceptability constraints; raises if invalid."""
        self.graph(inputs=inputs)
        return True

    def describe(self, inputs=("X", "y")):
        """Human-readable rendering of the recovered computational graph.

        The pipeline description interface only lists step names; this
        accompanies it with the recovered data flow (paper Section III-B2),
        one line per edge, in topological order of the producers.
        """
        graph = self.graph(inputs=inputs)
        ordering = {name: position for position, name in enumerate(nx.topological_sort(graph))}
        edges = sorted(
            graph.edges(data=True),
            key=lambda edge: (ordering[edge[0]], ordering[edge[1]], edge[2]["data"]),
        )
        lines = ["Pipeline with {} steps (inputs: {})".format(len(self.steps), ", ".join(inputs))]
        for producer, consumer, attributes in edges:
            lines.append("  {} --[{}]--> {}".format(
                _short_name(producer), attributes["data"], _short_name(consumer)
            ))
        return "\n".join(lines)

    # -- serialization --------------------------------------------------------------

    def to_dict(self):
        """Serialize the pipeline specification (not the fitted state) to a dict."""
        return {
            "primitives": list(self.primitives),
            "init_params": {
                step.name: step.get_hyperparameters() for step in self.steps
            },
            "input_names": self.input_names,
            "output_names": self.output_names,
            "outputs": self.outputs,
        }

    def to_json(self, indent=2):
        """Serialize the pipeline specification to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, default=_jsonify)

    def save(self, path):
        """Write the pipeline specification to a JSON file."""
        with open(path, "w") as stream:
            stream.write(self.to_json())

    @classmethod
    def from_dict(cls, payload, registry=None):
        """Rebuild a pipeline from the output of :meth:`to_dict`."""
        return cls(
            primitives=payload["primitives"],
            init_params=payload.get("init_params"),
            input_names=payload.get("input_names"),
            output_names=payload.get("output_names"),
            outputs=payload.get("outputs"),
            registry=registry,
        )

    @classmethod
    def load(cls, path, registry=None):
        """Load a pipeline specification from a JSON file."""
        with open(path) as stream:
            payload = json.load(stream)
        return cls.from_dict(payload, registry=registry)

    def __repr__(self):
        return "MLPipeline({} steps: {})".format(
            len(self.steps), " -> ".join(p.split(".")[-1] for p in self.primitives)
        )


def _chain_fingerprint(previous, step):
    """One link of the rolling prefix hash: ``H(previous || step identity)``."""
    hasher = hashlib.sha256()
    hasher.update(str(previous).encode("utf-8"))
    hasher.update(b"\0")
    hasher.update(step.fingerprint_payload().encode("utf-8"))
    return hasher.hexdigest()


def _jsonify(value):
    if isinstance(value, tuple):
        return list(value)
    return str(value)


def _short_name(node_name):
    """Compact display name for a step or virtual node."""
    if node_name.startswith("__"):
        return node_name.strip("_")
    return node_name.split(".")[-1].split("#")[0]
