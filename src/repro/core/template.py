"""Templates and hypertemplates (paper Section IV-A).

A *template* is a pipeline with an unset joint hyperparameter
configuration space Lambda; providing concrete values for the tunable
hyperparameters yields a pipeline.  A *hypertemplate* additionally has
*conditional* hyperparameters whose values change the tunable subspace;
fixing each combination of conditional values derives a family of
templates (paper Figure 4).
"""

import itertools

from repro.core.annotations import HyperparamSpec
from repro.core.pipeline import MLPipeline
from repro.core.registry import get_default_registry


class Template:
    """A pipeline specification with a tunable hyperparameter space.

    Parameters
    ----------
    name:
        Template name (used by selectors and result stores).
    primitives:
        Ordered list of primitive names (the PDI of the derived pipelines).
    init_params, input_names, output_names, outputs:
        Passed through to :class:`~repro.core.pipeline.MLPipeline`.
    tunable:
        Optional override of the tunable space as
        ``{step_name: {hyperparam_name: HyperparamSpec}}``.  When omitted
        the space is assembled from the primitive annotations.
    task_types:
        Optional list of ``(data_modality, problem_type)`` pairs this
        template is suitable for (used by the AutoBazaar template catalog).
    """

    def __init__(self, name, primitives, init_params=None, input_names=None,
                 output_names=None, outputs=None, tunable=None, task_types=None,
                 registry=None):
        self.name = name
        self.primitives = list(primitives)
        self.init_params = dict(init_params or {})
        self.input_names = dict(input_names or {})
        self.output_names = dict(output_names or {})
        self.outputs = outputs
        self.task_types = list(task_types or [])
        self._registry = registry or get_default_registry()
        self._tunable_override = tunable

    # -- hyperparameter space ---------------------------------------------------

    def build_pipeline(self, hyperparameters=None):
        """Instantiate a concrete pipeline, optionally with tuned hyperparameters.

        ``hyperparameters`` uses the flat ``{(step_name, name): value}``
        convention produced by the tuners.
        """
        pipeline = MLPipeline(
            primitives=self.primitives,
            init_params=self.init_params,
            input_names=self.input_names,
            output_names=self.output_names,
            outputs=self.outputs,
            registry=self._registry,
        )
        if hyperparameters:
            pipeline.set_hyperparameters(hyperparameters)
        return pipeline

    def get_tunable_hyperparameters(self):
        """The joint tunable space as ``{(step_name, hyperparam_name): HyperparamSpec}``."""
        if self._tunable_override is not None:
            space = {}
            for step_name, specs in self._tunable_override.items():
                for hyperparam_name, spec in specs.items():
                    space[(step_name, hyperparam_name)] = spec
            return space
        pipeline = self.build_pipeline()
        space = {}
        for step_name, specs in pipeline.get_tunable_hyperparameters().items():
            fixed_for_step = set(self.init_params.get(step_name, {}))
            primitive_name = step_name.rsplit("#", 1)[0]
            fixed_for_step |= set(self.init_params.get(primitive_name, {}))
            for hyperparam_name, spec in specs.items():
                if hyperparam_name in fixed_for_step:
                    continue  # values fixed at template definition are not tunable
                space[(step_name, hyperparam_name)] = spec
        return space

    def default_hyperparameters(self):
        """Default value for every tunable hyperparameter in the template space."""
        return {key: spec.default for key, spec in self.get_tunable_hyperparameters().items()}

    # -- serialization ------------------------------------------------------------

    def to_dict(self):
        """Serialize the template specification."""
        return {
            "name": self.name,
            "primitives": list(self.primitives),
            "init_params": self.init_params,
            "input_names": self.input_names,
            "output_names": self.output_names,
            "outputs": self.outputs,
            "task_types": [list(task_type) for task_type in self.task_types],
        }

    @classmethod
    def from_dict(cls, payload, registry=None):
        """Rebuild a template from :meth:`to_dict` output."""
        return cls(
            name=payload["name"],
            primitives=payload["primitives"],
            init_params=payload.get("init_params"),
            input_names=payload.get("input_names"),
            output_names=payload.get("output_names"),
            outputs=payload.get("outputs"),
            task_types=[tuple(task_type) for task_type in payload.get("task_types", [])],
            registry=registry,
        )

    def __repr__(self):
        return "Template(name={!r}, primitives={})".format(
            self.name, [p.split(".")[-1] for p in self.primitives]
        )


class ConditionalHyperparam:
    """A conditional hyperparameter of a hypertemplate.

    Parameters
    ----------
    step:
        Step name the hyperparameter belongs to.
    name:
        Hyperparameter name.
    values:
        The possible values of the conditional hyperparameter.
    subspaces:
        Mapping from each value to the list of extra
        :class:`HyperparamSpec` that become tunable when that value is
        chosen (may be empty).
    """

    def __init__(self, step, name, values, subspaces=None):
        if not values:
            raise ValueError("A conditional hyperparameter requires at least one value")
        self.step = step
        self.name = name
        self.values = list(values)
        self.subspaces = {value: list((subspaces or {}).get(value, [])) for value in self.values}
        for value, specs in self.subspaces.items():
            for spec in specs:
                if not isinstance(spec, HyperparamSpec):
                    raise TypeError("Conditional subspaces must contain HyperparamSpec objects")

    def __repr__(self):
        return "ConditionalHyperparam(step={!r}, name={!r}, values={!r})".format(
            self.step, self.name, self.values
        )


class Hypertemplate:
    """A template family indexed by conditional hyperparameter values.

    Fixing every conditional hyperparameter to one of its values derives a
    concrete :class:`Template` whose tunable space is the base space plus
    the subspace attached to each chosen value (paper Figure 4).
    """

    def __init__(self, name, primitives, conditionals, init_params=None, input_names=None,
                 output_names=None, outputs=None, task_types=None, registry=None):
        self.name = name
        self.primitives = list(primitives)
        self.conditionals = list(conditionals)
        if not self.conditionals:
            raise ValueError("A hypertemplate requires at least one conditional hyperparameter")
        self.init_params = dict(init_params or {})
        self.input_names = dict(input_names or {})
        self.output_names = dict(output_names or {})
        self.outputs = outputs
        self.task_types = list(task_types or [])
        self._registry = registry or get_default_registry()

    def n_templates(self):
        """Number of templates derivable from this hypertemplate."""
        count = 1
        for conditional in self.conditionals:
            count *= len(conditional.values)
        return count

    def derive_templates(self):
        """Derive every concrete template by fixing the conditional hyperparameters."""
        templates = []
        value_lists = [conditional.values for conditional in self.conditionals]
        for combination in itertools.product(*value_lists):
            init_params = {step: dict(values) for step, values in self.init_params.items()}
            extra_tunable = {}
            label_parts = []
            for conditional, value in zip(self.conditionals, combination):
                init_params.setdefault(conditional.step, {})[conditional.name] = value
                label_parts.append("{}={}".format(conditional.name, value))
                for spec in conditional.subspaces[value]:
                    extra_tunable.setdefault(conditional.step, {})[spec.name] = spec
            template = Template(
                name="{}[{}]".format(self.name, ",".join(label_parts)),
                primitives=self.primitives,
                init_params=init_params,
                input_names=self.input_names,
                output_names=self.output_names,
                outputs=self.outputs,
                task_types=self.task_types,
                registry=self._registry,
            )
            base_space = template.get_tunable_hyperparameters()
            for step, specs in extra_tunable.items():
                for hyperparam_name, spec in specs.items():
                    base_space[(step, hyperparam_name)] = spec
            # freeze the combined space as an explicit override
            override = {}
            for (step_name, hyperparam_name), spec in base_space.items():
                override.setdefault(step_name, {})[hyperparam_name] = spec
            template._tunable_override = override
            templates.append(template)
        return templates

    def __repr__(self):
        return "Hypertemplate(name={!r}, n_templates={})".format(self.name, self.n_templates())
