"""The execution context: a key-value store of ML data objects.

The MLBlocks execution engine (paper Section III-B2) iteratively
transforms "a collection of objects and a metadata tracker in a key-value
store" through the pipeline steps.  ``Context`` is that store: keys are ML
data type names (``X``, ``y``, ``classes``, ``graph``, ...) and values are
whatever the primitives exchange.
"""


class Context(dict):
    """Dictionary of ML data objects with provenance tracking."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._history = []

    def record(self, step_name, outputs):
        """Store the outputs of a pipeline step and remember who wrote them."""
        for key, value in outputs.items():
            self[key] = value
            self._history.append((step_name, key))

    @property
    def history(self):
        """Ordered list of ``(step_name, key)`` write events."""
        return list(self._history)

    def require(self, keys):
        """Return the values for ``keys``, raising ``KeyError`` listing what is missing."""
        missing = [key for key in keys if key not in self]
        if missing:
            raise KeyError(
                "Context is missing required data: {} (available: {})".format(
                    sorted(missing), sorted(self.keys())
                )
            )
        return {key: self[key] for key in keys}

    def copy(self):
        """Shallow copy preserving the history."""
        duplicate = Context(self)
        duplicate._history = list(self._history)
        return duplicate
