"""Primitive annotations: the MLPrimitives specification format.

A *primitive* is a reusable, self-contained ML component paired with
structured metadata (paper Section III-A).  The annotation records

* the fully-qualified name and the underlying Python implementation,
* the ``fit`` and ``produce`` entry points with the names and *ML data
  types* of their inputs and outputs,
* the fixed and tunable hyperparameters with types, ranges and defaults,
* descriptive metadata (source library, category, author, description).

Annotations are plain-data objects that round-trip through JSON, exactly
like the JSON files in the original MLPrimitives catalog.
"""

import json

#: Categories used to organize the catalog (paper Figure 2).
CATEGORIES = ("preprocessor", "feature_processor", "estimator", "postprocessor")

#: Hyperparameter value types supported by the annotation format.
HYPERPARAM_TYPES = ("int", "float", "bool", "categorical")


class AnnotationError(ValueError):
    """Raised when an annotation does not conform to the specification."""


class HyperparamSpec:
    """Specification of a single tunable hyperparameter.

    Parameters
    ----------
    name:
        Hyperparameter name (must match the keyword accepted by the
        underlying implementation).
    type:
        One of ``"int"``, ``"float"``, ``"bool"`` or ``"categorical"``.
    default:
        Default value used when the hyperparameter is not tuned.
    range:
        ``(low, high)`` inclusive bounds for int/float hyperparameters.
    values:
        Candidate values for categorical hyperparameters.
    tunable:
        Whether AutoML tuners may modify this hyperparameter.
    description:
        Optional human-readable description.
    """

    def __init__(self, name, type, default, range=None, values=None, tunable=True,
                 description=""):
        self.name = name
        self.type = type
        self.default = default
        self.range = tuple(range) if range is not None else None
        self.values = list(values) if values is not None else None
        self.tunable = tunable
        self.description = description
        self.validate()

    def validate(self):
        """Check internal consistency of the specification."""
        if not self.name or not isinstance(self.name, str):
            raise AnnotationError("Hyperparameter name must be a non-empty string")
        if self.type not in HYPERPARAM_TYPES:
            raise AnnotationError(
                "Hyperparameter {!r} has invalid type {!r}; expected one of {}".format(
                    self.name, self.type, HYPERPARAM_TYPES
                )
            )
        if self.type in ("int", "float"):
            if self.range is None or len(self.range) != 2:
                raise AnnotationError(
                    "Hyperparameter {!r} of type {!r} requires a (low, high) range".format(
                        self.name, self.type
                    )
                )
            low, high = self.range
            if low > high:
                raise AnnotationError(
                    "Hyperparameter {!r} has an inverted range {!r}".format(self.name, self.range)
                )
            if self.default is not None and not low <= self.default <= high:
                raise AnnotationError(
                    "Default {!r} of hyperparameter {!r} is outside its range {!r}".format(
                        self.default, self.name, self.range
                    )
                )
        if self.type == "categorical":
            if not self.values:
                raise AnnotationError(
                    "Categorical hyperparameter {!r} requires a non-empty 'values' list".format(
                        self.name
                    )
                )
            if self.default not in self.values:
                raise AnnotationError(
                    "Default {!r} of categorical hyperparameter {!r} is not among its "
                    "values {!r}".format(self.default, self.name, self.values)
                )
        if self.type == "bool" and not isinstance(self.default, bool):
            raise AnnotationError(
                "Boolean hyperparameter {!r} requires a boolean default".format(self.name)
            )

    def to_dict(self):
        """Serialize to a JSON-compatible dict."""
        payload = {
            "name": self.name,
            "type": self.type,
            "default": self.default,
            "tunable": self.tunable,
        }
        if self.range is not None:
            payload["range"] = list(self.range)
        if self.values is not None:
            payload["values"] = list(self.values)
        if self.description:
            payload["description"] = self.description
        return payload

    @classmethod
    def from_dict(cls, payload):
        """Deserialize from a dict produced by :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            type=payload["type"],
            default=payload.get("default"),
            range=payload.get("range"),
            values=payload.get("values"),
            tunable=payload.get("tunable", True),
            description=payload.get("description", ""),
        )

    def __repr__(self):
        return "HyperparamSpec(name={!r}, type={!r}, default={!r})".format(
            self.name, self.type, self.default
        )

    def __eq__(self, other):
        return isinstance(other, HyperparamSpec) and self.to_dict() == other.to_dict()


class PrimitiveAnnotation:
    """Structured metadata for one ML primitive.

    Parameters
    ----------
    name:
        Fully-qualified primitive name, for example
        ``"repro.preprocessing.StandardScaler"``.
    primitive:
        The underlying Python callable or class implementing the primitive.
    category:
        One of :data:`CATEGORIES`.
    source:
        Label of the library the primitive is sourced from (used for the
        Table I catalog breakdown), for example ``"sklearn"`` or
        ``"custom"``.
    fit:
        ``None`` for stateless primitives, otherwise a dict
        ``{"method": str, "args": [{"name", "type"}, ...]}``; ``type`` is
        the ML data type drawn from the execution context.
    produce:
        Dict ``{"method": str, "args": [...], "output": [...]}`` describing
        the produce entry point.  For function primitives, ``method`` is
        ``None`` and the callable itself is invoked.
    hyperparameters:
        Dict with optional ``"fixed"`` (name -> value) and ``"tunable"``
        (list of :class:`HyperparamSpec` or dicts) entries.
    metadata:
        Free-form metadata (author, description, documentation URL).
    """

    def __init__(self, name, primitive, category, source, produce, fit=None,
                 hyperparameters=None, metadata=None):
        self.name = name
        self.primitive = primitive
        self.category = category
        self.source = source
        self.fit = fit
        self.produce = produce
        hyperparameters = hyperparameters or {}
        self.fixed_hyperparameters = dict(hyperparameters.get("fixed", {}))
        tunable = hyperparameters.get("tunable", [])
        self.tunable_hyperparameters = [
            spec if isinstance(spec, HyperparamSpec) else HyperparamSpec.from_dict(spec)
            for spec in tunable
        ]
        self.metadata = dict(metadata or {})
        self.validate()

    # -- validation ---------------------------------------------------------

    def validate(self):
        """Validate the annotation against the specification."""
        if not self.name or not isinstance(self.name, str):
            raise AnnotationError("Primitive name must be a non-empty string")
        if self.primitive is None or not callable(self.primitive):
            raise AnnotationError(
                "Primitive {!r} must reference a callable implementation".format(self.name)
            )
        if self.category not in CATEGORIES:
            raise AnnotationError(
                "Primitive {!r} has invalid category {!r}; expected one of {}".format(
                    self.name, self.category, CATEGORIES
                )
            )
        if not self.source:
            raise AnnotationError("Primitive {!r} must declare a source library".format(self.name))
        self._validate_entry_point("produce", self.produce, require_output=True)
        if self.fit is not None:
            self._validate_entry_point("fit", self.fit, require_output=False)
        names = [spec.name for spec in self.tunable_hyperparameters]
        if len(names) != len(set(names)):
            raise AnnotationError(
                "Primitive {!r} declares duplicate tunable hyperparameters".format(self.name)
            )
        overlap = set(names) & set(self.fixed_hyperparameters)
        if overlap:
            raise AnnotationError(
                "Primitive {!r} declares hyperparameters as both fixed and tunable: {}".format(
                    self.name, sorted(overlap)
                )
            )

    def _validate_entry_point(self, label, spec, require_output):
        if not isinstance(spec, dict):
            raise AnnotationError(
                "Primitive {!r}: {} specification must be a dict".format(self.name, label)
            )
        for arg in spec.get("args", []):
            if "name" not in arg or "type" not in arg:
                raise AnnotationError(
                    "Primitive {!r}: every {} argument needs 'name' and 'type'".format(
                        self.name, label
                    )
                )
        if require_output:
            outputs = spec.get("output", [])
            if not outputs:
                raise AnnotationError(
                    "Primitive {!r}: produce must declare at least one output".format(self.name)
                )
            for output in outputs:
                if "name" not in output or "type" not in output:
                    raise AnnotationError(
                        "Primitive {!r}: every output needs 'name' and 'type'".format(self.name)
                    )

    # -- convenience accessors ----------------------------------------------

    @property
    def fit_args(self):
        """ML data types consumed by the fit entry point."""
        if self.fit is None:
            return []
        return list(self.fit.get("args", []))

    @property
    def produce_args(self):
        """ML data types consumed by the produce entry point."""
        return list(self.produce.get("args", []))

    @property
    def produce_output(self):
        """ML data types produced by the produce entry point."""
        return list(self.produce.get("output", []))

    def tunable_defaults(self):
        """Default values of all tunable hyperparameters."""
        return {spec.name: spec.default for spec in self.tunable_hyperparameters}

    # -- serialization --------------------------------------------------------

    def to_dict(self):
        """Serialize to a JSON-compatible dict (the implementation is referenced by path)."""
        return {
            "name": self.name,
            "primitive": "{}.{}".format(self.primitive.__module__, self.primitive.__qualname__),
            "category": self.category,
            "source": self.source,
            "fit": self.fit,
            "produce": self.produce,
            "hyperparameters": {
                "fixed": self.fixed_hyperparameters,
                "tunable": [spec.to_dict() for spec in self.tunable_hyperparameters],
            },
            "metadata": self.metadata,
        }

    def to_json(self, indent=2):
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    @classmethod
    def from_dict(cls, payload, primitive=None):
        """Deserialize from a dict.

        The Python implementation cannot be reconstructed from JSON alone;
        either pass it explicitly or let the registry resolve it by path.
        """
        if primitive is None:
            primitive = _import_object(payload["primitive"])
        return cls(
            name=payload["name"],
            primitive=primitive,
            category=payload["category"],
            source=payload["source"],
            fit=payload.get("fit"),
            produce=payload["produce"],
            hyperparameters=payload.get("hyperparameters"),
            metadata=payload.get("metadata"),
        )

    def __repr__(self):
        return "PrimitiveAnnotation(name={!r}, category={!r}, source={!r})".format(
            self.name, self.category, self.source
        )


def _import_object(path):
    """Import an object given its dotted path."""
    import importlib

    module_path, _, attribute = path.rpartition(".")
    if not module_path:
        raise AnnotationError("Cannot import primitive from path {!r}".format(path))
    try:
        module = importlib.import_module(module_path)
        return getattr(module, attribute)
    except (ImportError, AttributeError):
        # the path may point at a nested attribute (for example a classmethod)
        parent_path, _, parent_attribute = module_path.rpartition(".")
        module = importlib.import_module(parent_path)
        parent = getattr(module, parent_attribute)
        return getattr(parent, attribute)
