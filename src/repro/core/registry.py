"""The primitive registry: a curated, queryable catalog of annotations.

The registry plays the role of the MLPrimitives curated catalog
(paper Table I): primitives are registered under fully-qualified names,
can be looked up by name, filtered by category or source, and counted per
source library.
"""

import json
from collections import Counter

from repro.core.annotations import PrimitiveAnnotation


class PrimitiveNotFoundError(KeyError):
    """Raised when a primitive name is not present in the registry."""


class PrimitiveRegistry:
    """A mapping from fully-qualified primitive names to annotations."""

    def __init__(self, name="catalog"):
        self.name = name
        self._annotations = {}

    # -- registration ---------------------------------------------------------

    def register(self, annotation):
        """Add an annotation to the registry.

        Re-registering an existing name raises ``ValueError`` to protect
        against accidental catalog collisions.
        """
        if not isinstance(annotation, PrimitiveAnnotation):
            raise TypeError("register expects a PrimitiveAnnotation")
        if annotation.name in self._annotations:
            raise ValueError("Primitive {!r} is already registered".format(annotation.name))
        annotation.validate()
        self._annotations[annotation.name] = annotation
        return annotation

    def unregister(self, name):
        """Remove a primitive from the registry."""
        self._annotations.pop(name, None)

    # -- lookup ---------------------------------------------------------------

    def get(self, name):
        """Return the annotation registered under ``name``."""
        try:
            return self._annotations[name]
        except KeyError:
            suggestions = [key for key in self._annotations if name.split(".")[-1] in key]
            message = "Primitive {!r} not found in catalog {!r}".format(name, self.name)
            if suggestions:
                message += "; did you mean one of {}?".format(sorted(suggestions)[:3])
            raise PrimitiveNotFoundError(message) from None

    def __contains__(self, name):
        return name in self._annotations

    def __len__(self):
        return len(self._annotations)

    def __iter__(self):
        return iter(self._annotations.values())

    def names(self):
        """Sorted list of registered primitive names."""
        return sorted(self._annotations)

    def search(self, category=None, source=None):
        """Annotations filtered by category and/or source library."""
        results = []
        for annotation in self._annotations.values():
            if category is not None and annotation.category != category:
                continue
            if source is not None and annotation.source != source:
                continue
            results.append(annotation)
        return sorted(results, key=lambda a: a.name)

    def count_by_source(self):
        """Number of registered primitives per source library (paper Table I)."""
        return dict(Counter(annotation.source for annotation in self._annotations.values()))

    def count_by_category(self):
        """Number of registered primitives per category."""
        return dict(Counter(annotation.category for annotation in self._annotations.values()))

    # -- serialization --------------------------------------------------------

    def to_dict(self):
        """Serialize every annotation to a JSON-compatible structure."""
        return {name: annotation.to_dict() for name, annotation in sorted(self._annotations.items())}

    def dump_json(self, path):
        """Write the whole catalog as a JSON file."""
        with open(path, "w") as stream:
            json.dump(self.to_dict(), stream, indent=2, default=str)

    def __repr__(self):
        return "PrimitiveRegistry(name={!r}, n_primitives={})".format(self.name, len(self))


_DEFAULT_REGISTRY = None


def get_default_registry():
    """Return the process-wide curated catalog, loading it on first use."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        from repro.core.catalog import build_catalog

        _DEFAULT_REGISTRY = build_catalog()
    return _DEFAULT_REGISTRY


def load_primitive(name):
    """Look up a primitive annotation by name in the default catalog."""
    return get_default_registry().get(name)
