"""Replayer round-trips: event stream -> bit-identical record stream."""

import os
import signal
import subprocess
import sys
import threading

import pytest

from repro.automl import AutoBazaarSearch, FleetCoordinator
from repro.core.template import Template
from repro.tasks import synth
from repro.telemetry.replayer import ReplayError, load_events, main, replay_run
from repro.telemetry.sink import TelemetrySink
from repro.tuning.tuners import UniformTuner

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _task(name=None, n_samples=100, random_state=0):
    return synth.make_single_table_classification(
        name=name, n_samples=n_samples, random_state=random_state)


def _documents(result):
    return [record.to_dict() for record in result.records]


def _round_trip(events_dir, result):
    """Replay + cross-check; asserts the record stream is bit-identical."""
    documents = _documents(result)
    report = replay_run(load_events(events_dir), record_documents=documents)
    assert report["records"] == documents
    return report


class TestRoundTrip:
    def test_serial_backend(self, tmp_path):
        events_dir = str(tmp_path / "events")
        searcher = AutoBazaarSearch(n_splits=2, random_state=0,
                                    telemetry=events_dir)
        result = searcher.search(_task(), budget=6)
        report = _round_trip(events_dir, result)
        assert len(report["records"]) == 6
        tenant = report["tenants"]["default"]
        assert tenant["n_records"] == 6
        assert tenant["n_folds"] == 12  # 6 candidates x 2 splits
        assert len(tenant["gantt"]) == 12

    def test_thread_backend_with_prefix_cache(self, tmp_path):
        events_dir = str(tmp_path / "events")
        searcher = AutoBazaarSearch(
            n_splits=2, random_state=0, backend="thread", workers=2,
            n_pending=2, prefix_cache="disk", cache_dir=str(tmp_path / "cache"),
            telemetry=events_dir,
        )
        result = searcher.search(_task(), budget=5)
        report = _round_trip(events_dir, result)
        counters = report["counters"]
        assert counters["cache_misses"] > 0 and counters["cache_stores"] > 0

    def test_process_backend_with_shm_plane(self, tmp_path):
        events_dir = str(tmp_path / "events")
        searcher = AutoBazaarSearch(
            n_splits=2, random_state=0, backend="process", workers=2,
            n_pending=2, data_plane="shm", telemetry=events_dir,
        )
        result = searcher.search(_task(), budget=4)
        report = _round_trip(events_dir, result)
        assert report["counters"]["shm_publish"] >= 1
        assert result.plane_counts and result.plane_counts.get("shm", 0) >= 1

    def test_batched_evaluation(self, tmp_path):
        events_dir = str(tmp_path / "events")
        template = Template(
            "replay_batched", ["sklearn.impute.SimpleImputer",
                               "sklearn.linear_model.Ridge"],
            init_params={"sklearn.impute.SimpleImputer": {"strategy": "mean"}},
        )
        searcher = AutoBazaarSearch(
            templates=[template], n_splits=2, random_state=0,
            schedule="barrier", n_pending=4, batch_eval=True,
            tuner_class=UniformTuner, telemetry=events_dir,
        )
        task = synth.make_single_table_regression(
            n_samples=150, n_features=8, random_state=0)
        result = searcher.search(task, budget=8)
        report = _round_trip(events_dir, result)
        assert report["counters"]["batch_groups"] >= 1

    def test_failing_template_records_are_derivable(self, tmp_path):
        events_dir = str(tmp_path / "events")
        broken = Template("replay_broken", ["sklearn.linear_model.Ridge"])
        searcher = AutoBazaarSearch(templates=[broken], n_splits=2,
                                    random_state=0, telemetry=events_dir)
        result = searcher.search(_task(), budget=2)  # regression learner on labels
        report = _round_trip(events_dir, result)
        assert len(report["records"]) == 2

    def test_fleet_multi_tenant_round_trip(self, tmp_path):
        events_dir = str(tmp_path / "events")
        sink = TelemetrySink(events_dir)
        tasks = [_task(name="tenant-%d" % index, n_samples=80, random_state=index)
                 for index in range(4)]
        fleet = FleetCoordinator(backend="process", workers=2, data_plane="shm")
        results = [None] * 4
        failures = []

        def run(index):
            try:
                handle = fleet.register(name="tenant-%d" % index)
                searcher = AutoBazaarSearch(
                    n_splits=2, random_state=0, backend=handle, n_pending=2,
                    prefix_cache="disk", cache_dir=str(tmp_path / "cache"),
                    telemetry=sink,
                )
                results[index] = searcher.search(tasks[index], budget=3)
                handle.shutdown()
            except BaseException as failure:  # noqa: BLE001 - re-raised below
                failures.append(failure)

        threads = [threading.Thread(target=run, args=(index,)) for index in range(4)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            fleet.close()
            sink.close()
        if failures:
            raise failures[0]

        documents = [doc for result in results for doc in _documents(result)]
        report = replay_run(load_events(events_dir), record_documents=documents)
        assert len(report["records"]) == 12
        assert sorted(report["tenants"]) == [
            "tenant-0", "tenant-1", "tenant-2", "tenant-3"]

        # every tenant's reconstructed stream is bit-identical, in order
        by_task = {}
        for record in report["records"]:
            by_task.setdefault(record["task_name"], []).append(record)
        for result in results:
            real = _documents(result)
            assert by_task[real[0]["task_name"]] == real

        counters = report["counters"]
        assert counters["shm_publish"] >= 1
        assert counters["cache_misses"] > 0
        for name in sorted(report["tenants"]):
            tenant = report["tenants"][name]
            assert tenant["n_folds"] == 6
            assert tenant["queue_depth_max"] >= 1
        for result in results:
            assert result.plane_counts.get("shm", 0) >= 1


class TestDivergence:
    def _run(self, tmp_path):
        events_dir = str(tmp_path / "events")
        searcher = AutoBazaarSearch(n_splits=2, random_state=0,
                                    telemetry=events_dir)
        result = searcher.search(_task(), budget=3)
        return events_dir, _documents(result)

    def test_tampered_score_is_a_hard_error(self, tmp_path):
        events_dir, documents = self._run(tmp_path)
        documents[1]["score"] = 123.456
        with pytest.raises(ReplayError):
            replay_run(load_events(events_dir), record_documents=documents)

    def test_mid_stream_log_gap_is_a_hard_error(self, tmp_path):
        events_dir, documents = self._run(tmp_path)
        phantom = dict(documents[0])
        phantom["iteration"] = -1  # before every event the stream knows about
        with pytest.raises(ReplayError):
            replay_run(load_events(events_dir),
                       record_documents=documents + [phantom])

    def test_trailing_log_suffix_is_tolerated(self, tmp_path):
        # the SIGKILL window: the synchronous record append can land
        # after the asynchronous event writer died
        events_dir, documents = self._run(tmp_path)
        trailing = dict(documents[-1])
        trailing["iteration"] = documents[-1]["iteration"] + 1
        replay_run(load_events(events_dir),
                   record_documents=documents + [trailing])

    def test_missing_stream_is_a_replay_error(self, tmp_path):
        with pytest.raises(ReplayError):
            load_events(str(tmp_path / "nowhere"))


class TestCheckpointedRuns:
    def test_run_dir_telemetry_and_cli(self, tmp_path, capsys):
        from repro.automl import ExperimentRun

        run_dir = str(tmp_path / "run")
        run = ExperimentRun.create(run_dir, task=_task(), budget=4,
                                   n_splits=2, random_state=0)
        result = run.execute(telemetry="run-dir")
        assert len(result.records) == 4
        assert os.path.isdir(os.path.join(run_dir, "events"))

        # the CLI resolves the events/ stream and the store/ record log
        assert main([run_dir]) == 0
        out = capsys.readouterr().out
        assert "records reconstructed: 4" in out
        assert "record-log cross-check: OK" in out

    def test_resume_appends_to_the_same_stream(self, tmp_path):
        from repro.automl import ExperimentRun, resume_run

        run_dir = str(tmp_path / "run")
        run = ExperimentRun.create(run_dir, task=_task(), budget=5,
                                   n_splits=2, random_state=0)

        class StopEarly(Exception):
            pass

        def interrupt(state):
            if state["n_reported"] >= 2:
                raise StopEarly()

        with pytest.raises(StopEarly):
            run.execute(on_report=interrupt, telemetry="run-dir")

        resumed = resume_run(run_dir, telemetry="run-dir")
        assert len(resumed.result.records) == 5

        events = load_events(run_dir)
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert sum(1 for e in events if e["event"] == "search_started") == 2
        report = replay_run(events, record_documents=list(resumed.store))
        # replayed iterations are not re-reported: the union of both
        # passes reconstructs the full stream exactly once
        assert [r["iteration"] for r in report["records"]] == [0, 1, 2, 3, 4]


CHILD_SOURCE = """
import os, signal, sys
sys.path.insert(0, {src!r})
from repro.automl import ExperimentRun
from repro.tasks import synth

task = synth.make_single_table_classification(n_samples=100, random_state=0)
run = ExperimentRun.create(sys.argv[1], task=task, budget=6, n_splits=2,
                           random_state=0)

def killer(state):
    if state["n_reported"] >= 3:
        os.kill(os.getpid(), signal.SIGKILL)

run.execute(on_report=killer, telemetry="run-dir")
raise AssertionError("the killer hook never fired")
"""


class TestSigkillRecovery:
    def test_sigkilled_run_replays_to_the_kill_point(self, tmp_path):
        run_dir = str(tmp_path / "run")
        child = subprocess.run(
            [sys.executable, "-c",
             CHILD_SOURCE.format(src=os.path.join(REPO_ROOT, "src")), run_dir],
            timeout=300,
        )
        assert child.returncode == -signal.SIGKILL

        from repro.explorer import PersistentPipelineStore

        with PersistentPipelineStore(os.path.join(run_dir, "store")) as store:
            documents = list(store)
        assert sorted(d["iteration"] for d in documents) == [0, 1, 2]

        # the stream (possibly torn mid-line by the kill) must load and
        # replay cleanly up to the kill point, and the durable record log
        # must cross-check against it — any mid-stream divergence raises
        events = load_events(run_dir)
        report = replay_run(events, record_documents=documents)
        assert len(report["records"]) <= 3
        for record, document in zip(report["records"], documents):
            assert record == document
