"""Tests for the telemetry event schema and the durable sink."""

import os
import threading

import pytest

from repro.telemetry.events import (
    SCHEMA_VERSION,
    begin_capture,
    capture_active,
    capture_event,
    end_capture,
    make_event,
)
from repro.telemetry.replayer import load_events
from repro.telemetry.sink import (
    TelemetrySink,
    activate_sink,
    deactivate_sink,
    emit_active,
    get_active_sink,
)


def _manifest(path):
    with open(os.path.join(path, "MANIFEST")) as stream:
        return [line.strip() for line in stream if line.strip()]


class TestEvents:
    def test_make_event_stamps_the_envelope(self):
        event = make_event("cache_hit", tier="mem", fingerprint="abc")
        assert event["v"] == SCHEMA_VERSION
        assert event["event"] == "cache_hit"
        assert event["tier"] == "mem"
        assert isinstance(event["wall"], float)
        assert isinstance(event["proc"], float)
        assert event["pid"] == os.getpid()

    def test_unknown_event_type_is_rejected(self):
        with pytest.raises(ValueError):
            make_event("definitely_not_an_event")

    def test_capture_buffer_is_thread_local_and_optional(self):
        assert not capture_active()
        capture_event("cache_hit")  # silently ignored: no capture active
        begin_capture()
        assert capture_active()
        capture_event("cache_hit", tier="mem")
        capture_event("cache_miss")
        seen = {}

        def other_thread():
            seen["active"] = capture_active()

        worker = threading.Thread(target=other_thread)
        worker.start()
        worker.join()
        assert seen["active"] is False
        events = end_capture()
        assert [event["event"] for event in events] == ["cache_hit", "cache_miss"]
        assert not capture_active()


class TestTelemetrySink:
    def test_emit_reload_round_trip(self, tmp_path):
        path = str(tmp_path / "events")
        with TelemetrySink(path) as sink:
            sink.emit("search_started", tenant="t", budget=3)
            sink.emit("fold_started", tenant="t", iteration=0, fold=0)
            sink.emit("search_finished", tenant="t")

        events = load_events(path)
        assert [event["event"] for event in events] == [
            "search_started", "fold_started", "search_finished",
        ]
        assert [event["seq"] for event in events] == [0, 1, 2]
        assert all(event["v"] == SCHEMA_VERSION for event in events)

    def test_sequence_continues_across_reopen(self, tmp_path):
        path = str(tmp_path / "events")
        with TelemetrySink(path) as sink:
            sink.emit("search_started", tenant="t")
        with TelemetrySink(path) as sink:
            sink.emit("search_finished", tenant="t")

        events = load_events(path)
        assert [event["seq"] for event in events] == [0, 1]

    def test_torn_final_line_is_repaired_on_reopen(self, tmp_path):
        path = str(tmp_path / "events")
        with TelemetrySink(path) as sink:
            sink.emit("search_started", tenant="t")
            sink.emit("fold_started", tenant="t", iteration=0, fold=0)
        segment = os.path.join(path, _manifest(path)[-1])
        with open(segment, "ab") as stream:
            stream.write(b'{"v": 1, "event": "fold_fin')  # crash mid-write

        # the replayer's loader repairs nothing (read-only open) but must
        # still skip the torn tail; the sink's reopen repairs it for good
        assert [e["event"] for e in load_events(path)] == [
            "search_started", "fold_started",
        ]
        with TelemetrySink(path) as sink:
            sink.emit("search_finished", tenant="t")
        events = load_events(path)
        assert [event["event"] for event in events] == [
            "search_started", "fold_started", "search_finished",
        ]
        assert [event["seq"] for event in events] == [0, 1, 2]

    def test_ingest_merges_context_and_keeps_worker_stamps(self, tmp_path):
        path = str(tmp_path / "events")
        worker_event = make_event("cache_hit", tier="mem")
        worker_wall, worker_pid = worker_event["wall"], worker_event["pid"]
        with TelemetrySink(path) as sink:
            sink.ingest([worker_event], tenant="t", iteration=4, fold=1)

        event, = load_events(path)
        assert event["tenant"] == "t"
        assert event["iteration"] == 4
        assert event["fold"] == 1
        assert event["wall"] == worker_wall
        assert event["pid"] == worker_pid

    def test_concurrent_emitters_yield_a_total_order(self, tmp_path):
        path = str(tmp_path / "events")
        per_thread, n_threads = 50, 4
        with TelemetrySink(path) as sink:
            def emitter(name):
                for index in range(per_thread):
                    sink.emit("fleet_queue_depth", tenant=name, depth=index)

            threads = [threading.Thread(target=emitter, args=("t%d" % i,))
                       for i in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            sink.flush()

        events = load_events(path)
        assert len(events) == per_thread * n_threads
        assert [event["seq"] for event in events] == list(range(len(events)))
        for name in ("t0", "t1", "t2", "t3"):
            depths = [e["depth"] for e in events if e["tenant"] == name]
            assert depths == list(range(per_thread))  # per-thread order kept

    def test_emit_after_close_is_dropped_quietly(self, tmp_path):
        sink = TelemetrySink(str(tmp_path / "events"))
        sink.emit("search_started", tenant="t")
        sink.close()
        assert sink.emit("search_finished", tenant="t") is None
        assert len(load_events(str(tmp_path / "events"))) == 1


class TestActiveSink:
    def test_refcounted_activation(self, tmp_path):
        path = str(tmp_path / "events")
        with TelemetrySink(path) as sink:
            emit_active("fleet_queue_depth", tenant="t", depth=0)  # no-op: inactive
            activate_sink(sink)
            activate_sink(sink)
            emit_active("fleet_admission", tenant="t", estimate=1.0)
            deactivate_sink(sink)
            assert get_active_sink() is sink  # one activation still held
            emit_active("fleet_admission", tenant="t", estimate=2.0)
            deactivate_sink(sink)
            assert get_active_sink() is None
            emit_active("fleet_admission", tenant="t", estimate=3.0)  # no-op
            sink.flush()
        events = load_events(path)
        assert [event["event"] for event in events] == [
            "fleet_admission", "fleet_admission",
        ]
        assert [event["estimate"] for event in events] == [1.0, 2.0]
