"""Tests for the base estimator API (get_params/set_params/clone)."""

import numpy as np
import pytest

from repro.learners.base import (
    BaseEstimator,
    NotFittedError,
    check_random_state,
    clone,
)
from repro.learners.linear import Ridge
from repro.learners.tree import RandomForestClassifier


class _Dummy(BaseEstimator):
    def __init__(self, alpha=1.0, beta="x"):
        self.alpha = alpha
        self.beta = beta


class TestGetSetParams:
    def test_get_params_returns_constructor_arguments(self):
        estimator = _Dummy(alpha=2.5, beta="y")
        assert estimator.get_params() == {"alpha": 2.5, "beta": "y"}

    def test_set_params_updates_attributes(self):
        estimator = _Dummy()
        estimator.set_params(alpha=7.0)
        assert estimator.alpha == 7.0
        assert estimator.beta == "x"

    def test_set_params_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="Invalid parameter"):
            _Dummy().set_params(gamma=1)

    def test_set_params_returns_self(self):
        estimator = _Dummy()
        assert estimator.set_params(alpha=3.0) is estimator

    def test_repr_contains_params(self):
        assert "alpha=2.5" in repr(_Dummy(alpha=2.5))


class TestClone:
    def test_clone_copies_parameters(self):
        original = Ridge(alpha=3.5)
        duplicate = clone(original)
        assert duplicate is not original
        assert duplicate.alpha == 3.5

    def test_clone_does_not_copy_fitted_state(self, regression_data):
        X, y = regression_data
        original = Ridge().fit(X, y)
        duplicate = clone(original)
        assert not hasattr(duplicate, "coef_")

    def test_clone_deep_copies_mutable_params(self):
        original = _Dummy(beta=[1, 2, 3])
        duplicate = clone(original)
        duplicate.beta.append(4)
        assert original.beta == [1, 2, 3]


class TestNotFitted:
    def test_predict_before_fit_raises(self, classification_data):
        X, _ = classification_data
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict(X)


class TestCheckRandomState:
    def test_none_gives_random_state(self):
        assert isinstance(check_random_state(None), np.random.RandomState)

    def test_int_is_reproducible(self):
        a = check_random_state(42).rand(3)
        b = check_random_state(42).rand(3)
        assert np.allclose(a, b)

    def test_existing_random_state_passthrough(self):
        rng = np.random.RandomState(1)
        assert check_random_state(rng) is rng

    def test_invalid_seed_raises(self):
        with pytest.raises(ValueError):
            check_random_state("not a seed")


class TestMixinScores:
    def test_classifier_score_is_accuracy(self, classification_data):
        X, y = classification_data
        model = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        assert 0.0 <= model.score(X, y) <= 1.0

    def test_regressor_score_is_r2(self, regression_data):
        X, y = regression_data
        model = Ridge().fit(X, y)
        assert model.score(X, y) > 0.9
