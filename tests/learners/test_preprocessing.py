"""Tests for imputation, scaling, encoding and decomposition transformers."""

import numpy as np
import pytest

from repro.learners.base import NotFittedError
from repro.learners.preprocessing import (
    PCA,
    CategoricalEncoder,
    ClassDecoder,
    ClassEncoder,
    LabelEncoder,
    MinMaxScaler,
    OneHotEncoder,
    OrdinalEncoder,
    RobustScaler,
    SimpleImputer,
    StandardScaler,
    TruncatedSVD,
)


class TestSimpleImputer:
    def test_mean_imputation(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0], [np.nan, 8.0]])
        result = SimpleImputer(strategy="mean").fit_transform(X)
        assert result[2, 0] == pytest.approx(2.0)
        assert result[0, 1] == pytest.approx(6.0)

    def test_median_imputation(self):
        X = np.array([[1.0], [100.0], [3.0], [np.nan]])
        result = SimpleImputer(strategy="median").fit_transform(X)
        assert result[3, 0] == pytest.approx(3.0)

    def test_most_frequent_imputation(self):
        X = np.array([[1.0], [1.0], [2.0], [np.nan]])
        result = SimpleImputer(strategy="most_frequent").fit_transform(X)
        assert result[3, 0] == 1.0

    def test_constant_imputation(self):
        X = np.array([[np.nan], [2.0]])
        result = SimpleImputer(strategy="constant", fill_value=-1.0).fit_transform(X)
        assert result[0, 0] == -1.0

    def test_no_missing_values_is_identity(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert np.allclose(SimpleImputer().fit_transform(X), X)

    def test_all_missing_column_uses_fill_value(self):
        X = np.array([[np.nan], [np.nan]])
        result = SimpleImputer(strategy="mean", fill_value=0.0).fit_transform(X)
        assert np.all(result == 0.0)

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            SimpleImputer(strategy="bogus").fit(np.ones((2, 2)))

    def test_feature_count_mismatch_raises(self):
        imputer = SimpleImputer().fit(np.ones((3, 2)))
        with pytest.raises(ValueError):
            imputer.transform(np.ones((3, 3)))

    def test_transform_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            SimpleImputer().transform(np.ones((2, 2)))


class TestScalers:
    def test_standard_scaler_zero_mean_unit_variance(self, rng):
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        result = StandardScaler().fit_transform(X)
        assert np.allclose(result.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(result.std(axis=0), 1.0, atol=1e-9)

    def test_standard_scaler_inverse_roundtrip(self, rng):
        X = rng.normal(size=(50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_standard_scaler_constant_column(self):
        X = np.array([[1.0, 5.0], [1.0, 6.0]])
        result = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(result))

    def test_standard_scaler_without_centering(self, rng):
        X = rng.normal(loc=10.0, size=(100, 2))
        result = StandardScaler(with_mean=False).fit_transform(X)
        assert result.mean() > 1.0

    def test_minmax_scaler_range(self, rng):
        X = rng.normal(size=(100, 3)) * 10
        result = MinMaxScaler().fit_transform(X)
        assert result.min() >= 0.0
        assert result.max() <= 1.0 + 1e-12

    def test_minmax_custom_range(self, rng):
        X = rng.normal(size=(50, 2))
        result = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        assert result.min() >= -1.0 - 1e-12
        assert result.max() <= 1.0 + 1e-12

    def test_minmax_invalid_range_raises(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0)).fit(np.ones((3, 2)))

    def test_minmax_inverse_roundtrip(self, rng):
        X = rng.normal(size=(40, 2))
        scaler = MinMaxScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_robust_scaler_centers_on_median(self):
        X = np.array([[1.0], [2.0], [3.0], [100.0]])
        scaler = RobustScaler().fit(X)
        assert scaler.center_[0] == pytest.approx(2.5)

    def test_robust_scaler_invalid_quantiles(self):
        with pytest.raises(ValueError):
            RobustScaler(quantile_range=(80.0, 20.0)).fit(np.ones((3, 1)))


class TestLabelEncoders:
    def test_label_encoder_roundtrip(self):
        y = np.array(["b", "a", "c", "a"])
        encoder = LabelEncoder().fit(y)
        encoded = encoder.transform(y)
        assert encoded.tolist() == [1, 0, 2, 0]
        assert np.array_equal(encoder.inverse_transform(encoded), y)

    def test_label_encoder_unseen_label_raises(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            encoder.transform(["c"])

    def test_label_encoder_out_of_range_decode_raises(self):
        encoder = LabelEncoder().fit(["a", "b"])
        with pytest.raises(ValueError):
            encoder.inverse_transform([5])

    def test_class_encoder_produce_returns_classes(self):
        y = np.array(["x", "y", "x"])
        encoded, classes = ClassEncoder().produce(y)
        assert encoded.tolist() == [0, 1, 0]
        assert classes.tolist() == ["x", "y"]

    def test_class_decoder_roundtrip(self):
        y = np.array(["x", "y", "x", "z"])
        encoded, classes = ClassEncoder().produce(y)
        decoder = ClassDecoder().fit(classes)
        assert np.array_equal(decoder.produce(encoded), y)

    def test_class_decoder_clips_out_of_range(self):
        decoder = ClassDecoder().fit(np.array(["a", "b"]))
        assert decoder.produce([10]).tolist() == ["b"]

    def test_class_decoder_without_classes_raises(self):
        with pytest.raises(ValueError):
            ClassDecoder().fit(None).produce([0, 1])

    def test_class_decoder_rounds_float_predictions(self):
        decoder = ClassDecoder().fit(np.array([10, 20, 30]))
        assert decoder.produce([0.2, 1.7, 2.1]).tolist() == [10, 30, 30]


class TestFeatureEncoders:
    def test_onehot_shape(self):
        X = np.array([["a"], ["b"], ["a"]], dtype=object)
        result = OneHotEncoder().fit_transform(X)
        assert result.shape == (3, 2)
        assert np.allclose(result.sum(axis=1), 1.0)

    def test_onehot_unknown_category_maps_to_zeros(self):
        encoder = OneHotEncoder().fit(np.array([["a"], ["b"]], dtype=object))
        result = encoder.transform(np.array([["c"]], dtype=object))
        assert np.all(result == 0.0)

    def test_onehot_multi_column(self):
        X = np.array([["a", "x"], ["b", "y"], ["a", "x"]], dtype=object)
        result = OneHotEncoder().fit_transform(X)
        assert result.shape == (3, 4)

    def test_ordinal_encoder_codes(self):
        X = np.array([["low"], ["high"], ["low"]], dtype=object)
        result = OrdinalEncoder().fit_transform(X)
        assert set(np.unique(result)) <= {0.0, 1.0}

    def test_ordinal_encoder_unknown_value(self):
        encoder = OrdinalEncoder(unknown_value=-5).fit(np.array([["a"]], dtype=object))
        assert encoder.transform(np.array([["zzz"]], dtype=object))[0, 0] == -5

    def test_categorical_encoder_mixed_columns(self):
        X = np.array([[1.0, "red"], [2.0, "blue"], [3.0, "red"]], dtype=object)
        result = CategoricalEncoder().fit_transform(X)
        # one numeric column + two one-hot columns
        assert result.shape == (3, 3)

    def test_categorical_encoder_all_numeric_passthrough(self):
        X = np.array([[1.0, 2.0], [3.0, 4.0]])
        result = CategoricalEncoder().fit_transform(X)
        assert np.allclose(result, X)


class TestDecomposition:
    def test_pca_reduces_dimension(self, rng):
        X = rng.normal(size=(60, 10))
        result = PCA(n_components=3).fit_transform(X)
        assert result.shape == (60, 3)

    def test_pca_components_are_orthonormal(self, rng):
        X = rng.normal(size=(50, 6))
        pca = PCA(n_components=4).fit(X)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(4), atol=1e-8)

    def test_pca_explained_variance_ratio_sums_below_one(self, rng):
        X = rng.normal(size=(80, 5))
        pca = PCA(n_components=3).fit(X)
        assert pca.explained_variance_ratio_.sum() <= 1.0 + 1e-9
        assert np.all(np.diff(pca.explained_variance_) <= 1e-9)

    def test_pca_full_rank_reconstruction(self, rng):
        X = rng.normal(size=(30, 4))
        pca = PCA().fit(X)
        reconstructed = pca.inverse_transform(pca.transform(X))
        assert np.allclose(reconstructed, X, atol=1e-8)

    def test_pca_caps_components_at_rank(self, rng):
        X = rng.normal(size=(5, 10))
        pca = PCA(n_components=9).fit(X)
        assert pca.n_components_ == 5

    def test_pca_whitening_gives_unit_variance(self, rng):
        X = rng.normal(size=(200, 4)) @ np.diag([5.0, 2.0, 1.0, 0.5])
        transformed = PCA(n_components=3, whiten=True).fit_transform(X)
        assert np.allclose(transformed.std(axis=0), 1.0, atol=0.1)

    def test_truncated_svd_shape(self, rng):
        X = np.abs(rng.normal(size=(40, 8)))
        result = TruncatedSVD(n_components=2).fit_transform(X)
        assert result.shape == (40, 2)

    def test_invalid_n_components(self):
        with pytest.raises(ValueError):
            PCA(n_components=0).fit(np.ones((4, 3)))
