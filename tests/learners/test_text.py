"""Tests for text cleaning, tokenization and vectorization primitives."""

import numpy as np
import pytest

from repro.learners.text import (
    CountVectorizer,
    SequencePadder,
    StringVectorizer,
    TextCleaner,
    TfidfVectorizer,
    Tokenizer,
    UniqueCounter,
    VocabularyCounter,
    pad_sequences,
)


class TestTextCleaner:
    def test_lowercases_and_strips_punctuation(self):
        cleaned = TextCleaner().produce(["Hello, World!!"])
        assert cleaned[0] == "hello world"

    def test_collapses_whitespace(self):
        cleaned = TextCleaner().produce(["a   b\t\tc"])
        assert cleaned[0] == "a b c"

    def test_preserves_case_when_disabled(self):
        cleaned = TextCleaner(lowercase=False).produce(["Hello"])
        assert cleaned[0] == "Hello"

    def test_keeps_punctuation_when_disabled(self):
        cleaned = TextCleaner(strip_punctuation=False).produce(["a,b"])
        assert "," in cleaned[0]

    def test_rejects_single_string(self):
        with pytest.raises(ValueError):
            TextCleaner().produce("not a list")

    def test_output_length_matches_input(self):
        documents = ["one", "two", "three"]
        assert len(TextCleaner().produce(documents)) == 3


class TestCounters:
    def test_unique_counter_counts_classes(self):
        assert UniqueCounter().produce([0, 1, 1, 2, 2, 2]) == 3

    def test_unique_counter_string_labels(self):
        assert UniqueCounter().produce(["a", "b", "a"]) == 2

    def test_vocabulary_counter_counts_tokens(self):
        count = VocabularyCounter(add=0).produce(["a b c", "a d"])
        assert count == 4

    def test_vocabulary_counter_add_offset(self):
        assert VocabularyCounter(add=1).produce(["x y"]) == 3


class TestTokenizer:
    def test_assigns_indices_above_reserved(self):
        tokenizer = Tokenizer().fit(["cat dog", "dog bird"])
        indices = set(tokenizer.word_index_.values())
        assert min(indices) >= 2

    def test_transform_maps_known_tokens(self):
        tokenizer = Tokenizer().fit(["cat dog"])
        sequences = tokenizer.transform(["cat dog cat"])
        assert len(sequences[0]) == 3
        assert sequences[0][0] == sequences[0][2]

    def test_unknown_tokens_map_to_oov(self):
        tokenizer = Tokenizer().fit(["cat dog"])
        sequences = tokenizer.transform(["elephant"])
        assert sequences[0] == [Tokenizer.OOV_INDEX]

    def test_num_words_limits_vocabulary(self):
        tokenizer = Tokenizer(num_words=2).fit(["a b c d e a b"])
        assert len(tokenizer.word_index_) == 2

    def test_vocabulary_size_accounts_for_reserved(self):
        tokenizer = Tokenizer().fit(["a b c"])
        assert tokenizer.vocabulary_size_ == 5

    def test_fit_transform_shortcut(self):
        sequences = Tokenizer().fit_transform(["a b", "b c"])
        assert len(sequences) == 2


class TestPadSequences:
    def test_pads_to_longest_by_default(self):
        padded = pad_sequences([[1], [1, 2, 3]])
        assert padded.shape == (2, 3)

    def test_pre_padding_puts_zeros_first(self):
        padded = pad_sequences([[1, 2]], maxlen=4, padding="pre")
        assert padded[0].tolist() == [0, 0, 1, 2]

    def test_post_padding_puts_zeros_last(self):
        padded = pad_sequences([[1, 2]], maxlen=4, padding="post")
        assert padded[0].tolist() == [1, 2, 0, 0]

    def test_pre_truncation_keeps_tail(self):
        padded = pad_sequences([[1, 2, 3, 4]], maxlen=2, truncating="pre")
        assert padded[0].tolist() == [3, 4]

    def test_post_truncation_keeps_head(self):
        padded = pad_sequences([[1, 2, 3, 4]], maxlen=2, truncating="post")
        assert padded[0].tolist() == [1, 2]

    def test_custom_padding_value(self):
        padded = pad_sequences([[1]], maxlen=3, value=-1)
        assert padded[0].tolist() == [-1, -1, 1]

    def test_empty_sequence_padded_fully(self):
        padded = pad_sequences([[], [1]], maxlen=2)
        assert padded[0].tolist() == [0, 0]

    def test_invalid_padding_mode(self):
        with pytest.raises(ValueError):
            pad_sequences([[1]], padding="middle")

    def test_no_sequences_raises(self):
        with pytest.raises(ValueError):
            pad_sequences([])

    def test_sequence_padder_primitive_wrapper(self):
        padded = SequencePadder(maxlen=3).produce([[5, 6]])
        assert padded.shape == (1, 3)


class TestVectorizers:
    def test_count_vectorizer_counts_tokens(self):
        matrix = CountVectorizer().fit_transform(["a a b", "b c"])
        assert matrix.shape == (2, 3)
        assert matrix.sum() == pytest.approx(5.0)

    def test_count_vectorizer_max_features(self):
        matrix = CountVectorizer(max_features=2).fit_transform(["a a a b b c"])
        assert matrix.shape[1] == 2

    def test_count_vectorizer_min_df(self):
        vectorizer = CountVectorizer(min_df=2).fit(["a b", "a c", "a d"])
        assert list(vectorizer.vocabulary_) == ["a"]

    def test_count_vectorizer_unknown_tokens_ignored(self):
        vectorizer = CountVectorizer().fit(["a b"])
        matrix = vectorizer.transform(["z z z"])
        assert matrix.sum() == 0.0

    def test_tfidf_rows_are_unit_norm(self):
        matrix = TfidfVectorizer().fit_transform(["a b c", "a a d"])
        norms = np.linalg.norm(matrix, axis=1)
        assert np.allclose(norms[norms > 0], 1.0)

    def test_tfidf_downweights_common_terms(self):
        documents = ["common rare_one", "common rare_two", "common rare_three"]
        vectorizer = TfidfVectorizer().fit(documents)
        idf = dict(zip(sorted(vectorizer.vocabulary_), [None] * len(vectorizer.vocabulary_)))
        common_idx = vectorizer.vocabulary_["common"]
        rare_idx = vectorizer.vocabulary_["rare_one"]
        assert vectorizer.idf_[common_idx] < vectorizer.idf_[rare_idx]
        assert idf is not None

    def test_string_vectorizer_is_tfidf(self):
        assert issubclass(StringVectorizer, TfidfVectorizer)
