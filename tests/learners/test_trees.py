"""Tests for decision trees, forests, extra trees and gradient boosting."""

import numpy as np
import pytest

from repro.learners.metrics import accuracy_score, r2_score
from repro.learners.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    ExtraTreesClassifier,
    ExtraTreesFeatureSelector,
    ExtraTreesRegressor,
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    RandomForestClassifier,
    RandomForestRegressor,
)


class TestDecisionTreeClassifier:
    def test_fits_axis_aligned_boundary_perfectly(self, rng):
        X = rng.uniform(-1, 1, size=(100, 2))
        y = (X[:, 0] > 0.2).astype(int)
        model = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0

    def test_max_depth_limits_tree(self, classification_data):
        X, y = classification_data
        model = DecisionTreeClassifier(max_depth=2, random_state=0).fit(X, y)
        assert model.get_depth() <= 2

    def test_min_samples_leaf_respected(self, classification_data):
        X, y = classification_data
        model = DecisionTreeClassifier(min_samples_leaf=20, random_state=0).fit(X, y)

        def leaves(node):
            if node.is_leaf:
                return [node]
            return leaves(node.left) + leaves(node.right)

        assert all(leaf.n_samples >= 20 for leaf in leaves(model.tree_))

    def test_predict_proba_sums_to_one(self, multiclass_data):
        X, y = multiclass_data
        proba = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_string_labels(self, classification_data):
        X, y = classification_data
        labels = np.where(y == 1, "spam", "ham")
        model = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X, labels)
        assert set(model.predict(X)) <= {"spam", "ham"}

    def test_pure_node_stops_splitting(self):
        X = np.ones((10, 2))
        y = np.zeros(10, dtype=int)
        model = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert model.tree_.is_leaf

    def test_invalid_min_samples_split(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier(min_samples_split=1).fit(np.ones((4, 2)), [0, 1, 0, 1])


class TestDecisionTreeRegressor:
    def test_fits_step_function(self, rng):
        X = rng.uniform(-1, 1, size=(150, 1))
        y = np.where(X[:, 0] > 0, 5.0, -5.0)
        model = DecisionTreeRegressor(random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99

    def test_deeper_tree_fits_better_on_train(self, rng):
        X = rng.uniform(-3, 3, size=(200, 1))
        y = np.sin(X[:, 0]) + 0.1 * rng.normal(size=200)
        shallow = DecisionTreeRegressor(max_depth=2, random_state=0).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=8, random_state=0).fit(X, y)
        assert r2_score(y, deep.predict(X)) > r2_score(y, shallow.predict(X))

    def test_constant_target(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.full(10, 3.0)
        model = DecisionTreeRegressor(random_state=0).fit(X, y)
        assert np.allclose(model.predict(X), 3.0)


class TestRandomForest:
    def test_classifier_beats_chance(self, multiclass_data):
        X, y = multiclass_data
        model = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.8

    def test_regressor_fits_signal(self, regression_data):
        X, y = regression_data
        model = RandomForestRegressor(n_estimators=10, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.8

    def test_number_of_estimators(self, classification_data):
        X, y = classification_data
        model = RandomForestClassifier(n_estimators=7, random_state=0).fit(X, y)
        assert len(model.estimators_) == 7

    def test_reproducible_with_seed(self, classification_data):
        X, y = classification_data
        a = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=5, random_state=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_feature_importances_sum_to_one(self, classification_data):
        X, y = classification_data
        model = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        importances = model.feature_importances()
        assert importances.shape == (X.shape[1],)
        assert importances.sum() == pytest.approx(1.0)

    def test_informative_features_rank_higher(self, classification_data):
        X, y = classification_data
        model = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        importances = model.feature_importances()
        assert importances[:2].mean() > importances[2:].mean()

    def test_predict_proba_shape(self, multiclass_data):
        X, y = multiclass_data
        proba = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y).predict_proba(X)
        assert proba.shape == (len(y), 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0).fit(np.ones((4, 2)), [0, 1, 0, 1])


class TestExtraTrees:
    def test_classifier_learns(self, classification_data):
        X, y = classification_data
        model = ExtraTreesClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.8

    def test_regressor_learns(self, regression_data):
        X, y = regression_data
        model = ExtraTreesRegressor(n_estimators=10, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.7

    def test_selector_keeps_requested_number_of_features(self, classification_data):
        X, y = classification_data
        selector = ExtraTreesFeatureSelector(n_features=3, random_state=0).fit(X, y)
        assert selector.transform(X).shape == (len(y), 3)

    def test_selector_keeps_informative_features(self, classification_data):
        X, y = classification_data
        selector = ExtraTreesFeatureSelector(n_features=2, n_estimators=20, random_state=0)
        selector.fit(X, y)
        assert selector.support_[:2].sum() >= 1

    def test_selector_regression_mode(self, regression_data):
        X, y = regression_data
        selector = ExtraTreesFeatureSelector(problem_type="regression", random_state=0).fit(X, y)
        assert selector.transform(X).shape[1] >= 1

    def test_selector_invalid_problem_type(self, classification_data):
        X, y = classification_data
        with pytest.raises(ValueError):
            ExtraTreesFeatureSelector(problem_type="clustering").fit(X, y)


class TestGradientBoosting:
    def test_binary_classification(self, classification_data):
        X, y = classification_data
        model = GradientBoostingClassifier(n_estimators=20, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_multiclass_classification(self, multiclass_data):
        X, y = multiclass_data
        model = GradientBoostingClassifier(n_estimators=15, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_regression(self, regression_data):
        X, y = regression_data
        model = GradientBoostingRegressor(n_estimators=30, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.85

    def test_more_rounds_reduce_training_error(self, regression_data):
        X, y = regression_data
        few = GradientBoostingRegressor(n_estimators=3, random_state=0).fit(X, y)
        many = GradientBoostingRegressor(n_estimators=40, random_state=0).fit(X, y)
        assert r2_score(y, many.predict(X)) > r2_score(y, few.predict(X))

    def test_predict_proba_binary_shape(self, classification_data):
        X, y = classification_data
        proba = GradientBoostingClassifier(n_estimators=5, random_state=0).fit(X, y).predict_proba(X)
        assert proba.shape == (len(y), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_subsample_fraction(self, classification_data):
        X, y = classification_data
        model = GradientBoostingClassifier(
            n_estimators=10, subsample=0.6, random_state=0
        ).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.8

    def test_string_labels(self, classification_data):
        X, y = classification_data
        labels = np.where(y == 1, "up", "down")
        model = GradientBoostingClassifier(n_estimators=10, random_state=0).fit(X, labels)
        assert set(model.predict(X)) <= {"up", "down"}

    def test_regularization_changes_predictions(self, regression_data):
        X, y = regression_data
        light = GradientBoostingRegressor(n_estimators=10, reg_lambda=0.0, random_state=0).fit(X, y)
        heavy = GradientBoostingRegressor(n_estimators=10, reg_lambda=50.0, random_state=0).fit(X, y)
        assert not np.allclose(light.predict(X), heavy.predict(X))

    def test_invalid_subsample(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier(subsample=0.0).fit(np.ones((4, 2)), [0, 1, 0, 1])

    def test_invalid_learning_rate(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0).fit(np.ones((4, 2)), np.ones(4))

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(np.ones((5, 2)), np.zeros(5))
