"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.learners import metrics


class TestClassificationMetrics:
    def test_accuracy_perfect(self):
        assert metrics.accuracy_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_accuracy_half(self):
        assert metrics.accuracy_score([1, 0, 1, 0], [1, 0, 0, 1]) == 0.5

    def test_accuracy_with_string_labels(self):
        assert metrics.accuracy_score(["a", "b"], ["a", "a"]) == 0.5

    def test_accuracy_length_mismatch(self):
        with pytest.raises(ValueError):
            metrics.accuracy_score([1, 0], [1])

    def test_confusion_matrix_values(self):
        matrix = metrics.confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert matrix.tolist() == [[1, 1], [0, 2]]

    def test_confusion_matrix_with_labels(self):
        matrix = metrics.confusion_matrix([0, 1], [0, 1], labels=[0, 1, 2])
        assert matrix.shape == (3, 3)

    def test_f1_perfect(self):
        assert metrics.f1_score([0, 1, 1], [0, 1, 1]) == pytest.approx(1.0)

    def test_f1_zero_when_all_wrong(self):
        assert metrics.f1_score([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(0.0)

    def test_f1_macro_vs_weighted_differ_on_imbalance(self):
        y_true = [0] * 9 + [1]
        y_pred = [0] * 10
        macro = metrics.f1_score(y_true, y_pred, average="macro")
        weighted = metrics.f1_score(y_true, y_pred, average="weighted")
        assert weighted > macro

    def test_f1_micro_equals_accuracy_for_single_label(self):
        y_true = [0, 1, 2, 1, 0]
        y_pred = [0, 2, 2, 1, 1]
        micro = metrics.f1_score(y_true, y_pred, average="micro")
        assert micro == pytest.approx(metrics.accuracy_score(y_true, y_pred))

    def test_f1_unknown_average_raises(self):
        with pytest.raises(ValueError):
            metrics.f1_score([0, 1], [0, 1], average="bogus")

    def test_precision_recall_bounds(self):
        y_true = [0, 1, 1, 0, 1]
        y_pred = [0, 1, 0, 0, 1]
        assert 0.0 <= metrics.precision_score(y_true, y_pred) <= 1.0
        assert 0.0 <= metrics.recall_score(y_true, y_pred) <= 1.0

    def test_log_loss_confident_correct_is_small(self):
        proba = np.array([[0.99, 0.01], [0.01, 0.99]])
        assert metrics.log_loss([0, 1], proba) < 0.05

    def test_log_loss_confident_wrong_is_large(self):
        proba = np.array([[0.01, 0.99], [0.99, 0.01]])
        assert metrics.log_loss([0, 1], proba) > 2.0

    def test_log_loss_binary_vector_input(self):
        value = metrics.log_loss([0, 1], [0.1, 0.9])
        assert value == pytest.approx(-np.log(0.9), rel=1e-6)

    def test_log_loss_shape_mismatch(self):
        with pytest.raises(ValueError):
            metrics.log_loss([0, 1, 2], np.ones((3, 2)) / 2)


class TestRocAuc:
    def test_perfect_separation(self):
        assert metrics.roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_random_is_half(self):
        assert metrics.roc_auc_score([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_inverted_is_zero(self):
        assert metrics.roc_auc_score([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_requires_two_classes(self):
        with pytest.raises(ValueError):
            metrics.roc_auc_score([1, 1, 1], [0.1, 0.2, 0.3])


class TestRegressionMetrics:
    def test_mse_zero_on_perfect(self):
        assert metrics.mean_squared_error([1.0, 2.0], [1.0, 2.0]) == 0.0

    def test_mse_known_value(self):
        assert metrics.mean_squared_error([0.0, 0.0], [1.0, 3.0]) == pytest.approx(5.0)

    def test_rmse_is_sqrt_of_mse(self):
        y_true = [0.0, 1.0, 2.0]
        y_pred = [0.5, 1.5, 2.5]
        assert metrics.root_mean_squared_error(y_true, y_pred) == pytest.approx(
            np.sqrt(metrics.mean_squared_error(y_true, y_pred))
        )

    def test_mae_known_value(self):
        assert metrics.mean_absolute_error([0.0, 0.0], [1.0, -3.0]) == pytest.approx(2.0)

    def test_r2_perfect(self):
        assert metrics.r2_score([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 1.0

    def test_r2_mean_prediction_is_zero(self):
        y = [1.0, 2.0, 3.0]
        assert metrics.r2_score(y, [2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_r2_can_be_negative(self):
        assert metrics.r2_score([1.0, 2.0, 3.0], [3.0, 3.0, -1.0]) < 0.0

    def test_r2_constant_target(self):
        assert metrics.r2_score([1.0, 1.0], [1.0, 1.0]) == 1.0
        assert metrics.r2_score([1.0, 1.0], [2.0, 0.0]) == 0.0

    def test_mape_guards_zero_targets(self):
        value = metrics.mean_absolute_percentage_error([0.0, 1.0], [0.1, 1.1])
        assert np.isfinite(value)


class TestAdjustedRand:
    def test_identical_partitions(self):
        assert metrics.adjusted_rand_score([0, 0, 1, 1], [1, 1, 0, 0]) == pytest.approx(1.0)

    def test_independent_partitions_near_zero(self):
        rng = np.random.RandomState(0)
        a = rng.randint(0, 3, size=300)
        b = rng.randint(0, 3, size=300)
        assert abs(metrics.adjusted_rand_score(a, b)) < 0.1

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            metrics.adjusted_rand_score([0, 1], [0, 1, 2])


class TestAnomalyF1:
    def test_exact_overlap(self):
        assert metrics.anomaly_f1_score([(10, 20)], [(10, 20)]) == 1.0

    def test_partial_overlap_counts(self):
        assert metrics.anomaly_f1_score([(10, 20)], [(18, 30)]) == 1.0

    def test_miss_and_false_alarm(self):
        score = metrics.anomaly_f1_score([(10, 20)], [(50, 60)])
        assert score == 0.0

    def test_empty_both_is_perfect(self):
        assert metrics.anomaly_f1_score([], []) == 1.0

    def test_empty_detections_is_zero(self):
        assert metrics.anomaly_f1_score([(1, 2)], []) == 0.0

    def test_extra_false_alarms_lower_precision(self):
        perfect = metrics.anomaly_f1_score([(10, 20)], [(10, 20)])
        noisy = metrics.anomaly_f1_score([(10, 20)], [(10, 20), (100, 110), (200, 210)])
        assert noisy < perfect


class TestMetricRegistry:
    def test_get_metric_returns_callable_and_direction(self):
        fn, higher = metrics.get_metric("accuracy")
        assert callable(fn)
        assert higher is True

    def test_loss_metrics_marked_lower_is_better(self):
        _, higher = metrics.get_metric("mse")
        assert higher is False

    def test_unknown_metric_raises(self):
        with pytest.raises(ValueError, match="Unknown metric"):
            metrics.get_metric("nope")

    @pytest.mark.parametrize("name", sorted(metrics.METRICS))
    def test_every_registered_metric_is_callable(self, name):
        fn, higher = metrics.get_metric(name)
        assert callable(fn)
        assert isinstance(higher, bool)
