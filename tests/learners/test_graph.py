"""Tests for graph featurization, link prediction and community detection."""

import networkx as nx
import numpy as np
import pytest

from repro.learners.graph import (
    CommunityBestPartition,
    graph_feature_extraction,
    link_prediction_feature_extraction,
    louvain_communities,
)
from repro.learners.graph.community import modularity
from repro.learners.metrics import adjusted_rand_score


@pytest.fixture
def two_cliques():
    """Two 6-cliques joined by a single bridge edge."""
    graph = nx.Graph()
    graph.add_edges_from((i, j) for i in range(6) for j in range(i + 1, 6))
    graph.add_edges_from((i, j) for i in range(6, 12) for j in range(i + 1, 12))
    graph.add_edge(0, 6)
    return graph


class TestGraphFeatureExtraction:
    def test_feature_shape(self, two_cliques):
        features = graph_feature_extraction(two_cliques)
        assert features.shape == (12, 5)

    def test_subset_of_nodes(self, two_cliques):
        features = graph_feature_extraction(two_cliques, nodes=[0, 1, 2])
        assert features.shape == (3, 5)

    def test_degree_column_correct(self, two_cliques):
        features = graph_feature_extraction(two_cliques, nodes=[1])
        assert features[0, 0] == 5.0  # inside a 6-clique

    def test_unknown_node_gets_zero_row(self, two_cliques):
        features = graph_feature_extraction(two_cliques, nodes=[999])
        assert np.allclose(features[0], 0.0)

    def test_clustering_is_one_inside_clique(self, two_cliques):
        features = graph_feature_extraction(two_cliques, nodes=[3])
        assert features[0, 1] == pytest.approx(1.0)

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            graph_feature_extraction(nx.Graph())


class TestLinkPredictionFeatures:
    def test_feature_shape(self, two_cliques):
        pairs = [(0, 1), (0, 7)]
        features = link_prediction_feature_extraction(two_cliques, pairs)
        assert features.shape == (2, 5)

    def test_within_clique_pair_has_more_common_neighbors(self, two_cliques):
        features = link_prediction_feature_extraction(two_cliques, [(1, 2), (1, 7)])
        assert features[0, 0] > features[1, 0]

    def test_jaccard_bounded(self, two_cliques):
        pairs = [(0, 1), (2, 9), (5, 11)]
        features = link_prediction_feature_extraction(two_cliques, pairs)
        assert np.all(features[:, 1] >= 0.0)
        assert np.all(features[:, 1] <= 1.0)

    def test_same_component_flag(self, two_cliques):
        isolated = nx.Graph(two_cliques)
        isolated.add_node(100)
        features = link_prediction_feature_extraction(isolated, [(0, 1), (0, 100)])
        assert features[0, 4] == 1.0
        assert features[1, 4] == 0.0

    def test_unknown_nodes_get_zero_row(self, two_cliques):
        features = link_prediction_feature_extraction(two_cliques, [(500, 501)])
        assert np.allclose(features[0], 0.0)

    def test_empty_graph_raises(self):
        with pytest.raises(ValueError):
            link_prediction_feature_extraction(nx.Graph(), [(0, 1)])


class TestCommunityDetection:
    def test_separates_two_cliques(self, two_cliques):
        partition = louvain_communities(two_cliques, random_state=0)
        first = {partition[node] for node in range(6)}
        second = {partition[node] for node in range(6, 12)}
        assert len(first) == 1
        assert len(second) == 1
        assert first != second

    def test_partition_covers_all_nodes(self, two_cliques):
        partition = louvain_communities(two_cliques, random_state=0)
        assert set(partition) == set(two_cliques.nodes())

    def test_community_labels_are_consecutive(self, two_cliques):
        partition = louvain_communities(two_cliques, random_state=0)
        labels = set(partition.values())
        assert labels == set(range(len(labels)))

    def test_empty_graph_gives_empty_partition(self):
        assert louvain_communities(nx.Graph()) == {}

    def test_modularity_positive_for_good_partition(self, two_cliques):
        partition = louvain_communities(two_cliques, random_state=0)
        assert modularity(two_cliques, partition) > 0.3

    def test_recovers_planted_blocks_on_sbm(self):
        rng = np.random.RandomState(0)
        sizes = [20, 20, 20]
        probabilities = [[0.4, 0.02, 0.02], [0.02, 0.4, 0.02], [0.02, 0.02, 0.4]]
        graph = nx.stochastic_block_model(sizes, probabilities, seed=1)
        truth = np.repeat([0, 1, 2], 20)
        partition = louvain_communities(nx.Graph(graph), random_state=0)
        predicted = np.asarray([partition[node] for node in range(60)])
        assert adjusted_rand_score(truth, predicted) > 0.6
        assert rng is not None

    def test_primitive_wrapper_returns_aligned_labels(self, two_cliques):
        labels = CommunityBestPartition(random_state=0).produce(two_cliques, nodes=list(range(12)))
        assert labels.shape == (12,)
        assert labels.dtype.kind == "i"

    def test_primitive_wrapper_unknown_node_label(self, two_cliques):
        labels = CommunityBestPartition(random_state=0).produce(two_cliques, nodes=[0, 999])
        assert labels[1] == -1
