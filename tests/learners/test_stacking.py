"""Tests for voting and stacking ensembles."""

import numpy as np
import pytest

from repro.learners.metrics import accuracy_score, r2_score
from repro.learners.naive_bayes import GaussianNB
from repro.learners.linear import Ridge
from repro.learners.stacking import StackingClassifier, StackingRegressor, VotingClassifier
from repro.learners.tree import DecisionTreeClassifier, DecisionTreeRegressor


class TestVotingClassifier:
    def test_default_members_learn(self, classification_data):
        X, y = classification_data
        model = VotingClassifier(random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_soft_voting(self, multiclass_data):
        X, y = multiclass_data
        model = VotingClassifier(voting="soft", random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (len(y), 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_custom_members(self, classification_data):
        X, y = classification_data
        model = VotingClassifier(
            estimators=[GaussianNB(), DecisionTreeClassifier(max_depth=3, random_state=0)],
            random_state=0,
        ).fit(X, y)
        assert len(model.estimators_) == 2
        assert accuracy_score(y, model.predict(X)) > 0.8

    def test_invalid_voting_mode(self, classification_data):
        X, y = classification_data
        with pytest.raises(ValueError):
            VotingClassifier(voting="ranked").fit(X, y)

    def test_members_are_not_mutated(self, classification_data):
        X, y = classification_data
        base = GaussianNB()
        VotingClassifier(estimators=[base], random_state=0).fit(X, y)
        assert not hasattr(base, "theta_")


class TestStackingClassifier:
    def test_learns_and_beats_chance(self, multiclass_data):
        X, y = multiclass_data
        model = StackingClassifier(n_splits=3, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_custom_base_estimators(self, classification_data):
        X, y = classification_data
        model = StackingClassifier(
            estimators=[GaussianNB(), DecisionTreeClassifier(max_depth=3, random_state=0)],
            n_splits=2, random_state=0,
        ).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.8

    def test_invalid_splits(self, classification_data):
        X, y = classification_data
        with pytest.raises(ValueError):
            StackingClassifier(n_splits=1).fit(X, y)

    def test_string_labels(self, classification_data):
        X, y = classification_data
        labels = np.where(y == 1, "a", "b")
        model = StackingClassifier(n_splits=2, random_state=0).fit(X, labels)
        assert set(model.predict(X)) <= {"a", "b"}


class TestStackingRegressor:
    def test_learns_linear_signal(self, regression_data):
        X, y = regression_data
        model = StackingRegressor(n_splits=3, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.8

    def test_custom_members(self, regression_data):
        X, y = regression_data
        model = StackingRegressor(
            estimators=[Ridge(alpha=0.1), DecisionTreeRegressor(max_depth=4, random_state=0)],
            n_splits=2, random_state=0,
        ).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.8

    def test_invalid_splits(self, regression_data):
        X, y = regression_data
        with pytest.raises(ValueError):
            StackingRegressor(n_splits=0).fit(X, y)


class TestCatalogIntegration:
    def test_stacking_primitives_registered(self):
        from repro.core.registry import get_default_registry

        registry = get_default_registry()
        assert "sklearn.ensemble.VotingClassifier" in registry
        assert "sklearn.ensemble.StackingClassifier" in registry
        assert "sklearn.ensemble.StackingRegressor" in registry

    def test_voting_classifier_in_pipeline(self, classification_data):
        from repro import MLPipeline

        X, y = classification_data
        pipeline = MLPipeline([
            "sklearn.preprocessing.StandardScaler",
            "sklearn.ensemble.VotingClassifier",
        ])
        pipeline.fit(X=X, y=y)
        assert accuracy_score(y, pipeline.predict(X=X)) > 0.85
