"""Tests for the extension learners: forecasters, outlier detectors, embeddings, edges."""

import numpy as np
import pytest

from repro.learners.image import SobelEdgeFeaturizer
from repro.learners.metrics import accuracy_score, r2_score
from repro.learners.outliers import IsolationTreeDetector, ZScoreBoundaryDetector
from repro.learners.text import WordEmbeddingVectorizer
from repro.learners.timeseries import (
    ARRegressor,
    ExponentialSmoothingRegressor,
    rolling_window_sequences,
)


@pytest.fixture
def sine_windows(rng):
    t = np.arange(300, dtype=float)
    series = np.sin(t / 12.0) + 0.05 * rng.normal(size=300)
    X, y, _, _ = rolling_window_sequences(series, window_size=20)
    return X, y


class TestARRegressor:
    def test_forecasts_sine_wave(self, sine_windows):
        X, y = sine_windows
        model = ARRegressor(alpha=0.1).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9

    def test_accepts_3d_windows(self, sine_windows):
        X, y = sine_windows
        assert X.ndim == 3
        model = ARRegressor().fit(X, y)
        assert model.predict(X).shape == y.shape

    def test_accepts_2d_lag_matrix(self, rng):
        X = rng.normal(size=(50, 5))
        y = X[:, -1] * 0.9
        model = ARRegressor(alpha=0.01).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.9

    def test_regularization_shrinks_coefficients(self, sine_windows):
        X, y = sine_windows
        light = ARRegressor(alpha=1e-6).fit(X, y)
        heavy = ARRegressor(alpha=1e4).fit(X, y)
        assert np.abs(heavy.coef_).sum() < np.abs(light.coef_).sum()

    def test_negative_alpha_rejected(self, sine_windows):
        X, y = sine_windows
        with pytest.raises(ValueError):
            ARRegressor(alpha=-1.0).fit(X, y)


class TestExponentialSmoothing:
    def test_constant_series_predicted_exactly(self):
        X = np.full((10, 8), 3.0)
        model = ExponentialSmoothingRegressor(trend=False).fit(X)
        assert np.allclose(model.predict(X), 3.0)

    def test_trend_extrapolates_upward(self):
        X = np.tile(np.arange(10, dtype=float), (5, 1))
        with_trend = ExponentialSmoothingRegressor(trend=True).fit(X).predict(X)
        without_trend = ExponentialSmoothingRegressor(trend=False).fit(X).predict(X)
        assert np.all(with_trend > without_trend)

    def test_tracks_sine_reasonably(self, sine_windows):
        X, y = sine_windows
        model = ExponentialSmoothingRegressor(smoothing=0.7).fit(X)
        assert r2_score(y, model.predict(X)) > 0.5

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            ExponentialSmoothingRegressor(smoothing=0.0).fit(np.ones((5, 4)))


class TestZScoreBoundaryDetector:
    def test_flags_obvious_outlier(self, rng):
        X = rng.normal(size=(100, 3))
        X[0] = [50.0, 50.0, 50.0]
        detector = ZScoreBoundaryDetector(threshold=3.5).fit(X)
        predictions = detector.predict(X)
        assert predictions[0] == 1
        assert predictions[1:].mean() < 0.1

    def test_scores_higher_for_outliers(self, rng):
        X = rng.normal(size=(80, 2))
        detector = ZScoreBoundaryDetector().fit(X)
        inlier_score = detector.score_samples(np.array([[0.0, 0.0]]))[0]
        outlier_score = detector.score_samples(np.array([[20.0, -20.0]]))[0]
        assert outlier_score > inlier_score

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ZScoreBoundaryDetector(threshold=0.0).fit(np.ones((5, 2)))


class TestIsolationTreeDetector:
    def test_flags_cluster_outliers(self, rng):
        inliers = rng.normal(size=(150, 2))
        outliers = rng.uniform(6, 10, size=(10, 2))
        X = np.vstack([inliers, outliers])
        detector = IsolationTreeDetector(n_estimators=40, contamination=0.08,
                                         random_state=0).fit(X)
        scores = detector.score_samples(X)
        assert scores[150:].mean() > scores[:150].mean()

    def test_contamination_controls_flag_rate(self, rng):
        X = rng.normal(size=(200, 3))
        detector = IsolationTreeDetector(contamination=0.1, random_state=0).fit(X)
        flagged = detector.predict(X).mean()
        assert 0.02 <= flagged <= 0.2

    def test_invalid_contamination(self):
        with pytest.raises(ValueError):
            IsolationTreeDetector(contamination=0.9).fit(np.ones((10, 2)))

    def test_scores_bounded(self, rng):
        X = rng.normal(size=(60, 2))
        detector = IsolationTreeDetector(random_state=0).fit(X)
        scores = detector.score_samples(X)
        assert np.all(scores > 0.0)
        assert np.all(scores < 1.0)


class TestWordEmbeddingVectorizer:
    def test_output_shape(self):
        documents = ["the cat sat", "the dog ran", "a cat and a dog"]
        vectorizer = WordEmbeddingVectorizer(embedding_dim=8).fit(documents)
        embeddings = vectorizer.transform(documents)
        assert embeddings.shape == (3, min(8, len(vectorizer.vocabulary_)))

    def test_similar_documents_closer_than_dissimilar(self):
        corpus = (["engine wheel road car driver"] * 10
                  + ["galaxy star orbit planet telescope"] * 10)
        vectorizer = WordEmbeddingVectorizer(embedding_dim=6, window=2).fit(corpus)
        car_a = vectorizer.transform(["engine wheel car"])[0]
        car_b = vectorizer.transform(["road driver car"])[0]
        space = vectorizer.transform(["galaxy orbit telescope"])[0]
        assert np.linalg.norm(car_a - car_b) < np.linalg.norm(car_a - space)

    def test_unknown_tokens_embed_to_zero(self):
        vectorizer = WordEmbeddingVectorizer(embedding_dim=4).fit(["alpha beta gamma"])
        embedding = vectorizer.transform(["zzz qqq"])[0]
        assert np.allclose(embedding, 0.0)

    def test_classifier_on_embeddings_learns(self, rng):
        from repro.learners.tree import GradientBoostingClassifier

        topics = {0: "engine wheel road car", 1: "galaxy star orbit planet"}
        y = rng.randint(0, 2, size=80)
        documents = [topics[label] for label in y]
        vectorizer = WordEmbeddingVectorizer(embedding_dim=6).fit(documents)
        X = vectorizer.transform(documents)
        model = GradientBoostingClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            WordEmbeddingVectorizer().fit(["", ""])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            WordEmbeddingVectorizer(embedding_dim=0).fit(["a b"])
        with pytest.raises(ValueError):
            WordEmbeddingVectorizer(window=0).fit(["a b"])


class TestSobelEdgeFeaturizer:
    def test_output_shape(self, rng):
        images = rng.normal(size=(5, 16, 16))
        features = SobelEdgeFeaturizer(grid=4).fit_transform(images)
        assert features.shape == (5, 4 * 4 * 2)

    def test_edge_rich_image_scores_higher(self):
        flat = np.zeros((16, 16))
        edges = np.zeros((16, 16))
        edges[:, 8:] = 1.0
        features = SobelEdgeFeaturizer(grid=2).fit_transform(np.stack([flat, edges]))
        assert features[1].sum() > features[0].sum()

    def test_color_images_averaged(self, rng):
        images = rng.normal(size=(3, 12, 12, 3))
        features = SobelEdgeFeaturizer(grid=3).fit_transform(images)
        assert features.shape[0] == 3

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            SobelEdgeFeaturizer(grid=0).fit(np.ones((1, 8, 8)))
