"""Tests for splitting and cross-validation utilities."""

import numpy as np
import pytest

from repro.learners.metrics import accuracy_score
from repro.learners.model_selection import (
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)
from repro.learners.tree import DecisionTreeClassifier


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(40).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=0.25, random_state=0)
        assert len(X_train) == 30
        assert len(X_test) == 10

    def test_multiple_arrays_stay_aligned(self):
        X = np.arange(20).reshape(-1, 1)
        y = np.arange(20)
        X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.3, random_state=1)
        assert np.array_equal(X_train.ravel(), y_train)
        assert np.array_equal(X_test.ravel(), y_test)

    def test_no_overlap_and_full_coverage(self):
        X = np.arange(30)
        X_train, X_test = train_test_split(X, test_size=0.2, random_state=2)
        assert set(X_train) | set(X_test) == set(range(30))
        assert set(X_train) & set(X_test) == set()

    def test_reproducible_with_seed(self):
        X = np.arange(30)
        a_train, _ = train_test_split(X, random_state=5)
        b_train, _ = train_test_split(X, random_state=5)
        assert np.array_equal(a_train, b_train)

    def test_absolute_test_size(self):
        X = np.arange(30)
        _, X_test = train_test_split(X, test_size=7, random_state=0)
        assert len(X_test) == 7

    def test_stratified_preserves_proportions(self):
        y = np.array([0] * 40 + [1] * 10)
        X = np.arange(50).reshape(-1, 1)
        _, _, y_train, y_test = train_test_split(X, y, test_size=0.2, random_state=0, stratify=y)
        assert set(np.unique(y_test)) == {0, 1}

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), test_size=1.5)

    def test_mismatched_arrays_raise(self):
        with pytest.raises(ValueError):
            train_test_split(np.arange(10), np.arange(5))


class TestKFold:
    def test_number_of_splits(self):
        splits = list(KFold(n_splits=5, random_state=0).split(np.arange(23)))
        assert len(splits) == 5

    def test_folds_partition_the_data(self):
        splits = list(KFold(n_splits=4, random_state=0).split(np.arange(21)))
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test.tolist()) == list(range(21))

    def test_train_and_test_disjoint(self):
        for train, test in KFold(n_splits=3, random_state=0).split(np.arange(12)):
            assert set(train) & set(test) == set()

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.arange(3)))

    def test_invalid_n_splits(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestStratifiedKFold:
    def test_each_fold_contains_both_classes(self):
        y = np.array([0] * 20 + [1] * 10)
        for _, test in StratifiedKFold(n_splits=5, random_state=0).split(np.zeros(30), y):
            assert set(y[test]) == {0, 1}

    def test_folds_partition_the_data(self):
        y = np.array([0, 1] * 15)
        splits = list(StratifiedKFold(n_splits=3, random_state=0).split(np.zeros(30), y))
        all_test = np.concatenate([test for _, test in splits])
        assert sorted(all_test.tolist()) == list(range(30))


class TestCrossValScore:
    def test_returns_one_score_per_fold(self, classification_data):
        X, y = classification_data
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=3, random_state=0), X, y,
            scoring=accuracy_score, cv=4, random_state=0,
        )
        assert len(scores) == 4
        assert np.all((scores >= 0.0) & (scores <= 1.0))

    def test_learnable_data_scores_above_chance(self, classification_data):
        X, y = classification_data
        scores = cross_val_score(
            DecisionTreeClassifier(max_depth=4, random_state=0), X, y,
            scoring=accuracy_score, cv=3, random_state=0,
        )
        assert scores.mean() > 0.7
