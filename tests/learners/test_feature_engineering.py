"""Tests for the additional feature engineering transformers."""

import numpy as np
import pytest

from repro.learners.preprocessing import (
    Binarizer,
    KBinsDiscretizer,
    Normalizer,
    PolynomialFeatures,
    SelectKBest,
    VarianceThreshold,
)
from repro.learners.preprocessing.feature_engineering import (
    correlation_score_regression,
    f_score_classification,
)


class TestNormalizer:
    def test_l2_rows_have_unit_norm(self, rng):
        X = rng.normal(size=(30, 4))
        result = Normalizer(norm="l2").fit_transform(X)
        assert np.allclose(np.linalg.norm(result, axis=1), 1.0)

    def test_l1_rows_sum_to_one_in_absolute_value(self, rng):
        X = rng.normal(size=(20, 3))
        result = Normalizer(norm="l1").fit_transform(X)
        assert np.allclose(np.abs(result).sum(axis=1), 1.0)

    def test_max_norm(self, rng):
        X = rng.normal(size=(20, 3))
        result = Normalizer(norm="max").fit_transform(X)
        assert np.allclose(np.abs(result).max(axis=1), 1.0)

    def test_zero_row_left_as_zeros(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = Normalizer().fit_transform(X)
        assert np.allclose(result[0], 0.0)

    def test_unknown_norm_rejected(self):
        with pytest.raises(ValueError):
            Normalizer(norm="l3").fit(np.ones((2, 2)))


class TestBinarizer:
    def test_thresholding(self):
        X = np.array([[-1.0, 0.5], [2.0, -0.1]])
        result = Binarizer(threshold=0.0).fit_transform(X)
        assert result.tolist() == [[0.0, 1.0], [1.0, 0.0]]

    def test_custom_threshold(self):
        X = np.array([[1.0, 3.0]])
        assert Binarizer(threshold=2.0).fit_transform(X).tolist() == [[0.0, 1.0]]


class TestPolynomialFeatures:
    def test_output_dimension_full(self):
        X = np.ones((5, 3))
        result = PolynomialFeatures().fit_transform(X)
        assert result.shape == (5, 3 + 6)  # original + upper triangle incl. squares

    def test_interaction_only_excludes_squares(self):
        X = np.array([[2.0, 3.0]])
        result = PolynomialFeatures(interaction_only=True).fit_transform(X)
        assert result.shape == (1, 3)
        assert 6.0 in result[0]
        assert 4.0 not in result[0]

    def test_include_bias_adds_ones_column(self):
        X = np.zeros((4, 2))
        result = PolynomialFeatures(include_bias=True).fit_transform(X)
        assert np.allclose(result[:, 0], 1.0)

    def test_values_are_products(self):
        X = np.array([[2.0, 5.0]])
        result = PolynomialFeatures().fit_transform(X)
        assert set(result[0]) == {2.0, 5.0, 4.0, 10.0, 25.0}


class TestKBinsDiscretizer:
    def test_bins_within_range(self, rng):
        X = rng.normal(size=(100, 2))
        result = KBinsDiscretizer(n_bins=4).fit_transform(X)
        assert result.min() >= 0
        assert result.max() <= 3

    def test_monotone_in_input(self):
        X = np.linspace(0, 10, 50).reshape(-1, 1)
        result = KBinsDiscretizer(n_bins=5).fit_transform(X).ravel()
        assert np.all(np.diff(result) >= 0)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            KBinsDiscretizer(n_bins=1).fit(np.ones((5, 1)))


class TestVarianceThreshold:
    def test_removes_constant_columns(self, rng):
        X = np.hstack([rng.normal(size=(30, 2)), np.ones((30, 1))])
        result = VarianceThreshold().fit_transform(X)
        assert result.shape == (30, 2)

    def test_keeps_at_least_one_feature(self):
        X = np.ones((10, 3))
        result = VarianceThreshold().fit_transform(X)
        assert result.shape[1] == 1


class TestSelectKBest:
    def test_keeps_informative_classification_features(self, classification_data):
        X, y = classification_data
        selector = SelectKBest(k=2, problem_type="classification").fit(X, y)
        assert selector.support_[:2].sum() == 2

    def test_keeps_informative_regression_features(self, regression_data):
        X, y = regression_data
        selector = SelectKBest(k=2, problem_type="regression").fit(X, y)
        assert selector.support_[:2].sum() == 2

    def test_k_larger_than_features_keeps_all(self, classification_data):
        X, y = classification_data
        selector = SelectKBest(k=100).fit(X, y)
        assert selector.transform(X).shape[1] == X.shape[1]

    def test_invalid_k(self, classification_data):
        X, y = classification_data
        with pytest.raises(ValueError):
            SelectKBest(k=0).fit(X, y)

    def test_invalid_problem_type(self, classification_data):
        X, y = classification_data
        with pytest.raises(ValueError):
            SelectKBest(problem_type="ranking").fit(X, y)

    def test_f_score_higher_for_separating_feature(self, classification_data):
        X, y = classification_data
        scores = f_score_classification(X, y)
        assert scores[0] > scores[-1]

    def test_correlation_score_bounded(self, regression_data):
        X, y = regression_data
        scores = correlation_score_regression(X, y)
        assert np.all(scores >= 0.0)
        assert np.all(scores <= 1.0 + 1e-9)
