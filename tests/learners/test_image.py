"""Tests for image preprocessing and featurization primitives."""

import numpy as np
import pytest

from repro.learners.image import (
    GaussianBlur,
    HOGFeaturizer,
    PretrainedCNNFeaturizer,
    preprocess_input,
)
from repro.learners.image.features import flatten_images


class TestPreprocessInput:
    def test_scales_uint8_range_to_minus_one_one(self):
        images = np.array([[[0.0, 255.0], [127.5, 255.0]]])
        scaled = preprocess_input(images)
        assert scaled.min() == pytest.approx(-1.0)
        assert scaled.max() == pytest.approx(1.0)

    def test_leaves_small_range_untouched(self):
        images = np.full((1, 2, 2), 0.5)
        assert np.allclose(preprocess_input(images), 0.5)


class TestFlattenImages:
    def test_flattens_3d_stack(self):
        assert flatten_images(np.zeros((4, 8, 8))).shape == (4, 64)

    def test_flattens_4d_stack(self):
        assert flatten_images(np.zeros((4, 8, 8, 3))).shape == (4, 192)

    def test_2d_passthrough(self):
        X = np.ones((5, 10))
        assert flatten_images(X).shape == (5, 10)


class TestGaussianBlur:
    def test_preserves_shape(self, rng):
        images = rng.normal(size=(3, 12, 12))
        blurred = GaussianBlur(kernel_size=3).produce(images)
        assert blurred.shape == images.shape

    def test_reduces_noise_variance(self, rng):
        images = rng.normal(size=(1, 32, 32))
        blurred = GaussianBlur(kernel_size=5, sigma=2.0).produce(images)
        assert blurred.var() < images.var()

    def test_single_image_promoted_to_stack(self, rng):
        image = rng.normal(size=(10, 10))
        blurred = GaussianBlur().produce(image)
        assert blurred.shape == (1, 10, 10)

    def test_even_kernel_size_rejected(self, rng):
        with pytest.raises(ValueError):
            GaussianBlur(kernel_size=4).produce(rng.normal(size=(1, 8, 8)))


class TestHOGFeaturizer:
    def test_output_shape_consistent(self, rng):
        images = rng.normal(size=(6, 16, 16))
        features = HOGFeaturizer(cell_size=8, n_bins=9).fit_transform(images)
        assert features.shape == (6, 2 * 2 * 9)

    def test_rows_are_normalized(self, rng):
        images = rng.normal(size=(3, 16, 16))
        features = HOGFeaturizer().fit_transform(images)
        norms = np.linalg.norm(features, axis=1)
        assert np.all(norms <= 1.0 + 1e-9)

    def test_distinguishes_stripe_orientations(self):
        horizontal = np.zeros((16, 16))
        horizontal[::2, :] = 1.0
        vertical = np.zeros((16, 16))
        vertical[:, ::2] = 1.0
        features = HOGFeaturizer().fit_transform(np.stack([horizontal, vertical]))
        assert not np.allclose(features[0], features[1])

    def test_color_images_averaged(self, rng):
        images = rng.normal(size=(2, 16, 16, 3))
        features = HOGFeaturizer().fit_transform(images)
        assert features.shape[0] == 2


class TestPretrainedCNNFeaturizer:
    def test_deterministic_given_seed(self, rng):
        images = rng.normal(size=(4, 16, 16))
        a = PretrainedCNNFeaturizer(random_state=0).fit_transform(images)
        b = PretrainedCNNFeaturizer(random_state=0).fit_transform(images)
        assert np.allclose(a, b)

    def test_feature_dimension_depends_on_filters(self, rng):
        images = rng.normal(size=(2, 16, 16))
        features = PretrainedCNNFeaturizer(n_filters=6, random_state=0).fit_transform(images)
        assert features.shape == (2, 12)

    def test_transform_without_fit_self_initializes(self, rng):
        images = rng.normal(size=(2, 16, 16))
        features = PretrainedCNNFeaturizer(random_state=1).transform(images)
        assert np.all(np.isfinite(features))

    def test_separates_bright_and_dark_images(self):
        bright = np.ones((1, 16, 16))
        dark = np.zeros((1, 16, 16))
        featurizer = PretrainedCNNFeaturizer(random_state=0).fit(bright)
        difference = featurizer.transform(bright) - featurizer.transform(dark)
        assert np.abs(difference).sum() > 0.0
