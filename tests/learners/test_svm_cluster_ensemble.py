"""Tests for linear SVMs, KMeans clustering and extra ensembles."""

import numpy as np
import pytest

from repro.learners.cluster import KMeans
from repro.learners.ensemble import AdaBoostClassifier, BaggingClassifier, BaggingRegressor
from repro.learners.metrics import accuracy_score, adjusted_rand_score, r2_score
from repro.learners.svm import LinearSVC, LinearSVR
from repro.learners.naive_bayes import GaussianNB


class TestLinearSVC:
    def test_separable_binary_data(self, classification_data):
        X, y = classification_data
        model = LinearSVC(max_iter=300, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_multiclass_one_vs_rest(self, multiclass_data):
        X, y = multiclass_data
        model = LinearSVC(max_iter=300, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.8

    def test_decision_function_shape(self, multiclass_data):
        X, y = multiclass_data
        model = LinearSVC(max_iter=50, random_state=0).fit(X, y)
        assert model.decision_function(X).shape == (len(y), 3)

    def test_string_labels(self, classification_data):
        X, y = classification_data
        labels = np.where(y == 1, "in", "out")
        model = LinearSVC(max_iter=100, random_state=0).fit(X, labels)
        assert set(model.predict(X)) <= {"in", "out"}

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            LinearSVC(C=0.0).fit(np.ones((4, 2)), [0, 1, 0, 1])

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            LinearSVC().fit(np.ones((4, 2)), [1, 1, 1, 1])


class TestLinearSVR:
    def test_fits_linear_signal(self, regression_data):
        X, y = regression_data
        model = LinearSVR(max_iter=300).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.7

    def test_invalid_c(self):
        with pytest.raises(ValueError):
            LinearSVR(C=-1.0).fit(np.ones((4, 2)), np.ones(4))


class TestKMeans:
    def test_recovers_separated_blobs(self, multiclass_data):
        X, y = multiclass_data
        model = KMeans(n_clusters=3, random_state=0).fit(X[:, :2])
        assert adjusted_rand_score(y, model.labels_) > 0.7

    def test_predict_assigns_to_nearest_center(self):
        X = np.array([[0.0], [0.1], [10.0], [10.1]])
        model = KMeans(n_clusters=2, random_state=0).fit(X)
        labels = model.predict(np.array([[0.05], [9.9]]))
        assert labels[0] != labels[1]

    def test_transform_gives_distances(self, rng):
        X = rng.normal(size=(30, 2))
        model = KMeans(n_clusters=4, random_state=0).fit(X)
        distances = model.transform(X)
        assert distances.shape == (30, 4)
        assert np.all(distances >= 0.0)

    def test_fit_predict_matches_labels(self, rng):
        X = rng.normal(size=(40, 3))
        model = KMeans(n_clusters=3, random_state=1)
        labels = model.fit_predict(X)
        assert np.array_equal(labels, model.labels_)

    def test_inertia_decreases_with_more_clusters(self, rng):
        X = rng.normal(size=(80, 2))
        small = KMeans(n_clusters=2, random_state=0).fit(X).inertia_
        large = KMeans(n_clusters=8, random_state=0).fit(X).inertia_
        assert large < small

    def test_too_many_clusters_rejected(self):
        with pytest.raises(ValueError):
            KMeans(n_clusters=10).fit(np.ones((3, 2)))


class TestAdaBoost:
    def test_boosting_improves_over_single_stump(self, classification_data):
        X, y = classification_data
        from repro.learners.tree import DecisionTreeClassifier

        stump = DecisionTreeClassifier(max_depth=1, random_state=0).fit(X, y)
        boosted = AdaBoostClassifier(n_estimators=25, random_state=0).fit(X, y)
        assert accuracy_score(y, boosted.predict(X)) >= accuracy_score(y, stump.predict(X))

    def test_multiclass_support(self, multiclass_data):
        X, y = multiclass_data
        model = AdaBoostClassifier(n_estimators=15, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.7

    def test_estimator_weights_positive(self, classification_data):
        X, y = classification_data
        model = AdaBoostClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert all(weight > 0 for weight in model.estimator_weights_)

    def test_invalid_n_estimators(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(n_estimators=0).fit(np.ones((4, 2)), [0, 1, 0, 1])


class TestBagging:
    def test_classifier_default_base(self, classification_data):
        X, y = classification_data
        model = BaggingClassifier(n_estimators=8, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_regressor_default_base(self, regression_data):
        X, y = regression_data
        model = BaggingRegressor(n_estimators=8, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.7

    def test_custom_base_estimator(self, classification_data):
        X, y = classification_data
        model = BaggingClassifier(base_estimator=GaussianNB(), n_estimators=5,
                                  random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.8

    def test_max_samples_validation(self):
        with pytest.raises(ValueError):
            BaggingClassifier(max_samples=0.0).fit(np.ones((4, 2)), [0, 1, 0, 1])

    def test_number_of_members(self, classification_data):
        X, y = classification_data
        model = BaggingClassifier(n_estimators=6, random_state=0).fit(X, y)
        assert len(model.estimators_) == 6
