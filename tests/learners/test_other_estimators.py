"""Tests for KNN, naive Bayes, MLPs, sequence models and matrix factorization."""

import numpy as np
import pytest

from repro.learners.metrics import accuracy_score, r2_score
from repro.learners.naive_bayes import GaussianNB, MultinomialNB
from repro.learners.neighbors import KNeighborsClassifier, KNeighborsRegressor
from repro.learners.neural import (
    LSTMTextClassifier,
    LSTMTimeSeriesRegressor,
    MLPClassifier,
    MLPRegressor,
)
from repro.learners.recommendation import MatrixFactorization
from repro.learners.timeseries import rolling_window_sequences


class TestKNeighbors:
    def test_classifier_memorizes_training_data(self, multiclass_data):
        X, y = multiclass_data
        model = KNeighborsClassifier(n_neighbors=1).fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0

    def test_classifier_generalizes(self, multiclass_data):
        X, y = multiclass_data
        model = KNeighborsClassifier(n_neighbors=5).fit(X[:100], y[:100])
        assert accuracy_score(y[100:], model.predict(X[100:])) > 0.8

    def test_distance_weighting(self, classification_data):
        X, y = classification_data
        model = KNeighborsClassifier(n_neighbors=5, weights="distance").fit(X, y)
        assert accuracy_score(y, model.predict(X)) == 1.0

    def test_regressor_interpolates(self, rng):
        X = np.linspace(0, 10, 100).reshape(-1, 1)
        y = np.sin(X[:, 0])
        model = KNeighborsRegressor(n_neighbors=3).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95

    def test_proba_shape(self, multiclass_data):
        X, y = multiclass_data
        proba = KNeighborsClassifier(n_neighbors=5).fit(X, y).predict_proba(X)
        assert proba.shape == (len(y), 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_invalid_neighbors(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(n_neighbors=0).fit(np.ones((3, 2)), [0, 1, 0])

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(weights="bogus").fit(np.ones((3, 2)), [0, 1, 0])

    def test_feature_mismatch_at_predict(self, classification_data):
        X, y = classification_data
        model = KNeighborsClassifier().fit(X, y)
        with pytest.raises(ValueError):
            model.predict(X[:, :3])


class TestNaiveBayes:
    def test_gaussian_nb_on_separated_clusters(self, multiclass_data):
        X, y = multiclass_data
        model = GaussianNB().fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_gaussian_nb_priors_sum_to_one(self, multiclass_data):
        X, y = multiclass_data
        model = GaussianNB().fit(X, y)
        assert model.class_prior_.sum() == pytest.approx(1.0)

    def test_gaussian_nb_proba(self, classification_data):
        X, y = classification_data
        proba = GaussianNB().fit(X, y).predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_multinomial_nb_on_count_features(self, rng):
        X = np.vstack([
            rng.poisson([5, 1, 1], size=(50, 3)),
            rng.poisson([1, 5, 1], size=(50, 3)),
        ]).astype(float)
        y = np.array([0] * 50 + [1] * 50)
        model = MultinomialNB().fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_multinomial_nb_rejects_negative_features(self):
        with pytest.raises(ValueError):
            MultinomialNB().fit(np.array([[-1.0, 2.0]]), [0])

    def test_multinomial_nb_invalid_alpha(self):
        with pytest.raises(ValueError):
            MultinomialNB(alpha=-1.0).fit(np.ones((2, 2)), [0, 1])


class TestMLP:
    def test_classifier_learns_nonlinear_boundary(self, rng):
        X = rng.uniform(-1, 1, size=(300, 2))
        y = ((X[:, 0] ** 2 + X[:, 1] ** 2) < 0.5).astype(int)
        model = MLPClassifier(hidden_units=(32,), epochs=60, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_regressor_learns_linear_signal(self, regression_data):
        X, y = regression_data
        model = MLPRegressor(hidden_units=(32,), epochs=60, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.8

    def test_loss_curve_decreases(self, regression_data):
        X, y = regression_data
        model = MLPRegressor(hidden_units=(16,), epochs=30, random_state=0).fit(X, y)
        assert model.loss_curve_[-1] < model.loss_curve_[0]

    def test_reproducible_with_seed(self, classification_data):
        X, y = classification_data
        a = MLPClassifier(epochs=10, random_state=1).fit(X, y).predict(X)
        b = MLPClassifier(epochs=10, random_state=1).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_proba_shape_and_normalization(self, multiclass_data):
        X, y = multiclass_data
        proba = MLPClassifier(epochs=15, random_state=0).fit(X, y).predict_proba(X)
        assert proba.shape == (len(y), 3)
        assert np.allclose(proba.sum(axis=1), 1.0, atol=1e-6)

    def test_invalid_epochs(self):
        with pytest.raises(ValueError):
            MLPClassifier(epochs=0).fit(np.ones((4, 2)), [0, 1, 0, 1])


class TestSequenceModels:
    def test_timeseries_regressor_forecasts_sine(self, rng):
        t = np.arange(400, dtype=float)
        series = np.sin(t / 15.0) + 0.05 * rng.normal(size=400)
        X, y, _, _ = rolling_window_sequences(series, window_size=30)
        model = LSTMTimeSeriesRegressor(epochs=20, random_state=0).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.7

    def test_timeseries_regressor_accepts_2d_windows(self, rng):
        X = rng.normal(size=(50, 12))
        y = X.mean(axis=1)
        model = LSTMTimeSeriesRegressor(epochs=20, random_state=0).fit(X, y)
        assert model.predict(X).shape == (50,)

    def test_text_classifier_separates_token_distributions(self, rng):
        # class 0 uses tokens 2-5, class 1 uses tokens 6-9
        y = rng.randint(0, 2, size=120)
        X = np.where(
            y[:, None] == 0,
            rng.randint(2, 6, size=(120, 12)),
            rng.randint(6, 10, size=(120, 12)),
        )
        model = LSTMTextClassifier(epochs=25, random_state=0).fit(X, y, vocabulary_size=10)
        assert accuracy_score(y, model.predict(X)) > 0.85

    def test_text_classifier_ignores_padding(self, rng):
        y = rng.randint(0, 2, size=80)
        X = np.where(y[:, None] == 0, 2, 3) * np.ones((80, 6), dtype=int)
        X[:, :3] = 0  # half of every sequence is padding
        model = LSTMTextClassifier(epochs=15, random_state=0).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_text_classifier_accepts_classes_argument(self, rng):
        y = rng.randint(0, 2, size=40)
        X = rng.randint(1, 5, size=(40, 6))
        model = LSTMTextClassifier(epochs=5, random_state=0).fit(X, y, classes=2)
        assert model.predict(X).shape == (40,)

    def test_text_classifier_rejects_1d_input(self):
        with pytest.raises(ValueError):
            LSTMTextClassifier(epochs=2).fit(np.array([1, 2, 3]), np.array([0, 1, 0]))


class TestMatrixFactorization:
    def test_reconstructs_low_rank_ratings(self, rng):
        users = rng.normal(size=(20, 3))
        items = rng.normal(size=(15, 3))
        u = rng.randint(0, 20, size=400)
        i = rng.randint(0, 15, size=400)
        ratings = np.sum(users[u] * items[i], axis=1)
        X = np.column_stack([u, i]).astype(float)
        model = MatrixFactorization(n_factors=4, epochs=40, random_state=0).fit(X, ratings)
        assert r2_score(ratings, model.predict(X)) > 0.7

    def test_predict_clips_unknown_ids(self, rng):
        X = np.array([[0, 0], [1, 1]], dtype=float)
        model = MatrixFactorization(epochs=5, random_state=0).fit(X, [1.0, 2.0])
        predictions = model.predict(np.array([[99, 99]], dtype=float))
        assert np.isfinite(predictions).all()

    def test_invalid_factors(self):
        with pytest.raises(ValueError):
            MatrixFactorization(n_factors=0).fit(np.zeros((2, 2)), [1.0, 2.0])

    def test_requires_two_columns(self):
        with pytest.raises(ValueError):
            MatrixFactorization().fit(np.zeros((3, 1)), [1.0, 2.0, 3.0])
