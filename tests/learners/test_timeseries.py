"""Tests for time series preprocessing and anomaly detection primitives."""

import numpy as np
import pytest

from repro.learners.timeseries import (
    find_anomalies,
    regression_errors,
    rolling_window_sequences,
    time_segments_average,
)


class TestTimeSegmentsAverage:
    def test_aggregates_by_interval(self):
        X = np.column_stack([np.arange(10, dtype=float), np.arange(10, dtype=float)])
        values, index = time_segments_average(X, interval=2)
        assert values[0, 0] == pytest.approx(0.5)
        assert index[0] == 0.0
        assert len(values) == len(index)

    def test_interval_one_is_identity_like(self):
        X = np.column_stack([np.arange(5, dtype=float), np.array([1.0, 2.0, 3.0, 4.0, 5.0])])
        values, _ = time_segments_average(X, interval=1)
        assert np.allclose(values.ravel()[:5], [1, 2, 3, 4, 5])

    def test_accepts_1d_series(self):
        values, index = time_segments_average(np.arange(8, dtype=float), interval=4)
        assert len(values) == 2

    def test_empty_segments_forward_filled(self):
        X = np.column_stack([np.array([0.0, 10.0]), np.array([1.0, 5.0])])
        values, _ = time_segments_average(X, interval=2)
        assert not np.isnan(values).any()

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            time_segments_average(np.arange(5, dtype=float), interval=0)


class TestRollingWindowSequences:
    def test_shapes(self):
        series = np.arange(100, dtype=float)
        X, y, X_index, y_index = rolling_window_sequences(series, window_size=10)
        assert X.shape == (90, 10, 1)
        assert y.shape == (90,)
        assert X_index.shape == (90,)
        assert y_index.shape == (90,)

    def test_targets_follow_windows(self):
        series = np.arange(50, dtype=float)
        X, y, _, y_index = rolling_window_sequences(series, window_size=5)
        assert y[0] == 5.0
        assert y_index[0] == 5.0
        assert np.allclose(X[0].ravel(), [0, 1, 2, 3, 4])

    def test_step_size_reduces_windows(self):
        series = np.arange(60, dtype=float)
        X_dense, *_ = rolling_window_sequences(series, window_size=10, step_size=1)
        X_sparse, *_ = rolling_window_sequences(series, window_size=10, step_size=5)
        assert len(X_sparse) < len(X_dense)

    def test_multivariate_input_keeps_channels(self):
        series = np.random.RandomState(0).normal(size=(80, 3))
        X, y, _, _ = rolling_window_sequences(series, window_size=8, target_column=1)
        assert X.shape == (72, 8, 3)
        assert np.allclose(y, series[8:8 + len(y), 1])

    def test_series_too_short_raises(self):
        with pytest.raises(ValueError):
            rolling_window_sequences(np.arange(5, dtype=float), window_size=10)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            rolling_window_sequences(np.arange(50, dtype=float), window_size=0)


class TestRegressionErrors:
    def test_zero_errors_for_perfect_forecast(self):
        y = np.ones(50)
        errors = regression_errors(y, y, smooth=False)
        assert np.allclose(errors, 0.0)

    def test_unsmoothed_errors_are_absolute_differences(self):
        y_true = np.array([1.0, 2.0, 3.0])
        y_pred = np.array([2.0, 2.0, 1.0])
        errors = regression_errors(y_true, y_pred, smooth=False)
        assert np.allclose(errors, [1.0, 0.0, 2.0])

    def test_smoothing_reduces_spikes(self):
        y_true = np.zeros(100)
        y_pred = np.zeros(100)
        y_pred[50] = 10.0
        raw = regression_errors(y_true, y_pred, smooth=False)
        smoothed = regression_errors(y_true, y_pred, smoothing_window=0.1)
        assert smoothed.max() < raw.max()

    def test_output_length_preserved(self):
        errors = regression_errors(np.zeros(80), np.ones(80), smoothing_window=0.05)
        assert len(errors) == 80

    def test_misaligned_inputs_raise(self):
        with pytest.raises(ValueError):
            regression_errors(np.zeros(5), np.zeros(6))


class TestFindAnomalies:
    def _errors_with_spike(self, position=150, width=8, magnitude=8.0, length=300):
        rng = np.random.RandomState(0)
        errors = np.abs(rng.normal(0.1, 0.05, size=length))
        errors[position:position + width] += magnitude
        return errors

    def test_detects_injected_spike(self):
        errors = self._errors_with_spike()
        anomalies = find_anomalies(errors, window_size=100, window_step=50)
        assert len(anomalies) >= 1
        start, end, severity = anomalies[0]
        assert start <= 150 <= end
        assert severity > 1.0

    def test_no_anomalies_in_flat_noise(self):
        rng = np.random.RandomState(1)
        errors = np.abs(rng.normal(0.1, 0.02, size=200))
        anomalies = find_anomalies(errors, z_threshold=6.0)
        assert anomalies == []

    def test_uses_provided_index(self):
        errors = self._errors_with_spike(position=100, length=200)
        index = np.arange(1000, 1200)
        anomalies = find_anomalies(errors, index=index, window_size=100, window_step=50)
        assert anomalies[0][0] >= 1000

    def test_padding_extends_intervals(self):
        errors = self._errors_with_spike()
        narrow = find_anomalies(errors, anomaly_padding=0, window_size=100, window_step=50)
        wide = find_anomalies(errors, anomaly_padding=10, window_size=100, window_step=50)
        assert (wide[0][1] - wide[0][0]) >= (narrow[0][1] - narrow[0][0])

    def test_empty_errors_return_no_anomalies(self):
        assert find_anomalies(np.array([])) == []

    def test_misaligned_index_raises(self):
        with pytest.raises(ValueError):
            find_anomalies(np.ones(10), index=np.arange(5))

    def test_invalid_threshold_raises(self):
        with pytest.raises(ValueError):
            find_anomalies(np.ones(10), z_threshold=0.0)

    def test_results_sorted_by_start(self):
        errors = self._errors_with_spike(position=50)
        errors[250:255] += 8.0
        anomalies = find_anomalies(errors, window_size=100, window_step=50)
        starts = [a[0] for a in anomalies]
        assert starts == sorted(starts)
