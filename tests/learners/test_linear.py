"""Tests for linear and logistic models."""

import numpy as np
import pytest

from repro.learners.linear import Lasso, LinearRegression, LogisticRegression, Ridge
from repro.learners.metrics import accuracy_score, r2_score


class TestLinearRegression:
    def test_recovers_exact_linear_relationship(self, rng):
        X = rng.normal(size=(80, 3))
        y = 2.0 * X[:, 0] - 3.0 * X[:, 1] + 0.5 * X[:, 2] + 1.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, [2.0, -3.0, 0.5], atol=1e-8)
        assert model.intercept_ == pytest.approx(1.0)

    def test_r2_on_noisy_data(self, regression_data):
        X, y = regression_data
        model = LinearRegression().fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.95

    def test_without_intercept(self, rng):
        X = rng.normal(size=(60, 2))
        y = X[:, 0] + X[:, 1]
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0

    def test_predict_shape(self, regression_data):
        X, y = regression_data
        assert LinearRegression().fit(X, y).predict(X).shape == (len(y),)


class TestRidge:
    def test_shrinks_toward_zero_with_large_alpha(self, rng):
        X = rng.normal(size=(50, 3))
        y = 5.0 * X[:, 0]
        small = Ridge(alpha=1e-6).fit(X, y)
        large = Ridge(alpha=1e4).fit(X, y)
        assert np.abs(large.coef_).sum() < np.abs(small.coef_).sum()

    def test_matches_ols_with_tiny_alpha(self, rng):
        X = rng.normal(size=(60, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 0.3
        ridge = Ridge(alpha=1e-10).fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-5)

    def test_negative_alpha_raises(self):
        with pytest.raises(ValueError):
            Ridge(alpha=-1.0).fit(np.ones((4, 2)), np.ones(4))

    def test_handles_collinear_features(self, rng):
        base = rng.normal(size=(40, 1))
        X = np.hstack([base, base, base])
        y = base.ravel()
        model = Ridge(alpha=1.0).fit(X, y)
        assert np.all(np.isfinite(model.coef_))


class TestLasso:
    def test_produces_sparse_solution(self, rng):
        X = rng.normal(size=(100, 8))
        y = 3.0 * X[:, 0] + 0.05 * rng.normal(size=100)
        model = Lasso(alpha=0.5).fit(X, y)
        assert np.abs(model.coef_[0]) > 1.0
        assert np.sum(np.abs(model.coef_[1:]) < 1e-6) >= 5

    def test_zero_alpha_close_to_ols(self, rng):
        X = rng.normal(size=(80, 3))
        y = X @ np.array([1.0, 2.0, -1.0])
        lasso = Lasso(alpha=1e-8, max_iter=2000).fit(X, y)
        assert np.allclose(lasso.coef_, [1.0, 2.0, -1.0], atol=1e-2)

    def test_negative_alpha_raises(self):
        with pytest.raises(ValueError):
            Lasso(alpha=-0.1).fit(np.ones((4, 2)), np.ones(4))


class TestLogisticRegression:
    def test_separable_data_high_accuracy(self, classification_data):
        X, y = classification_data
        model = LogisticRegression(max_iter=300).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.9

    def test_multiclass(self, multiclass_data):
        X, y = multiclass_data
        model = LogisticRegression(max_iter=300).fit(X, y)
        assert accuracy_score(y, model.predict(X)) > 0.85
        assert set(model.predict(X)) <= set(y)

    def test_predict_proba_rows_sum_to_one(self, multiclass_data):
        X, y = multiclass_data
        proba = LogisticRegression(max_iter=100).fit(X, y).predict_proba(X)
        assert proba.shape == (len(y), 3)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_string_labels_preserved(self, classification_data):
        X, y = classification_data
        labels = np.where(y == 1, "yes", "no")
        model = LogisticRegression(max_iter=100).fit(X, labels)
        assert set(model.predict(X)) <= {"yes", "no"}

    def test_regularization_strength_affects_weights(self, classification_data):
        X, y = classification_data
        strong = LogisticRegression(C=0.001, max_iter=200).fit(X, y)
        weak = LogisticRegression(C=100.0, max_iter=200).fit(X, y)
        assert np.abs(strong.coef_).sum() < np.abs(weak.coef_).sum()

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.ones((5, 2)), np.zeros(5))

    def test_invalid_c_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression(C=0.0).fit(np.ones((4, 2)), [0, 1, 0, 1])
