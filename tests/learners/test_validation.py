"""Tests for input validation helpers."""

import numpy as np
import pytest

from repro.learners.validation import check_array, check_X_y, column_or_1d


class TestCheckArray:
    def test_returns_float_array(self):
        result = check_array([[1, 2], [3, 4]])
        assert result.dtype == float
        assert result.shape == (2, 2)

    def test_rejects_1d_when_2d_required(self):
        with pytest.raises(ValueError, match="2D"):
            check_array([1.0, 2.0, 3.0])

    def test_allows_1d_when_requested(self):
        result = check_array([1.0, 2.0], ensure_2d=False)
        assert result.shape == (2,)

    def test_rejects_nan_by_default(self):
        with pytest.raises(ValueError, match="NaN"):
            check_array([[1.0, np.nan]])

    def test_allows_nan_when_requested(self):
        result = check_array([[1.0, np.nan]], allow_nan=True)
        assert np.isnan(result[0, 1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="empty"):
            check_array(np.empty((0, 3)))


class TestCheckXy:
    def test_matching_lengths(self):
        X, y = check_X_y([[1.0], [2.0]], [0, 1])
        assert X.shape == (2, 1)
        assert y.shape == (2,)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="inconsistent"):
            check_X_y([[1.0], [2.0]], [0, 1, 2])

    def test_column_target_is_raveled(self):
        _, y = check_X_y([[1.0], [2.0]], [[0], [1]])
        assert y.ndim == 1

    def test_y_numeric_casts_to_float(self):
        _, y = check_X_y([[1.0], [2.0]], ["1", "2"], y_numeric=True)
        assert y.dtype == float


class TestColumnOr1d:
    def test_1d_passthrough(self):
        assert column_or_1d([1, 2, 3]).shape == (3,)

    def test_column_vector_raveled(self):
        assert column_or_1d([[1], [2]]).shape == (2,)

    def test_wide_matrix_rejected(self):
        with pytest.raises(ValueError):
            column_or_1d([[1, 2], [3, 4]])
