"""Tests for the DatetimeFeaturizer primitive."""

import numpy as np
import pytest

from repro.learners.preprocessing import DatetimeFeaturizer
from repro.learners.preprocessing.datetime_features import datetime_components


class TestDatetimeComponents:
    def test_iso_string(self):
        components = datetime_components("2019-06-19 14:30:00")
        assert components.tolist() == [2019.0, 6.0, 19.0, 2.0, 14.0, 30.0]

    def test_date_only_string(self):
        components = datetime_components("2020-01-05")
        assert components[0] == 2020.0
        assert components[4] == 0.0  # hour defaults to midnight

    def test_unix_timestamp(self):
        components = datetime_components(0)
        assert components[0] == 1970.0
        assert components[1] == 1.0

    def test_unparseable_value_raises(self):
        with pytest.raises(ValueError):
            datetime_components("not a date")


class TestDatetimeFeaturizer:
    def test_single_column_expansion(self):
        X = np.asarray(["2021-03-01", "2021-03-02"], dtype=object)
        features = DatetimeFeaturizer().fit_transform(X)
        assert features.shape == (2, 6)
        assert features[0, 2] == 1.0  # day of month
        assert features[1, 2] == 2.0

    def test_mixed_columns_passthrough(self):
        X = np.asarray([[1.5, "2021-03-01"], [2.5, "2022-07-04"]], dtype=object)
        featurizer = DatetimeFeaturizer(columns=[1]).fit(X)
        features = featurizer.transform(X)
        assert features.shape == (2, 1 + 6)
        assert features[:, 0].tolist() == [1.5, 2.5]
        assert features[1, 1] == 2022.0

    def test_drop_original_columns(self):
        X = np.asarray([[1.5, "2021-03-01"]], dtype=object)
        features = DatetimeFeaturizer(columns=[1], keep_original=False).fit_transform(X)
        assert features.shape == (1, 6)

    def test_feature_names(self):
        X = np.asarray(["2021-03-01"], dtype=object)
        featurizer = DatetimeFeaturizer().fit(X)
        names = featurizer.feature_names()
        assert len(names) == 6
        assert names[0] == "col0_year"

    def test_out_of_range_column_rejected(self):
        X = np.asarray(["2021-03-01"], dtype=object)
        with pytest.raises(ValueError):
            DatetimeFeaturizer(columns=[3]).fit(X)

    def test_registered_in_catalog(self):
        from repro.core.registry import get_default_registry

        registry = get_default_registry()
        assert "pandas.DatetimeFeaturizer" in registry
        assert registry.count_by_source().get("pandas") == 1
