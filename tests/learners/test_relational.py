"""Tests for the EntitySet abstraction and deep feature synthesis."""

import numpy as np
import pytest

from repro.learners.relational import DeepFeatureSynthesis, EntitySet, dfs


@pytest.fixture
def retail_entityset():
    """Customers with transactions; one customer has no transactions."""
    entityset = EntitySet("retail")
    entityset.add_entity("customers", {
        "customer_id": np.array([1, 2, 3]),
        "age": np.array([30.0, 40.0, 50.0]),
    }, index="customer_id")
    entityset.add_entity("transactions", {
        "transaction_id": np.arange(5),
        "customer_id": np.array([1, 1, 2, 2, 2]),
        "amount": np.array([10.0, 20.0, 5.0, 5.0, 5.0]),
    }, index="transaction_id")
    entityset.add_relationship("customers", "customer_id", "transactions", "customer_id")
    return entityset


class TestEntitySet:
    def test_add_entity_and_lookup(self, retail_entityset):
        assert set(retail_entityset.entities) == {"customers", "transactions"}

    def test_duplicate_entity_raises(self, retail_entityset):
        with pytest.raises(ValueError):
            retail_entityset.add_entity("customers", {"customer_id": [1]}, index="customer_id")

    def test_missing_index_column_raises(self):
        entityset = EntitySet()
        with pytest.raises(ValueError):
            entityset.add_entity("t", {"a": [1, 2]}, index="missing")

    def test_ragged_columns_raise(self):
        entityset = EntitySet()
        with pytest.raises(ValueError):
            entityset.add_entity("t", {"id": [1, 2], "x": [1.0]}, index="id")

    def test_relationship_unknown_entity_raises(self, retail_entityset):
        with pytest.raises(ValueError):
            retail_entityset.add_relationship("customers", "customer_id", "orders", "customer_id")

    def test_relationship_unknown_column_raises(self, retail_entityset):
        with pytest.raises(ValueError):
            retail_entityset.add_relationship("customers", "bogus", "transactions", "customer_id")

    def test_children_of(self, retail_entityset):
        children = retail_entityset.children_of("customers")
        assert len(children) == 1
        assert children[0].child_entity == "transactions"

    def test_numeric_columns_exclude_keys(self, retail_entityset):
        assert retail_entityset.numeric_columns("transactions") == ["amount"]
        assert retail_entityset.numeric_columns("customers") == ["age"]


class TestDFS:
    def test_feature_matrix_aligned_with_target_entity(self, retail_entityset):
        matrix, names = dfs(retail_entityset, "customers")
        assert matrix.shape[0] == 3
        assert len(names) == matrix.shape[1]

    def test_count_feature_values(self, retail_entityset):
        matrix, names = dfs(retail_entityset, "customers", aggregations=["count"])
        count_column = names.index("customers.COUNT(transactions)")
        assert matrix[:, count_column].tolist() == [2.0, 3.0, 0.0]

    def test_mean_aggregation(self, retail_entityset):
        matrix, names = dfs(retail_entityset, "customers", aggregations=["mean"])
        mean_column = names.index("customers.MEAN(transactions.amount)")
        assert matrix[0, mean_column] == pytest.approx(15.0)
        assert matrix[2, mean_column] == 0.0  # no transactions

    def test_direct_numeric_features_included(self, retail_entityset):
        _, names = dfs(retail_entityset, "customers")
        assert "customers.age" in names

    def test_instance_ids_select_and_order_rows(self, retail_entityset):
        matrix, names = dfs(retail_entityset, "customers", instance_ids=[3, 1])
        age_column = names.index("customers.age")
        assert matrix[:, age_column].tolist() == [50.0, 30.0]

    def test_unknown_instance_id_raises(self, retail_entityset):
        with pytest.raises(ValueError):
            dfs(retail_entityset, "customers", instance_ids=[42])

    def test_unknown_target_entity_raises(self, retail_entityset):
        with pytest.raises(ValueError):
            dfs(retail_entityset, "orders")

    def test_unknown_aggregation_raises(self, retail_entityset):
        with pytest.raises(ValueError):
            dfs(retail_entityset, "customers", aggregations=["mode"])

    def test_invalid_max_depth_raises(self, retail_entityset):
        with pytest.raises(ValueError):
            dfs(retail_entityset, "customers", max_depth=0)

    def test_non_entityset_raises(self):
        with pytest.raises(TypeError):
            dfs({"not": "an entityset"}, "customers")

    def test_two_level_aggregation(self):
        entityset = EntitySet("nested")
        entityset.add_entity("regions", {"region_id": np.array([1, 2])}, index="region_id")
        entityset.add_entity("stores", {
            "store_id": np.array([10, 11, 12]),
            "region_id": np.array([1, 1, 2]),
        }, index="store_id")
        entityset.add_entity("sales", {
            "sale_id": np.arange(4),
            "store_id": np.array([10, 10, 11, 12]),
            "amount": np.array([1.0, 2.0, 3.0, 4.0]),
        }, index="sale_id")
        entityset.add_relationship("regions", "region_id", "stores", "region_id")
        entityset.add_relationship("stores", "store_id", "sales", "store_id")
        matrix, names = dfs(entityset, "regions", max_depth=2)
        assert any("sales" in name for name in names)
        assert matrix.shape[0] == 2


class TestDeepFeatureSynthesisPrimitive:
    def test_entityset_mode(self, retail_entityset):
        primitive = DeepFeatureSynthesis(target_entity="customers")
        matrix = primitive.produce(np.array([1, 2, 3]), entityset=retail_entityset)
        assert matrix.shape[0] == 3
        assert len(primitive.feature_names_) == matrix.shape[1]

    def test_passthrough_mode_for_plain_matrices(self):
        X = np.arange(12, dtype=float).reshape(4, 3)
        assert np.allclose(DeepFeatureSynthesis().produce(X), X)

    def test_passthrough_flattens_3d_input(self):
        X = np.zeros((5, 4, 4))
        assert DeepFeatureSynthesis().produce(X).shape == (5, 16)

    def test_passthrough_reshapes_1d_input(self):
        X = np.arange(6, dtype=float)
        assert DeepFeatureSynthesis().produce(X).shape == (6, 1)

    def test_entityset_as_positional_argument(self, retail_entityset):
        matrix = DeepFeatureSynthesis(target_entity="customers").produce(retail_entityset)
        assert matrix.shape[0] == 3

    def test_default_target_entity_inferred(self, retail_entityset):
        primitive = DeepFeatureSynthesis()
        matrix = primitive.produce(np.array([1, 2, 3]), entityset=retail_entityset)
        assert matrix.shape[0] == 3
