"""Structural validation of the CI workflow (a dry-run stand-in for actionlint).

The pipeline is part of the contract: lint, tier-1 tests, the benchmark
smoke runs, the crash/resume durability smoke and the chaos suite must
stay distinct jobs, every benchmark job must upload its fresh record to
the single ``bench-gate`` job that diffs all committed ``BENCH_*.json``
baselines, the test job must cover the supported interpreter matrix,
and every job must keep pip caching on.
"""

import glob
import os

import pytest

yaml = pytest.importorskip("yaml")

WORKFLOW = os.path.join(os.path.dirname(__file__), "..", ".github", "workflows", "ci.yml")

#: The benchmark jobs feeding the unified regression gate.
BENCH_JOBS = {"prefix-cache", "data-plane", "multi-tenant", "telemetry", "chaos"}


@pytest.fixture(scope="module")
def workflow():
    with open(WORKFLOW) as stream:
        return yaml.safe_load(stream)


def _runs(workflow, job):
    return [step.get("run", "") for step in workflow["jobs"][job]["steps"]]


def _uploads(workflow, job):
    return [step for step in workflow["jobs"][job]["steps"]
            if step.get("uses", "").startswith("actions/upload-artifact")]


def test_workflow_parses_and_triggers(workflow):
    assert workflow["name"] == "CI"
    # PyYAML parses the bare `on:` key as boolean True
    triggers = workflow.get("on", workflow.get(True))
    assert "push" in triggers
    assert "pull_request" in triggers
    assert triggers["push"]["branches"] == ["main"]


def test_lint_tests_and_smoke_runs_are_distinct_jobs(workflow):
    jobs = workflow["jobs"]
    assert set(jobs) == {"lint", "tests", "bench-smoke", "crash-resume",
                         "prefix-cache", "data-plane", "multi-tenant",
                         "telemetry", "chaos", "bench-gate"}
    assert any("ruff check" in step.get("run", "") for step in jobs["lint"]["steps"])
    assert any("python -m pytest -x -q" in step.get("run", "")
               for step in jobs["tests"]["steps"])
    assert any('-k "pipeline_engine"' in step.get("run", "")
               for step in jobs["bench-smoke"]["steps"])


def test_prefix_cache_smoke_records_the_throughput_benchmark(workflow):
    """The cache's 1.5x throughput bar is CI-enforced and its fresh record
    handed to the unified bench gate."""
    runs = _runs(workflow, "prefix-cache")
    smoke = [run for run in runs if "scripts/record_bench.py" in run]
    assert smoke, "the prefix-cache job must run scripts/record_bench.py"
    assert "BENCH_prefix_cache.json" in smoke[0]
    uploads = _uploads(workflow, "prefix-cache")
    assert uploads and "BENCH_prefix_cache.json" in uploads[0]["with"]["path"]
    # the script and the committed benchmark record both exist
    root = os.path.join(os.path.dirname(__file__), "..")
    assert os.path.exists(os.path.join(root, "scripts", "record_bench.py"))
    assert os.path.exists(os.path.join(root, "BENCH_prefix_cache.json"))


def test_data_plane_smoke_records_both_benchmarks(workflow):
    """The 1.3x/1.5x data-plane and batched-eval bars are CI-enforced and
    both fresh records handed to the unified bench gate."""
    runs = _runs(workflow, "data-plane")
    assert any("record_bench.py data-plane" in run and "BENCH_data_plane.json" in run
               for run in runs), "the job must record the data-plane benchmark"
    assert any("record_bench.py batched-eval" in run and "BENCH_batched_eval.json" in run
               for run in runs), "the job must record the batched-eval benchmark"
    uploads = _uploads(workflow, "data-plane")
    assert uploads, "the job must upload its fresh records"
    path = uploads[0]["with"]["path"]
    assert "BENCH_data_plane.json" in path and "BENCH_batched_eval.json" in path
    # the committed benchmark records both exist
    root = os.path.join(os.path.dirname(__file__), "..")
    assert os.path.exists(os.path.join(root, "BENCH_data_plane.json"))
    assert os.path.exists(os.path.join(root, "BENCH_batched_eval.json"))


def test_multi_tenant_smoke_records_the_benchmark(workflow):
    """The fleet's 0.8x/1.5x aggregate-throughput bars are CI-enforced and
    the fresh record handed to the unified bench gate."""
    runs = _runs(workflow, "multi-tenant")
    assert any("record_bench.py multi-tenant" in run
               and "BENCH_multi_tenant.json" in run
               for run in runs), "the job must record the multi-tenant benchmark"
    uploads = _uploads(workflow, "multi-tenant")
    assert uploads and "BENCH_multi_tenant.json" in uploads[0]["with"]["path"]
    # the committed benchmark record and the benchmark test both exist
    root = os.path.join(os.path.dirname(__file__), "..")
    assert os.path.exists(os.path.join(root, "BENCH_multi_tenant.json"))
    assert os.path.exists(os.path.join(root, "benchmarks",
                                       "test_bench_multi_tenant.py"))


def test_telemetry_job_runs_round_trip_and_overhead_gates(workflow):
    """The replay guarantee and the <= ~5% overhead bar are CI-enforced and
    the fresh overhead record handed to the unified bench gate."""
    runs = _runs(workflow, "telemetry")
    assert any("pytest tests/telemetry" in run for run in runs), (
        "the job must run the replayer round-trip smoke")
    assert any("record_bench.py telemetry" in run
               and "BENCH_telemetry_overhead.json" in run
               for run in runs), "the job must record the overhead benchmark"
    uploads = _uploads(workflow, "telemetry")
    assert uploads and "BENCH_telemetry_overhead.json" in uploads[0]["with"]["path"]
    # the committed benchmark record and the round-trip tests both exist
    root = os.path.join(os.path.dirname(__file__), "..")
    assert os.path.exists(os.path.join(root, "BENCH_telemetry_overhead.json"))
    assert os.path.exists(os.path.join(root, "tests", "telemetry",
                                       "test_replayer.py"))


def test_chaos_job_runs_fault_injection_and_recovery_gates(workflow):
    """The fault-masking guarantee and the 0.95x/0.7x supervision bars are
    CI-enforced and the fresh record handed to the unified bench gate."""
    runs = _runs(workflow, "chaos")
    assert any("tests/automl/test_fault_tolerance.py" in run for run in runs), (
        "the job must run the fault-injection chaos suite")
    assert any("tests/automl/test_supervisor.py" in run for run in runs), (
        "the job must run the supervised-pool unit tests")
    assert any("record_bench.py fault-tolerance" in run
               and "BENCH_fault_tolerance.json" in run
               for run in runs), "the job must record the fault-tolerance benchmark"
    uploads = _uploads(workflow, "chaos")
    assert uploads and "BENCH_fault_tolerance.json" in uploads[0]["with"]["path"]
    # the committed benchmark record, the chaos suite and the benchmark
    # twin all exist
    root = os.path.join(os.path.dirname(__file__), "..")
    assert os.path.exists(os.path.join(root, "BENCH_fault_tolerance.json"))
    assert os.path.exists(os.path.join(root, "tests", "automl",
                                       "test_fault_tolerance.py"))
    assert os.path.exists(os.path.join(root, "benchmarks",
                                       "test_bench_fault_tolerance.py"))


def test_bench_gate_diffs_every_committed_record(workflow):
    """One unified regression gate: every benchmark job feeds it and it
    diffs every committed BENCH_*.json within the 20% tolerance."""
    job = workflow["jobs"]["bench-gate"]
    assert set(job["needs"]) == BENCH_JOBS
    downloads = [step for step in job["steps"]
                 if step.get("uses", "").startswith("actions/download-artifact")]
    assert downloads, "the gate must collect the fresh records"
    assert downloads[0]["with"]["path"] == ".bench-fresh"
    assert downloads[0]["with"].get("merge-multiple") is True
    gate = [run for run in _runs(workflow, "bench-gate")
            if "check_bench_regression.py" in run]
    assert gate, "the gate must run the regression checker"
    assert "--tolerance 0.20" in gate[0]
    assert "--fresh-dir .bench-fresh" in gate[0]
    # every bench job uploads at least one fresh record, and together
    # they cover every committed baseline the gate will look for
    uploaded = set()
    for name in BENCH_JOBS:
        uploads = _uploads(workflow, name)
        assert uploads, "{} must upload its fresh record(s)".format(name)
        for step in uploads:
            uploaded.update(line.strip()
                            for line in step["with"]["path"].splitlines()
                            if line.strip())
    root = os.path.join(os.path.dirname(__file__), "..")
    committed = {os.path.basename(path)
                 for path in glob.glob(os.path.join(root, "BENCH_*.json"))}
    assert committed, "committed BENCH_*.json baselines must exist"
    assert committed <= uploaded, (
        "committed records {} have no uploading job".format(
            sorted(committed - uploaded)))
    assert os.path.exists(os.path.join(root, "scripts",
                                       "check_bench_regression.py"))


def test_crash_resume_smoke_runs_the_kill_and_resume_gate(workflow):
    """The durability guarantee is CI-enforced: kill a run, resume, compare."""
    steps = workflow["jobs"]["crash-resume"]["steps"]
    smoke = [step for step in steps
             if "scripts/crash_resume_smoke.py" in step.get("run", "")]
    assert smoke, "the crash-resume job must run scripts/crash_resume_smoke.py"
    # the script exists and is the same file the job references
    script = os.path.join(os.path.dirname(__file__), "..", "scripts",
                          "crash_resume_smoke.py")
    assert os.path.exists(script)


def test_tier1_matrix_covers_supported_interpreters(workflow):
    matrix = workflow["jobs"]["tests"]["strategy"]["matrix"]["python-version"]
    assert matrix == ["3.10", "3.11", "3.12"]


def test_every_job_is_well_formed_with_pip_caching(workflow):
    for name, job in workflow["jobs"].items():
        assert job["runs-on"] == "ubuntu-latest", name
        steps = job["steps"]
        assert isinstance(steps, list) and steps, name
        for step in steps:
            # exactly one of uses/run per step, and actions are pinned
            assert ("uses" in step) != ("run" in step), (name, step)
            if "uses" in step:
                action, _, version = step["uses"].partition("@")
                assert version, step["uses"]
        setup_steps = [step for step in steps
                       if step.get("uses", "").startswith("actions/setup-python")]
        assert setup_steps, name
        assert all(step["with"].get("cache") == "pip" for step in setup_steps), name
